"""Transistor-count cost model (Table 1 of the paper).

The paper measures circuit area as the transistor count of registers and
multiplexers only (the data-path logic modules are excluded).  Table 1 gives
the counts for 8-bit registers, the four kinds of test registers, and
n-input multiplexers; these numbers are the weights of the ILP objective
(section 3.4).

:class:`CostModel` reproduces that table exactly by default and scales
linearly with bit width so that other widths can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datapath.components import TestRegisterKind

#: Table 1(a): transistor counts of 8-bit registers and test registers.
TABLE1_REGISTERS_8BIT: dict[TestRegisterKind, int] = {
    TestRegisterKind.NONE: 208,
    TestRegisterKind.TPG: 256,
    TestRegisterKind.SR: 304,
    TestRegisterKind.BILBO: 388,
    TestRegisterKind.CBILBO: 596,
}

#: Table 1(b): transistor counts of 8-bit n-input multiplexers (n = 2..7).
TABLE1_MUXES_8BIT: dict[int, int] = {2: 80, 3: 176, 4: 208, 5: 300, 6: 320, 7: 350}

#: Incremental cost used to extrapolate multiplexers wider than Table 1(b).
MUX_EXTRAPOLATION_STEP = 50

#: Default penalty weight for an input port that must be driven by a
#: dedicated constant test pattern generator (section 3.3.4 assigns this a
#: value "greater than any other weight").
DEFAULT_CONSTANT_TPG_WEIGHT = 1000


class CostModelError(ValueError):
    """Raised for invalid cost queries (e.g. negative mux sizes)."""


@dataclass(frozen=True)
class CostModel:
    """Area cost model in transistors.

    Parameters
    ----------
    bit_width:
        Data-path width in bits.  Table 1 is specified for 8 bits; costs scale
        linearly with width (registers and muxes are per-bit structures).
    register_costs:
        Transistor counts per register kind at ``reference_width`` bits.
    mux_costs:
        Transistor counts per multiplexer size at ``reference_width`` bits.
    constant_tpg_weight:
        Objective penalty for a module input port driven only by constants
        (which would need an extra, dedicated TPG).
    """

    bit_width: int = 8
    reference_width: int = 8
    register_costs: dict[TestRegisterKind, int] = field(
        default_factory=lambda: dict(TABLE1_REGISTERS_8BIT)
    )
    mux_costs: dict[int, int] = field(default_factory=lambda: dict(TABLE1_MUXES_8BIT))
    mux_extrapolation_step: int = MUX_EXTRAPOLATION_STEP
    constant_tpg_weight: int = DEFAULT_CONSTANT_TPG_WEIGHT

    def __post_init__(self):
        if self.bit_width <= 0:
            raise CostModelError(f"bit width must be positive, got {self.bit_width}")
        missing = set(TestRegisterKind) - set(self.register_costs)
        if missing:
            raise CostModelError(f"register costs missing kinds: {sorted(k.name for k in missing)}")

    # ------------------------------------------------------------------
    def _scale(self, transistors: float) -> int:
        return int(round(transistors * self.bit_width / self.reference_width))

    def register_cost(self, kind: TestRegisterKind = TestRegisterKind.NONE) -> int:
        """Transistors of one register reconfigured to ``kind``."""
        return self._scale(self.register_costs[kind])

    def mux_cost(self, inputs: int) -> int:
        """Transistors of one multiplexer with ``inputs`` inputs.

        Zero or one input needs no multiplexer (cost 0).  Sizes beyond the
        table are extrapolated linearly from the largest tabulated size.
        """
        if inputs < 0:
            raise CostModelError(f"multiplexer cannot have {inputs} inputs")
        if inputs <= 1:
            return 0
        if inputs in self.mux_costs:
            return self._scale(self.mux_costs[inputs])
        largest = max(self.mux_costs)
        if inputs < largest:
            # Non-tabulated small size (possible with custom tables): use the
            # next larger tabulated size as a conservative cost.
            for size in sorted(self.mux_costs):
                if size >= inputs:
                    return self._scale(self.mux_costs[size])
        extra = inputs - largest
        return self._scale(self.mux_costs[largest] + extra * self.mux_extrapolation_step)

    # ------------------------------------------------------------------
    # weights of the ILP objective (section 3.4)
    # ------------------------------------------------------------------
    @property
    def w_reg(self) -> int:
        """Cost of a plain system register."""
        return self.register_cost(TestRegisterKind.NONE)

    @property
    def w_tpg(self) -> int:
        return self.register_cost(TestRegisterKind.TPG)

    @property
    def w_sr(self) -> int:
        return self.register_cost(TestRegisterKind.SR)

    @property
    def w_bilbo(self) -> int:
        return self.register_cost(TestRegisterKind.BILBO)

    @property
    def w_cbilbo(self) -> int:
        return self.register_cost(TestRegisterKind.CBILBO)

    def incremental_weights(self) -> dict[str, int]:
        """Linear per-register increments used by the ILP objective.

        The objective prices each register as::

            w_reg + dt * t_r + ds * s_r + db * b_r + dc * c_r

        where ``t_r``/``s_r`` flag TPG/SR use, ``b_r`` flags BILBO-or-CBILBO
        and ``c_r`` flags CBILBO.  The increments are chosen so that the four
        pure configurations reproduce Table 1 exactly:

        * TPG only:    w_reg + dt                       = w_tpg
        * SR only:     w_reg + ds                       = w_sr
        * BILBO:       w_reg + dt + ds + db             = w_bilbo
        * CBILBO:      w_reg + dt + ds + db + dc        = w_cbilbo
        """
        dt = self.w_tpg - self.w_reg
        ds = self.w_sr - self.w_reg
        db = self.w_bilbo - self.w_tpg - self.w_sr + self.w_reg
        dc = self.w_cbilbo - self.w_bilbo
        return {"tpg": dt, "sr": ds, "bilbo": db, "cbilbo": dc}

    def describe(self) -> dict:
        """Full table rendering used by the Table 1 bench and the docs."""
        return {
            "bit_width": self.bit_width,
            "registers": {kind.name: self.register_cost(kind) for kind in TestRegisterKind},
            "multiplexers": {n: self.mux_cost(n) for n in sorted(self.mux_costs)},
            "constant_tpg_weight": self.constant_tpg_weight,
        }


#: The cost model used throughout the paper's evaluation (8-bit data path).
PAPER_COST_MODEL = CostModel()
