"""Area accounting: transistors of registers and multiplexers.

Following section 4.1 of the paper, the area of a circuit is the transistor
count of its registers (in whatever test-register configuration they end up
in) plus its multiplexers; the functional data-path logic is excluded.  The
*area overhead* of a BIST design is its area relative to the optimal
non-BIST reference design of the same DFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..datapath.bist import TestPlan
from ..datapath.components import TestRegisterKind
from ..datapath.datapath import Datapath
from .transistors import CostModel, PAPER_COST_MODEL


@dataclass(frozen=True)
class AreaBreakdown:
    """Transistor-count breakdown of a data path (one row of Table 3)."""

    register_count: int
    kind_counts: Mapping[TestRegisterKind, int]
    mux_inputs: int
    register_area: int
    mux_area: int
    constant_tpg_count: int = 0

    @property
    def total(self) -> int:
        """Registers plus multiplexers (constant generators are reported but,
        as in the paper, not included in the register/mux transistor total)."""
        return self.register_area + self.mux_area

    def counts_row(self) -> dict:
        """The R / T / S / B / C / M / Area columns of Table 3."""
        return {
            "R": self.register_count,
            "T": self.kind_counts.get(TestRegisterKind.TPG, 0),
            "S": self.kind_counts.get(TestRegisterKind.SR, 0),
            "B": self.kind_counts.get(TestRegisterKind.BILBO, 0),
            "C": self.kind_counts.get(TestRegisterKind.CBILBO, 0),
            "M": self.mux_inputs,
            "Area": self.total,
        }


def datapath_area(datapath: Datapath, plan: TestPlan | None = None,
                  cost_model: CostModel = PAPER_COST_MODEL) -> AreaBreakdown:
    """Compute the register + multiplexer area of a data path.

    When ``plan`` is ``None`` every register is costed as a plain system
    register (the reference, non-BIST case); otherwise registers are costed
    according to the test-register kind the plan forces onto them.
    """
    if plan is None:
        kinds = {reg: TestRegisterKind.NONE for reg in datapath.register_ids}
        constant_ports = 0
    else:
        kinds = plan.register_kinds(datapath)
        constant_ports = len(plan.constant_tpg_ports)

    kind_counts: dict[TestRegisterKind, int] = {kind: 0 for kind in TestRegisterKind}
    register_area = 0
    for reg_id in datapath.register_ids:
        kind = kinds[reg_id]
        kind_counts[kind] += 1
        register_area += cost_model.register_cost(kind)

    mux_area = 0
    mux_inputs = 0
    for mux in datapath.multiplexers():
        if mux.is_real:
            mux_area += cost_model.mux_cost(mux.inputs)
            mux_inputs += mux.inputs

    return AreaBreakdown(
        register_count=len(datapath.register_ids),
        kind_counts=kind_counts,
        mux_inputs=mux_inputs,
        register_area=register_area,
        mux_area=mux_area,
        constant_tpg_count=constant_ports,
    )


def area_overhead(bist_area: float, reference_area: float) -> float:
    """Area overhead (%) of a BIST design relative to its reference design."""
    if reference_area <= 0:
        raise ValueError(f"reference area must be positive, got {reference_area}")
    return 100.0 * (bist_area - reference_area) / reference_area
