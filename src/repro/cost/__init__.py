"""Transistor-count cost model (Table 1) and area accounting."""

from .transistors import (
    CostModel,
    CostModelError,
    DEFAULT_CONSTANT_TPG_WEIGHT,
    MUX_EXTRAPOLATION_STEP,
    PAPER_COST_MODEL,
    TABLE1_MUXES_8BIT,
    TABLE1_REGISTERS_8BIT,
)
from .area import AreaBreakdown, area_overhead, datapath_area

__all__ = [
    "CostModel",
    "CostModelError",
    "DEFAULT_CONSTANT_TPG_WEIGHT",
    "MUX_EXTRAPOLATION_STEP",
    "PAPER_COST_MODEL",
    "TABLE1_MUXES_8BIT",
    "TABLE1_REGISTERS_8BIT",
    "AreaBreakdown",
    "area_overhead",
    "datapath_area",
]
