"""The :class:`Model` container for integer linear programs.

A :class:`Model` owns decision variables, linear constraints and a single
(minimisation or maximisation) objective.  It lowers itself into the sparse
(CSR) matrix form consumed by the solver backends — built incrementally from
constraint triplets, never through dense rows — and offers convenience
helpers used heavily by the BIST formulation:

* ``add_binary`` / ``add_integer`` / ``add_continuous`` variable factories,
* ``add_constr`` with automatic naming,
* ``add_or_indicator`` implementing the paper's equation (14) OR-linearisation,
* ``add_and_indicator`` implementing equations (17)/(18) and (21)/(22).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from ..obs.metrics import record_solve
from .expr import Constraint, LinExpr, Sense, Variable, VarType
from .solution import Solution, SolveStats, SolveStatus


class ModelError(ValueError):
    """Raised for malformed models (duplicate names, wrong bounds, ...)."""


@dataclass
class MatrixForm:
    """Matrix view of a model, consumed by backends.

    ``A_ub x <= b_ub`` and ``A_eq x == b_eq`` with variable ``bounds`` and
    integrality flags, objective ``c`` (always minimisation: maximisation
    models are negated before reaching this form).

    The constraint matrices are :class:`scipy.sparse.csr_matrix` by default —
    ADVBIST constraint matrices are overwhelmingly sparse, and both bundled
    backends consume CSR natively.  :meth:`to_dense` produces the equivalent
    dense lowering (used by the cross-backend parity tests and by external
    backends that cannot handle sparse input).
    """

    c: np.ndarray
    A_ub: sparse.csr_matrix | np.ndarray
    b_ub: np.ndarray
    A_eq: sparse.csr_matrix | np.ndarray
    b_eq: np.ndarray
    bounds: list[tuple[float, float]]
    integrality: np.ndarray
    variables: list[Variable]
    offset: float = 0.0
    #: Free-form provenance labels (e.g. the sweep's ``k``) stamped by the
    #: formulation layer; the adaptive portfolio buckets on them.  Never
    #: consulted by the exact solve path.
    tags: dict | None = None

    @property
    def is_sparse(self) -> bool:
        """Whether the constraint matrices are stored in CSR form."""
        return sparse.issparse(self.A_ub) or sparse.issparse(self.A_eq)

    @property
    def nnz(self) -> int:
        """Structural nonzeros across ``A_ub`` and ``A_eq``."""
        total = 0
        for matrix in (self.A_ub, self.A_eq):
            if sparse.issparse(matrix):
                total += matrix.nnz
            else:
                total += int(np.count_nonzero(matrix))
        return total

    def to_dense(self) -> "MatrixForm":
        """The same lowering with dense ``numpy`` constraint matrices."""
        if not self.is_sparse:
            return self
        return replace(
            self,
            A_ub=self.A_ub.toarray() if sparse.issparse(self.A_ub) else self.A_ub,
            A_eq=self.A_eq.toarray() if sparse.issparse(self.A_eq) else self.A_eq,
        )


class Model:
    """An integer linear program under construction.

    Parameters
    ----------
    name:
        Label used in reports.
    sense:
        ``"min"`` (default) or ``"max"``.
    """

    def __init__(self, name: str = "model", sense: str = "min"):
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()
        #: Provenance labels copied onto every lowering (see MatrixForm.tags).
        self.tags: dict | None = None

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vartype: VarType = VarType.BINARY,
        lower: float = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create a new decision variable and register it with the model."""
        if name in self._names:
            raise ModelError(f"duplicate variable name: {name!r}")
        if upper is None:
            upper = 1.0 if vartype is VarType.BINARY else float("inf")
        if upper < lower:
            raise ModelError(f"variable {name!r} has upper bound {upper} < lower bound {lower}")
        var = Variable(index=len(self.variables), name=name, vartype=vartype,
                       lower=float(lower), upper=float(upper))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a {0,1} variable."""
        return self.add_var(name, VarType.BINARY, 0.0, 1.0)

    def add_integer(self, name: str, lower: float = 0.0, upper: float | None = None) -> Variable:
        """Create a general integer variable."""
        return self.add_var(name, VarType.INTEGER, lower, upper)

    def add_continuous(self, name: str, lower: float = 0.0, upper: float | None = None) -> Variable:
        """Create a continuous variable."""
        return self.add_var(name, VarType.CONTINUOUS, lower, upper)

    def add_binaries(self, names: Iterable[str]) -> list[Variable]:
        """Create a batch of binary variables."""
        return [self.add_binary(name) for name in names]

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add_constr(self, constr: Constraint, name: str = "") -> Constraint:
        """Register a constraint (optionally naming it) and return it."""
        if not isinstance(constr, Constraint):
            raise ModelError(
                "add_constr expects a Constraint; build one with <=, >= or == "
                f"(got {type(constr)!r})"
            )
        if name:
            constr.name = name
        elif not constr.name:
            constr.name = f"c{len(self.constraints)}"
        self.constraints.append(constr)
        return constr

    def add_constrs(self, constrs: Iterable[Constraint], prefix: str = "") -> list[Constraint]:
        """Register several constraints, naming them ``prefix_i``."""
        added = []
        for i, constr in enumerate(constrs):
            label = f"{prefix}_{i}" if prefix else ""
            added.append(self.add_constr(constr, label))
        return added

    def set_objective(self, expr: LinExpr | Variable | float) -> None:
        """Set the objective function (replacing any previous one)."""
        if isinstance(expr, Variable):
            expr = expr + 0.0
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr))
        self.objective = expr

    # ------------------------------------------------------------------
    # higher-level modelling idioms used by the paper
    # ------------------------------------------------------------------
    def add_or_indicator(self, indicator: Variable, operands: Sequence[Variable],
                         name: str = "or") -> None:
        """Force ``indicator = OR(operands)`` for binary variables.

        Implements the paper's equation (14): ``n * indicator - sum(x_i) >= 0``
        makes ``indicator`` 1 whenever any operand is 1, and the reverse
        direction ``indicator <= sum(x_i)`` keeps it 0 when all operands are 0
        (the paper relies on objective pressure for that direction; adding it
        explicitly keeps the indicator meaningful even for non-costed uses).
        """
        operands = list(operands)
        if not operands:
            self.add_constr(indicator + 0.0 == 0.0, f"{name}_empty")
            return
        n = float(len(operands))
        self.add_constr(n * indicator - LinExpr.sum(operands) >= 0.0, f"{name}_force_up")
        self.add_constr(indicator - LinExpr.sum(operands) <= 0.0, f"{name}_force_down")

    def add_and_indicator(self, indicator: Variable, a: Variable, b: Variable,
                          name: str = "and") -> None:
        """Force ``indicator = a AND b`` for binary variables.

        Implements the paper's equations (17)/(18) and (21)/(22):
        ``a + b - indicator <= 1`` (force up) and ``a + b - 2*indicator >= 0``
        (force down).
        """
        self.add_constr(a + b - indicator <= 1.0, f"{name}_force_up")
        self.add_constr(a + b - 2.0 * indicator >= 0.0, f"{name}_force_down")

    # ------------------------------------------------------------------
    # matrix form and solving
    # ------------------------------------------------------------------
    def to_matrix_form(self, sparse_form: bool = True) -> MatrixForm:
        """Convert to the matrix representation used by the backends.

        The constraint matrices are built incrementally as COO triplets
        (row, column, coefficient) — one triplet per constraint term, never a
        dense row — and assembled into CSR at the end.  Duplicate triplets on
        the same cell sum, matching the accumulating semantics of repeated
        variables in one expression.  ``sparse_form=False`` produces the
        equivalent dense lowering.
        """
        nvar = len(self.variables)
        sign = 1.0 if self.sense == "min" else -1.0

        c = np.zeros(nvar)
        for var, coeff in self.objective.terms.items():
            c[var.index] += sign * coeff
        offset = sign * self.objective.constant

        ub = _TripletBuilder()
        eq = _TripletBuilder()
        for constr in self.constraints:
            rhs = -constr.expr.constant
            if constr.sense is Sense.LE:
                ub.add_row(constr.expr.terms, rhs, flip=False)
            elif constr.sense is Sense.GE:
                ub.add_row(constr.expr.terms, rhs, flip=True)
            else:
                eq.add_row(constr.expr.terms, rhs, flip=False)

        form = MatrixForm(
            c=c,
            A_ub=ub.matrix(nvar),
            b_ub=ub.rhs_array(),
            A_eq=eq.matrix(nvar),
            b_eq=eq.rhs_array(),
            bounds=[(var.lower, var.upper) for var in self.variables],
            integrality=np.array(
                [0 if var.vartype is VarType.CONTINUOUS else 1 for var in self.variables]
            ),
            variables=list(self.variables),
            offset=offset,
            tags=dict(self.tags) if self.tags else None,
        )
        return form if sparse_form else form.to_dense()

    def solve(self, backend: str | object = "auto", time_limit: float | None = None,
              mip_gap: float = 1e-6, presolve: bool = False, cuts: bool = False,
              incumbent_hint: float | None = None) -> Solution:
        """Solve the model and return a :class:`Solution`.

        Parameters
        ----------
        backend:
            ``"scipy"`` (HiGHS through :func:`scipy.optimize.milp`),
            ``"bnb"`` (the pure-Python branch-and-bound backend),
            ``"portfolio"`` (both, raced concurrently),
            ``"auto"`` (scipy if available, otherwise bnb), or an object with
            a ``solve(matrix_form, time_limit, mip_gap)`` method.
        time_limit:
            Wall-clock limit in seconds handed to the backend.
        mip_gap:
            Relative optimality gap at which the backend may stop.
        presolve:
            Run the :mod:`repro.accel.presolve` pipeline on the lowering and
            solve the reduced model instead; the solution is lifted back to
            this model's variables exactly, so results never change.
        cuts:
            Run the :mod:`repro.ilp.cuts` root cutting-plane loop on the
            (possibly presolved) lowering before the backend solves it.
            Cuts only append valid inequalities — rows every integer point
            satisfies — so the optimum and decoding are unchanged.
        incumbent_hint:
            A known-achievable objective value (in this model's sense) used
            as a warm-start cutoff by backends declaring
            ``supports_warm_start``; silently ignored by the others.
        """
        start = time.perf_counter()
        solver = _resolve_backend(backend)
        # Unregistered object backends predate the sparse lowering: hand them
        # the dense form unless they declare sparse support themselves.
        wants_sparse = getattr(solver, "supports_sparse", False)
        form = self.to_matrix_form(sparse_form=wants_sparse)
        # Hints are stated in the user's objective sense; the lowering (and
        # every backend) works on the minimisation form.
        internal_hint = (incumbent_hint if incumbent_hint is None or self.sense == "min"
                         else -incumbent_hint)

        presolved = None
        cut_info: dict | None = None

        def strengthen(lowering: MatrixForm) -> MatrixForm:
            # Root cutting planes: extra valid rows on A_ub, nothing else
            # touched, so presolve lift-back and decoding stay exact.
            nonlocal cut_info
            if not cuts:
                return lowering
            from .cuts import root_cut_loop

            strengthened, cut_info = root_cut_loop(lowering)
            return strengthened

        if presolve:
            from ..accel.presolve import presolve_form  # lazy: accel imports ilp

            presolved = presolve_form(form)
            if presolved.infeasible:
                solution = presolved.infeasible_solution()
            elif presolved.solved:
                solution = presolved.fixed_solution()
            else:
                solution = _backend_solve(solver, strengthen(presolved.reduced),
                                          time_limit, mip_gap, internal_hint)
                solution = presolved.lift_solution(solution)
        else:
            solution = _backend_solve(solver, strengthen(form), time_limit,
                                      mip_gap, internal_hint)

        if solution.status.has_solution and self.sense == "max" and solution.objective is not None:
            solution.objective = -solution.objective
        solution.solve_seconds = time.perf_counter() - start

        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = stats.backend or getattr(solver, "name", type(solver).__name__)
        stats.wall_seconds = solution.solve_seconds
        stats.nnz = form.nnz
        stats.num_variables = self.num_variables
        stats.num_constraints = self.num_constraints
        stats.nodes = stats.nodes or solution.nodes
        if stats.gap is None:
            stats.gap = solution.gap
        if stats.lp_relaxation is not None and self.sense == "max":
            stats.lp_relaxation = -stats.lp_relaxation
        if presolved is not None:
            stats.presolve = presolved.stats.as_dict()
        if cut_info is not None:
            stats.cuts = cut_info
        solution.stats = stats
        record_solve(stats.backend, stats.wall_seconds, stats.presolve)
        return solution

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_binary(self) -> int:
        return sum(1 for v in self.variables if v.vartype is VarType.BINARY)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def check_solution(self, solution: Solution, tol: float = 1e-6) -> list[Constraint]:
        """Return the list of constraints violated by ``solution``."""
        if not solution.status.has_solution:
            return []
        assignment = dict(solution.values)
        return [c for c in self.constraints if not c.satisfied_by(assignment, tol)]

    def stats(self) -> dict:
        """Summary statistics used in reports and tests."""
        return {
            "name": self.name,
            "variables": self.num_variables,
            "binaries": self.num_binary,
            "constraints": self.num_constraints,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Model({self.name!r}, vars={self.num_variables}, "
                f"constrs={self.num_constraints}, sense={self.sense})")


class _TripletBuilder:
    """Accumulates one constraint block (``<=`` or ``==``) as COO triplets."""

    def __init__(self):
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.data: list[float] = []
        self.rhs: list[float] = []

    def add_row(self, terms: dict, rhs: float, flip: bool) -> None:
        """Append one constraint row; ``flip`` negates it (``>=`` → ``<=``)."""
        sign = -1.0 if flip else 1.0
        row_index = len(self.rhs)
        for var, coeff in terms.items():
            if coeff == 0.0:
                continue
            self.rows.append(row_index)
            self.cols.append(var.index)
            self.data.append(sign * coeff)
        self.rhs.append(sign * rhs)

    def matrix(self, nvar: int) -> sparse.csr_matrix:
        shape = (len(self.rhs), nvar)
        coo = sparse.coo_matrix(
            (np.asarray(self.data, dtype=float), (self.rows, self.cols)), shape=shape
        )
        return coo.tocsr()

    def rhs_array(self) -> np.ndarray:
        return np.asarray(self.rhs, dtype=float)


# ----------------------------------------------------------------------
# compound batched solving (the block-diagonal burst model)
# ----------------------------------------------------------------------
def combine_matrix_forms(forms: Sequence[MatrixForm]) -> MatrixForm:
    """Pack independent lowerings into one block-diagonal compound form.

    The constraint matrices are stacked block-diagonally (CSR), the
    objective/bounds/integrality vectors concatenated and the offsets
    summed, so a single backend call solves every block at once.  Because
    the blocks share no variables, the compound optimum minimises each
    block's objective independently — a proven-optimal compound solution
    is a proven-optimal solution of every block.

    Block variables are re-indexed into the compound space and renamed
    ``b{j}:{name}`` (``Variable`` is hashed by all of its fields, so two
    blocks containing structurally identical variables must not collide).
    """
    if not forms:
        raise ModelError("combine_matrix_forms() needs at least one form")
    variables: list[Variable] = []
    bounds: list[tuple[float, float]] = []
    for j, form in enumerate(forms):
        base = len(variables)
        variables.extend(
            replace(var, index=base + var.index, name=f"b{j}:{var.name}")
            for var in form.variables
        )
        bounds.extend(form.bounds)
    return MatrixForm(
        c=np.concatenate([form.c for form in forms]),
        A_ub=sparse.block_diag(
            [sparse.csr_matrix(form.A_ub) for form in forms], format="csr"),
        b_ub=np.concatenate([form.b_ub for form in forms]),
        A_eq=sparse.block_diag(
            [sparse.csr_matrix(form.A_eq) for form in forms], format="csr"),
        b_eq=np.concatenate([form.b_eq for form in forms]),
        bounds=bounds,
        integrality=np.concatenate([form.integrality for form in forms]),
        variables=variables,
        offset=float(sum(form.offset for form in forms)),
    )


def split_compound_solution(compound: MatrixForm, solution: Solution,
                            forms: Sequence[MatrixForm]) -> list[Solution]:
    """Lift a compound solution back into one :class:`Solution` per block.

    Each block's values are re-keyed onto its original variables and its
    objective recomputed as ``c_j @ x_j + offset_j`` (exact: the block
    objectives sum to the compound objective by construction).  A compound
    ``OPTIMAL`` proves every block optimal (the blocks are independent);
    every other status is propagated unchanged — an infeasible compound
    cannot name the offending block, so all blocks report it.
    """
    if not solution.status.has_solution:
        return [Solution(status=solution.status, message=solution.message)
                for _ in forms]
    x = np.array([solution.values.get(var, 0.0) for var in compound.variables])
    split: list[Solution] = []
    base = 0
    for form in forms:
        width = len(form.variables)
        block_x = x[base:base + width]
        values = {var: float(block_x[var.index]) for var in form.variables}
        objective = float(form.c @ block_x) + form.offset
        split.append(Solution(
            status=solution.status,
            objective=objective,
            values=values,
            message=solution.message,
        ))
        base += width
    return split


def solve_models(models: Sequence["Model"], backend: str | object = "auto",
                 time_limit: float | None = None, mip_gap: float = 1e-6,
                 presolve: bool = False, cuts: bool = False) -> list[Solution]:
    """Solve independent models through one compound backend call.

    The batched equivalent of calling :meth:`Model.solve` on each model:
    lowerings are (optionally) presolved per block — blocks presolve
    proves infeasible or solves outright never reach the backend — and the
    remaining blocks are combined with :func:`combine_matrix_forms`,
    solved in a single call, and split back per model with exact per-model
    objectives, statuses and :class:`SolveStats` (each stamped with a
    ``batch`` summary).  ``time_limit`` caps the one compound call, so it
    is a *shared* budget across the batch.

    Incumbent hints do not compose across blocks, so batched solves are
    always hint-free — the engine keeps warm-start chains out of batches.
    ``cuts`` runs the root cutting-plane loop per block *before* combining
    (cuts only ever reference one block's variables, so validity is
    per-block exact).
    """
    if not models:
        return []
    start = time.perf_counter()
    solver = _resolve_backend(backend)
    wants_sparse = getattr(solver, "supports_sparse", False)
    forms = [model.to_matrix_form(sparse_form=True) for model in models]
    presolved: list = [None] * len(models)
    solutions: list[Solution | None] = [None] * len(models)
    pending: list[tuple[int, MatrixForm]] = []

    if presolve:
        from ..accel.presolve import presolve_form  # lazy: accel imports ilp

        for j, form in enumerate(forms):
            reduced = presolve_form(form)
            presolved[j] = reduced
            if reduced.infeasible:
                solutions[j] = reduced.infeasible_solution()
            elif reduced.solved:
                solutions[j] = reduced.fixed_solution()
            else:
                pending.append((j, reduced.reduced))
    else:
        pending = list(enumerate(forms))

    if cuts and pending:
        from .cuts import root_cut_loop  # lazy: cuts imports this module

        pending = [(j, root_cut_loop(form)[0]) for j, form in pending]

    batch_info: dict | None = None
    if len(pending) == 1:
        j, form = pending[0]
        sub = _backend_solve(solver, form if wants_sparse else form.to_dense(),
                             time_limit, mip_gap, None)
        solutions[j] = (presolved[j].lift_solution(sub)
                        if presolved[j] is not None else sub)
    elif pending:
        compound = combine_matrix_forms([form for _, form in pending])
        batch_info = {
            "size": len(pending),
            "compound_variables": len(compound.variables),
            "compound_nnz": compound.nnz,
        }
        sub = _backend_solve(solver,
                             compound if wants_sparse else compound.to_dense(),
                             time_limit, mip_gap, None)
        blocks = split_compound_solution(compound, sub,
                                         [form for _, form in pending])
        for (j, _), block in zip(pending, blocks):
            solutions[j] = (presolved[j].lift_solution(block)
                            if presolved[j] is not None else block)

    wall = time.perf_counter() - start
    if batch_info is not None:
        batch_info["wall_seconds"] = round(wall, 6)
    share = wall / len(models)
    results: list[Solution] = []
    for j, (model, form, solution) in enumerate(zip(models, forms, solutions)):
        if solution.status.has_solution and model.sense == "max" \
                and solution.objective is not None:
            solution.objective = -solution.objective
        # The backend call is shared: attribute an equal share of the wall
        # to each model so aggregate timings stay additive.
        solution.solve_seconds = share
        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = stats.backend or getattr(solver, "name", type(solver).__name__)
        stats.wall_seconds = share
        stats.nnz = form.nnz
        stats.num_variables = model.num_variables
        stats.num_constraints = model.num_constraints
        if presolved[j] is not None:
            stats.presolve = presolved[j].stats.as_dict()
        if batch_info is not None and any(j == idx for idx, _ in pending):
            stats.batch = dict(batch_info)
        solution.stats = stats
        record_solve(stats.backend, stats.wall_seconds, stats.presolve)
        results.append(solution)
    return results


def _backend_solve(solver, form: MatrixForm, time_limit: float | None,
                   mip_gap: float, incumbent_hint: float | None) -> Solution:
    """Invoke a backend, forwarding the hint only where it is understood."""
    kwargs = {}
    if incumbent_hint is not None and getattr(solver, "supports_warm_start", False):
        kwargs["incumbent_hint"] = incumbent_hint
    return solver.solve(form, time_limit=time_limit, mip_gap=mip_gap, **kwargs)


def _resolve_backend(backend: str | object):
    """Turn a backend specification into a solver object."""
    if hasattr(backend, "solve"):
        return backend
    from .backends import get_backend

    if not isinstance(backend, str):
        raise ModelError(f"unsupported backend specification: {backend!r}")
    return get_backend(backend)
