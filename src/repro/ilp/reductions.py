"""Search-space reductions for assignment-style ILPs (paper section 3.5).

Register assignment is symmetric: permuting register labels maps any feasible
assignment onto another feasible assignment of identical cost.  The paper
breaks this n!-fold symmetry by picking a set of pairwise-incompatible
variables (which must occupy distinct registers in every solution) and pinning
them to registers 0, 1, 2, ... a priori.

The helpers here are generic over any binary assignment family ``x[(item,
slot)]`` so that both the ADVBIST formulation and the reference data-path ILP
can share them.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from .expr import Variable
from .model import Model


def pin_assignments(
    model: Model,
    assignment_vars: Mapping[tuple[Hashable, Hashable], Variable],
    pins: Sequence[tuple[Hashable, Hashable]],
    name: str = "pin",
) -> int:
    """Pin ``item -> slot`` pairs by fixing the corresponding binaries to 1.

    Parameters
    ----------
    model:
        Model owning the assignment variables.
    assignment_vars:
        Family of binaries keyed by ``(item, slot)``.
    pins:
        Pairs to fix.  Pairs whose variable is absent from the family are
        ignored (this happens when a pre-filter already removed impossible
        assignments).

    Returns
    -------
    int
        Number of pinning constraints actually added.
    """
    added = 0
    for item, slot in pins:
        var = assignment_vars.get((item, slot))
        if var is None:
            continue
        model.add_constr(var + 0.0 == 1.0, f"{name}_{item}_{slot}")
        added += 1
    return added


def lexicographic_slot_ordering(
    model: Model,
    assignment_vars: Mapping[tuple[Hashable, Hashable], Variable],
    items: Sequence[Hashable],
    slots: Sequence[Hashable],
    name: str = "lex",
) -> int:
    """Break slot-permutation symmetry with a lexicographic ordering rule.

    Slot ``j`` may only be used if slot ``j-1`` hosts at least one item with a
    smaller index.  This is a weaker but more generally applicable reduction
    than :func:`pin_assignments`; it is exercised by the ablation benchmarks
    to quantify how much the paper's clique pinning actually buys.
    """
    added = 0
    for slot_pos in range(1, len(slots)):
        slot = slots[slot_pos]
        prev_slot = slots[slot_pos - 1]
        for item_pos, item in enumerate(items):
            var = assignment_vars.get((item, slot))
            if var is None:
                continue
            earlier = [
                assignment_vars[(other, prev_slot)]
                for other in items[:item_pos]
                if (other, prev_slot) in assignment_vars
            ]
            if not earlier:
                model.add_constr(var + 0.0 == 0.0, f"{name}_{slot}_{item}_unusable")
                added += 1
                continue
            total = earlier[0]
            for extra in earlier[1:]:
                total = total + extra
            model.add_constr(var - total <= 0.0, f"{name}_{slot}_{item}")
            added += 1
    return added
