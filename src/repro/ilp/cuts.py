"""Cutting planes for the ADVBIST packing structure.

The lowering in :mod:`repro.ilp.model` produces three row families that
classical cutting planes exploit:

* **set-packing rows** ``sum(x_i) <= 1`` (register/MISR sharing exclusivity) —
  the conflict-graph edges from which *clique cuts* are lifted;
* **aggregated OR rows** ``sum(x_i) - n*y <= 0`` (the paper's equation (14)
  ``or_force_up`` linearisation) — each disaggregates into ``n`` *implication
  cuts* ``x_i <= y`` that are individually much tighter in the LP relaxation;
* **knapsack-like rows** (resource limits, compatibility big-Ms) — the source
  of *cover cuts* ``sum_{j in C} x_j <= |C| - 1``.

Every cut produced here is valid for **all** integer-feasible points of the
original model (never merely for the optimum), so appending cuts to ``A_ub``
preserves the feasible set and the optimal objective exactly — lift-back and
solution decoding are untouched.  :func:`root_cut_loop` separates violated
cuts against successive LP relaxation optima, the classic root cutting-plane
loop; :func:`static_strengthening_cuts` emits the x*-independent family
(implications) without solving any LP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import MatrixForm

#: Minimum LP violation for a cut to enter the pool during separation.
_MIN_VIOLATION = 1e-4
_TOL = 1e-9


@dataclass(frozen=True)
class Cut:
    """One valid inequality ``sum(coeffs[i] * x[cols[i]]) <= rhs``."""

    cols: tuple[int, ...]
    coeffs: tuple[float, ...]
    rhs: float
    kind: str = "cut"

    def violation(self, x: np.ndarray) -> float:
        """How far ``x`` violates the cut (<= 0 means satisfied)."""
        return float(sum(c * x[j] for j, c in zip(self.cols, self.coeffs)) - self.rhs)

    def _key(self) -> tuple:
        order = np.argsort(np.asarray(self.cols))
        return (tuple(self.cols[i] for i in order),
                tuple(round(self.coeffs[i], 9) for i in order),
                round(self.rhs, 9))


class CutPool:
    """A deduplicating pool of generated cuts.

    Cuts are identified by their (sorted) support, coefficients and rhs, so
    re-separating the same inequality in a later round is a no-op — the loop
    in :func:`root_cut_loop` terminates as soon as separation runs dry.
    """

    def __init__(self):
        self._cuts: list[Cut] = []
        self._seen: set[tuple] = set()

    def __len__(self) -> int:
        return len(self._cuts)

    def __iter__(self):
        return iter(self._cuts)

    def add(self, cut: Cut) -> bool:
        """Add ``cut`` unless an identical one is already pooled."""
        key = cut._key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._cuts.append(cut)
        return True

    def counts(self) -> dict[str, int]:
        """Pooled cuts per kind, for stats reporting."""
        out: dict[str, int] = {}
        for cut in self._cuts:
            out[cut.kind] = out.get(cut.kind, 0) + 1
        return out


# ----------------------------------------------------------------------
# row-structure recognition
# ----------------------------------------------------------------------
def _binary_mask(form: MatrixForm) -> np.ndarray:
    """Variables that are integer with bounds inside ``[0, 1]``."""
    lower = np.array([lo for lo, _ in form.bounds], dtype=float)
    upper = np.array([hi for _, hi in form.bounds], dtype=float)
    return (form.integrality.astype(bool) & (lower >= -_TOL) & (upper <= 1.0 + _TOL))


def _csr_rows(form: MatrixForm):
    """Iterate ``(row, cols, coeffs, rhs)`` over the ``A_ub`` block."""
    A = sparse.csr_matrix(form.A_ub)
    for r in range(A.shape[0]):
        lo, hi = A.indptr[r], A.indptr[r + 1]
        yield r, A.indices[lo:hi], A.data[lo:hi], float(form.b_ub[r])


def packing_rows(form: MatrixForm) -> list[tuple[int, ...]]:
    """Supports of the set-packing rows ``sum(x_i) <= 1`` over binaries."""
    binary = _binary_mask(form)
    rows: list[tuple[int, ...]] = []
    for _, cols, coeffs, rhs in _csr_rows(form):
        if len(cols) < 2 or abs(rhs - 1.0) > _TOL:
            continue
        if np.all(np.abs(coeffs - 1.0) <= _TOL) and np.all(binary[cols]):
            rows.append(tuple(int(j) for j in cols))
    return rows


def or_indicator_rows(form: MatrixForm) -> list[tuple[tuple[int, ...], int]]:
    """Aggregated OR rows ``sum(x_i) - n*y <= 0`` as ``(operands, indicator)``.

    Matches the ``or_force_up`` rows the equation-(14) lowering produces:
    rhs 0, exactly one negative coefficient ``-n`` on a binary indicator where
    ``n`` equals the number of unit-coefficient binary operands (``n >= 2`` —
    a single operand is already the implication itself).
    """
    binary = _binary_mask(form)
    found: list[tuple[tuple[int, ...], int]] = []
    for _, cols, coeffs, rhs in _csr_rows(form):
        if abs(rhs) > _TOL or len(cols) < 3:
            continue
        neg = coeffs < -_TOL
        if np.count_nonzero(neg) != 1:
            continue
        pos_cols, pos_coeffs = cols[~neg], coeffs[~neg]
        indicator = int(cols[neg][0])
        n = -float(coeffs[neg][0])
        if (abs(n - len(pos_cols)) <= _TOL and len(pos_cols) >= 2
                and np.all(np.abs(pos_coeffs - 1.0) <= _TOL)
                and binary[indicator] and np.all(binary[pos_cols])):
            found.append((tuple(int(j) for j in pos_cols), indicator))
    return found


# ----------------------------------------------------------------------
# cut families
# ----------------------------------------------------------------------
def implication_cuts(form: MatrixForm, xstar: np.ndarray | None = None,
                     min_violation: float = _MIN_VIOLATION) -> list[Cut]:
    """Disaggregate each OR row into implications ``x_i - y <= 0``.

    Valid because an OR indicator is 1 whenever any operand is: for every
    0/1 point of the model, ``x_i = 1`` forces ``sum >= 1`` hence ``y = 1``.
    With ``xstar`` given, only implications the LP point violates are
    returned (separation mode); without it, all of them (static mode).
    """
    cuts = []
    for operands, indicator in or_indicator_rows(form):
        for j in operands:
            if xstar is not None and xstar[j] - xstar[indicator] <= min_violation:
                continue
            cuts.append(Cut(cols=(j, indicator), coeffs=(1.0, -1.0),
                            rhs=0.0, kind="implication"))
    return cuts


def clique_cuts(form: MatrixForm, xstar: np.ndarray,
                min_violation: float = _MIN_VIOLATION,
                max_cuts: int = 64) -> list[Cut]:
    """Lift packing rows into maximal-clique inequalities.

    Two binaries conflict when some packing row contains both.  A clique in
    that graph admits at most one member set to 1 in any integer point, so
    ``sum_{j in clique} x_j <= 1`` is valid.  Each packing row is greedily
    extended by variables (highest LP value first) adjacent to every current
    member; only strict extensions violated by ``xstar`` are emitted — the
    original row already bounds the un-extended clique.
    """
    base_rows = packing_rows(form)
    if not base_rows:
        return []
    adjacency: dict[int, set[int]] = {}
    for row in base_rows:
        for j in row:
            adjacency.setdefault(j, set()).update(row)
    for j, neigh in adjacency.items():
        neigh.discard(j)

    candidates = sorted(adjacency, key=lambda j: -xstar[j])
    cuts: list[Cut] = []
    for row in base_rows:
        clique = set(row)
        common = set.intersection(*(adjacency[j] for j in row)) - clique
        for j in candidates:
            if j in common:
                clique.add(j)
                common &= adjacency[j]
                if not common:
                    break
        if len(clique) <= len(row):
            continue
        members = tuple(sorted(clique))
        if sum(xstar[j] for j in members) - 1.0 > min_violation:
            cuts.append(Cut(cols=members, coeffs=(1.0,) * len(members),
                            rhs=1.0, kind="clique"))
            if len(cuts) >= max_cuts:
                break
    return cuts


def cover_cuts(form: MatrixForm, xstar: np.ndarray,
               min_violation: float = _MIN_VIOLATION,
               max_cuts: int = 64) -> list[Cut]:
    """Greedy minimal-cover separation over the binary knapsack rows.

    A row ``sum a_j x_j <= b`` over binaries (negative coefficients handled
    by complementing ``x_j -> 1 - x_j``) with a *cover* ``C`` (a set whose
    weights exceed the capacity) admits at most ``|C| - 1`` members at 1, so
    ``sum_{j in C} x_j <= |C| - 1`` is valid for every integer point.  The
    separation heuristic packs the items the LP sets closest to 1 first
    (classic ``(1 - x*_j)/a_j`` order) and emits only violated covers.
    """
    binary = _binary_mask(form)
    cuts: list[Cut] = []
    for _, cols, coeffs, rhs in _csr_rows(form):
        if len(cols) < 2 or not np.all(binary[cols]):
            continue
        # Complement negative-coefficient variables into knapsack form.
        flip = coeffs < -_TOL
        a = np.abs(coeffs)
        b = rhs + float(np.sum(a[flip]))
        if b <= _TOL or np.all(a <= _TOL):
            continue
        # Pure packing rows produce only covers weaker than the row itself.
        if abs(b - 1.0) <= _TOL and np.all(np.abs(a - 1.0) <= _TOL):
            continue
        xbar = np.where(flip, 1.0 - xstar[cols], xstar[cols])
        order = np.argsort((1.0 - xbar) / np.maximum(a, _TOL))
        weight, cover = 0.0, []
        for idx in order:
            cover.append(int(idx))
            weight += float(a[idx])
            if weight > b + _TOL:
                break
        else:
            continue  # the whole row cannot exceed capacity: no cover
        if float(np.sum(xbar[cover])) - (len(cover) - 1) <= min_violation:
            continue
        # Map the complemented cover back to original-variable space:
        # sum_{C+} x_j + sum_{C-} (1 - x_j) <= |C| - 1.
        signs = np.where(flip[cover], -1.0, 1.0)
        shift = float(np.sum(flip[cover]))
        cut_cols = tuple(int(cols[idx]) for idx in cover)
        cuts.append(Cut(cols=cut_cols, coeffs=tuple(float(s) for s in signs),
                        rhs=float(len(cover) - 1) - shift, kind="cover"))
        if len(cuts) >= max_cuts:
            break
    return cuts


def generate_cuts(form: MatrixForm, xstar: np.ndarray, pool: CutPool,
                  min_violation: float = _MIN_VIOLATION) -> list[Cut]:
    """Separate every cut family against ``xstar``; pool and return the new ones."""
    fresh: list[Cut] = []
    for cut in (implication_cuts(form, xstar, min_violation)
                + clique_cuts(form, xstar, min_violation)
                + cover_cuts(form, xstar, min_violation)):
        if pool.add(cut):
            fresh.append(cut)
    return fresh


def static_strengthening_cuts(form: MatrixForm) -> list[Cut]:
    """The x*-independent cuts (implications), without solving any LP."""
    return implication_cuts(form, xstar=None)


# ----------------------------------------------------------------------
# applying cuts and the root loop
# ----------------------------------------------------------------------
def apply_cuts(form: MatrixForm, cuts: list[Cut]) -> MatrixForm:
    """Append ``cuts`` as extra ``A_ub`` rows; variables/objective untouched."""
    if not cuts:
        return form
    nvar = len(form.variables)
    rows, cols, data, rhs = [], [], [], []
    for r, cut in enumerate(cuts):
        rows.extend([r] * len(cut.cols))
        cols.extend(cut.cols)
        data.extend(cut.coeffs)
        rhs.append(cut.rhs)
    extra = sparse.coo_matrix((data, (rows, cols)), shape=(len(cuts), nvar)).tocsr()
    A_ub = sparse.vstack([sparse.csr_matrix(form.A_ub), extra], format="csr")
    return replace(form, A_ub=A_ub,
                   b_ub=np.concatenate([form.b_ub, np.asarray(rhs, dtype=float)]))


def _lp_optimum(form: MatrixForm) -> tuple[float, np.ndarray] | None:
    """Optimum of the LP relaxation, or ``None`` when it has none."""
    bounds = np.array(form.bounds, dtype=float)
    result = linprog(
        c=form.c,
        A_ub=form.A_ub if form.A_ub.shape[0] else None,
        b_ub=form.b_ub if form.A_ub.shape[0] else None,
        A_eq=form.A_eq if form.A_eq.shape[0] else None,
        b_eq=form.b_eq if form.A_eq.shape[0] else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun), np.asarray(result.x, dtype=float)


def root_cut_loop(form: MatrixForm, max_rounds: int = 4,
                  min_violation: float = _MIN_VIOLATION) -> tuple[MatrixForm, dict]:
    """The classic root cutting-plane loop.

    Solves the LP relaxation, separates violated cuts, appends them and
    repeats until no family finds a violated inequality (or ``max_rounds``).
    Returns the strengthened form — same variables, extra ``A_ub`` rows, so
    the MILP optimum and solution decoding are unchanged — and a stats dict
    (rounds run, cuts per kind, LP bound before and after).
    """
    pool = CutPool()
    info: dict = {"rounds": 0, "cuts": {}, "lp_before": None, "lp_after": None}
    current = form
    for _ in range(max_rounds):
        optimum = _lp_optimum(current)
        if optimum is None:
            break  # infeasible/unbounded relaxation: leave that to the backend
        bound, xstar = optimum
        if info["lp_before"] is None:
            info["lp_before"] = bound + form.offset
        info["lp_after"] = bound + form.offset
        fresh = generate_cuts(current, xstar, pool, min_violation)
        if not fresh:
            break
        info["rounds"] += 1
        current = apply_cuts(current, fresh)
    if info["rounds"] and info["lp_before"] is not None:
        final = _lp_optimum(current)
        if final is not None:
            info["lp_after"] = final[0] + form.offset
    info["cuts"] = pool.counts()
    info["total"] = len(pool)
    return current, info


# ----------------------------------------------------------------------
# warm-start cutoff helpers (shared by the scipy-ws backend)
# ----------------------------------------------------------------------
def objective_is_integral(form: MatrixForm) -> bool:
    """Whether every feasible point has an integer objective value.

    True when the objective touches only integer variables and every
    coefficient is an integer — the transistor-count objectives of the
    ADVBIST lowering qualify.
    """
    c = np.asarray(form.c, dtype=float)
    active = np.nonzero(c)[0]
    integer = form.integrality.astype(bool)
    return bool(np.all(integer[active]) and np.allclose(c[active], np.round(c[active])))


def objective_cutoff_form(form: MatrixForm, internal_hint: float) -> MatrixForm:
    """Append the cutoff row ``c @ x <= hint + slack`` to the lowering.

    ``internal_hint`` is an offset-free, known-achievable objective value;
    the slack keeps equal-value solutions feasible while pruning strictly
    worse ones (one objective quantum for integral objectives, a relative
    epsilon otherwise) — the same policy the branch and bound applies to its
    warm-start cutoff.
    """
    if objective_is_integral(form):
        slack = 0.5
    else:
        slack = max(1e-6, 1e-9 * abs(internal_hint))
    active = np.nonzero(form.c)[0]
    cut = Cut(cols=tuple(int(j) for j in active),
              coeffs=tuple(float(form.c[j]) for j in active),
              rhs=float(internal_hint) + slack, kind="cutoff")
    return apply_cuts(form, [cut])


def safe_hint_gap(form: MatrixForm, internal_hint: float, mip_gap: float) -> float:
    """A loosened-but-exact MIP gap for a cutoff-constrained solve.

    With the cutoff row in place every incumbent satisfies
    ``obj <= hint``; when the objective is integral and provably nonnegative
    over the variable box (``c >= 0`` with nonnegative lower bounds — the
    transistor-count objectives qualify) any incumbent has ``|obj| <= hint``,
    so a relative gap of ``0.9 / hint`` implies an absolute gap below one
    objective quantum — which proves optimality outright.  The solver stops
    as soon as exactness is certain instead of grinding the dual bound
    closed.  When the preconditions fail the gap is returned unchanged.
    """
    if not objective_is_integral(form):
        return mip_gap
    hint = float(internal_hint)
    if hint < 1.0 or not math.isfinite(hint):
        return mip_gap
    c = np.asarray(form.c, dtype=float)
    lower = np.array([lo for lo, _ in form.bounds], dtype=float)
    if np.any(c < 0.0) or np.any(lower[np.nonzero(c)[0]] < 0.0):
        return mip_gap
    return max(mip_gap, 0.9 / hint)
