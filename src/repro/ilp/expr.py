"""Linear expressions and decision variables for the ILP modelling layer.

This module provides the small algebra used to state integer linear programs
in the rest of the package: :class:`Variable` objects are created through a
:class:`repro.ilp.model.Model`, combined into :class:`LinExpr` objects with
ordinary Python arithmetic, and turned into constraints with ``<=``, ``>=``
and ``==``.

The design intentionally mirrors familiar modelling APIs (PuLP, gurobipy)
so that the formulation code in :mod:`repro.core.formulation` reads almost
one-to-one against the equations of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class VarType(enum.Enum):
    """Domain of a decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class Sense(enum.Enum):
    """Relational sense of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A single decision variable.

    Variables are created by :meth:`repro.ilp.model.Model.add_var` and are
    identified by their ``index`` within the owning model.  They are hashable
    and immutable so they can be used as dictionary keys when building
    families of variables (``x[v, r]`` style).

    Attributes
    ----------
    index:
        Column index of the variable inside its model.
    name:
        Human-readable name, used in solution reporting and debugging.
    vartype:
        Domain of the variable (binary, integer or continuous).
    lower, upper:
        Bounds.  Binary variables always have bounds ``(0, 1)``.
    """

    index: int
    name: str
    vartype: VarType = VarType.BINARY
    lower: float = 0.0
    upper: float = 1.0

    # -- arithmetic -------------------------------------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return (-1.0 * self) + other

    def __mul__(self, coeff: float) -> "LinExpr":
        return LinExpr({self: float(coeff)}, 0.0)

    def __rmul__(self, coeff: float) -> "LinExpr":
        return self.__mul__(coeff)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # -- relational operators build constraints ---------------------------
    def __le__(self, other: "Variable | LinExpr | float") -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: "Variable | LinExpr | float") -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            if isinstance(other, Variable) and other is self:
                return True
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.index, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Variable({self.name})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Instances are immutable from the caller's point of view: all arithmetic
    returns new expressions.  Coefficients of value zero are kept out of the
    term map so that expression size reflects the true support.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0):
        self.terms: dict[Variable, float] = {
            v: float(c) for v, c in (terms or {}).items() if c != 0.0
        }
        self.constant = float(constant)

    # -- construction helpers --------------------------------------------
    @staticmethod
    def sum(items: Iterable["Variable | LinExpr | float"]) -> "LinExpr":
        """Sum an iterable of variables, expressions and constants."""
        total = LinExpr()
        for item in items:
            total = total + item
        return total

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other: "Variable | LinExpr | float") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other._as_expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other)!r}")

    def __add__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        rhs = self._coerce(other)
        terms = dict(self.terms)
        for var, coeff in rhs.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
        return LinExpr(terms, self.constant + rhs.constant)

    def __radd__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coeff: float) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("LinExpr can only be scaled by a numeric constant")
        return LinExpr({v: c * coeff for v, c in self.terms.items()}, self.constant * coeff)

    def __rmul__(self, coeff: float) -> "LinExpr":
        return self.__mul__(coeff)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # -- relational operators --------------------------------------------
    def __le__(self, other: "Variable | LinExpr | float") -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.LE)

    def __ge__(self, other: "Variable | LinExpr | float") -> "Constraint":
        return Constraint(self - self._coerce(other), Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - self._coerce(other), Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - expressions rarely hashed
        return id(self)

    # -- evaluation -------------------------------------------------------
    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(coeff * assignment[var] for var, coeff in self.terms.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``.

    The right-hand side is folded into the expression's constant term, i.e.
    the constraint stored here is always of the form ``terms + constant
    sense 0``.
    """

    expr: LinExpr
    sense: Sense
    name: str = ""
    _tags: dict = field(default_factory=dict, repr=False)

    def named(self, name: str) -> "Constraint":
        """Return the same constraint carrying a descriptive name."""
        self.name = name
        return self

    def satisfied_by(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check whether the constraint holds under ``assignment``."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"


def quicksum(items: Iterable["Variable | LinExpr | float"]) -> LinExpr:
    """Convenience alias for :meth:`LinExpr.sum` (gurobipy-style name)."""
    return LinExpr.sum(items)
