"""A small integer-linear-programming toolkit.

This subpackage is the stand-in for the commercial ILP environment (CPLEX)
used by the paper: a modelling layer (:mod:`repro.ilp.expr`,
:mod:`repro.ilp.model`) plus two exact solver backends
(:mod:`repro.ilp.backends`).
"""

from .expr import Constraint, LinExpr, Sense, Variable, VarType, quicksum
from .model import MatrixForm, Model, ModelError
from .solution import Solution, SolveStats, SolveStatus
from .backends import (
    BackendInfo,
    BackendRegistryError,
    BranchAndBoundBackend,
    ScipyMilpBackend,
    available_backend_names,
    backend_info,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_name,
)
from .reductions import lexicographic_slot_ordering, pin_assignments

__all__ = [
    "Constraint",
    "LinExpr",
    "Sense",
    "Variable",
    "VarType",
    "quicksum",
    "MatrixForm",
    "Model",
    "ModelError",
    "Solution",
    "SolveStats",
    "SolveStatus",
    "BackendInfo",
    "BackendRegistryError",
    "BranchAndBoundBackend",
    "ScipyMilpBackend",
    "available_backend_names",
    "backend_info",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend_name",
    "lexicographic_slot_ordering",
    "pin_assignments",
]
