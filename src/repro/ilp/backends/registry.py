"""The solver-backend registry.

Backends register themselves with the :func:`register_backend` class
decorator, declaring capability metadata alongside the implementation::

    @register_backend("scipy", aliases=("highs",), supports_sparse=True)
    class ScipyMilpBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6) -> Solution: ...

The registry is the single source of truth for backend resolution: the
modelling layer (:meth:`repro.ilp.model.Model.solve`), the sweep engine and
the CLI all look backends up here, so adding a solver is one decorated class
— no switch statements to edit anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class BackendInfo:
    """Capability metadata of one registered solver backend.

    Attributes
    ----------
    name:
        Canonical registry name.
    cls:
        The backend class (instantiated with no arguments by default).
    aliases:
        Alternative names resolving to the same backend.
    supports_sparse:
        Whether :meth:`solve` consumes CSR constraint matrices natively.
        Backends without sparse support receive the dense lowering.
    supports_time_limit:
        Whether the backend honours the ``time_limit`` argument.
    supports_warm_start:
        Whether :meth:`solve` accepts an ``incumbent_hint`` objective cutoff
        (the branch and bound and the portfolio do; scipy/HiGHS does not).
    description:
        One-line summary shown by ``repro backends``.
    """

    name: str
    cls: type
    aliases: tuple[str, ...] = ()
    supports_sparse: bool = False
    supports_time_limit: bool = True
    supports_warm_start: bool = False
    description: str = ""

    def create(self) -> object:
        """Instantiate the backend with its default configuration."""
        return self.cls()


class BackendRegistryError(ValueError):
    """Raised for unknown backend names or conflicting registrations."""


_REGISTRY: dict[str, BackendInfo] = {}
_ALIASES: dict[str, str] = {}


def register_backend(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    supports_sparse: bool = False,
    supports_time_limit: bool = True,
    supports_warm_start: bool = False,
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator adding a solver backend to the registry.

    The decorated class gains ``name``, ``supports_sparse`` and ``info``
    attributes so an *instance* can be interrogated without a registry
    round-trip (the modelling layer checks ``supports_sparse`` to pick the
    lowering).
    """

    def decorator(cls: type) -> type:
        info = BackendInfo(
            name=name,
            cls=cls,
            aliases=tuple(aliases),
            supports_sparse=supports_sparse,
            supports_time_limit=supports_time_limit,
            supports_warm_start=supports_warm_start,
            description=description or (cls.__doc__ or "").strip().split("\n", 1)[0],
        )
        keys = [key.lower() for key in (name, *aliases)]
        # Validate every key before touching the registry, so a rejected
        # registration cannot leave phantom names behind.
        for key in keys:
            if key == "auto":
                raise BackendRegistryError("'auto' is reserved for backend resolution")
            existing = _ALIASES.get(key)
            if existing is not None and _REGISTRY[existing].cls is not cls:
                raise BackendRegistryError(
                    f"backend name {key!r} already registered by {existing!r}"
                )
        for key in keys:
            _ALIASES[key] = name
        _REGISTRY[name] = info
        cls.name = name
        cls.supports_sparse = supports_sparse
        cls.supports_warm_start = supports_warm_start
        cls.info = info
        return cls

    return decorator


def resolve_backend_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases and 'auto')."""
    key = name.lower()
    if key == "auto":
        return _auto_backend_name()
    if key not in _ALIASES:
        canonical = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        aliases = sorted(alias for alias in _ALIASES if alias not in _REGISTRY)
        alias_note = f" (aliases: {', '.join(aliases)})" if aliases else ""
        raise BackendRegistryError(
            f"unknown ILP backend {name!r}; available backends: "
            f"{canonical}{alias_note}, or 'auto'"
        )
    return _ALIASES[key]


def backend_info(name: str) -> BackendInfo:
    """The :class:`BackendInfo` for a (possibly aliased) backend name."""
    return _REGISTRY[resolve_backend_name(name)]


def get_backend(name: str = "auto") -> object:
    """Instantiate a solver backend by (possibly aliased) name.

    ``"auto"`` prefers the scipy/HiGHS backend and falls back to the
    pure-Python branch and bound if scipy's MILP interface is unavailable.
    """
    return backend_info(name).create()


def list_backends() -> list[BackendInfo]:
    """All registered backends, in canonical-name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def available_backend_names(include_aliases: bool = True) -> list[str]:
    """Names accepted by :func:`get_backend` (excluding ``'auto'``)."""
    if include_aliases:
        return sorted(_ALIASES)
    return sorted(_REGISTRY)


def iter_backend_rows() -> Iterator[dict]:
    """Capability rows for the ``repro backends`` report."""
    for info in list_backends():
        yield {
            "backend": info.name,
            "aliases": ",".join(info.aliases) or "-",
            "sparse": "yes" if info.supports_sparse else "no",
            "time_limit": "yes" if info.supports_time_limit else "no",
            "warm_start": "yes" if info.supports_warm_start else "no",
            "description": info.description,
        }


def _auto_backend_name() -> str:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        return _ALIASES["bnb"]
    return _ALIASES["scipy"]
