"""Solver backends for the ILP modelling layer.

Two backends are provided:

* :class:`ScipyMilpBackend` — HiGHS through :func:`scipy.optimize.milp`
  (default, fast, exact);
* :class:`BranchAndBoundBackend` — a self-contained pure-Python branch and
  bound used for cross-checking and for environments without HiGHS.
"""

from __future__ import annotations

from .branch_and_bound import BranchAndBoundBackend
from .scipy_milp import ScipyMilpBackend

_BACKENDS = {
    "scipy": ScipyMilpBackend,
    "highs": ScipyMilpBackend,
    "bnb": BranchAndBoundBackend,
    "branch_and_bound": BranchAndBoundBackend,
}


def get_backend(name: str = "auto"):
    """Instantiate a solver backend by name.

    ``"auto"`` prefers the scipy/HiGHS backend and falls back to the
    pure-Python branch and bound if scipy's MILP interface is unavailable.
    """
    key = name.lower()
    if key == "auto":
        try:
            from scipy.optimize import milp  # noqa: F401
        except ImportError:  # pragma: no cover - scipy is a hard dependency here
            return BranchAndBoundBackend()
        return ScipyMilpBackend()
    if key not in _BACKENDS:
        raise ValueError(
            f"unknown ILP backend {name!r}; available: {sorted(_BACKENDS)} or 'auto'"
        )
    return _BACKENDS[key]()


__all__ = ["ScipyMilpBackend", "BranchAndBoundBackend", "get_backend"]
