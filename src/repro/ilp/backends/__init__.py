"""Solver backends for the ILP modelling layer.

The package is a registry (:mod:`repro.ilp.backends.registry`): backends
self-register with the :func:`register_backend` class decorator, declaring
capability metadata (sparse support, time limits, warm-start hints).  Two
backends ship in-tree:

* :class:`ScipyMilpBackend` — HiGHS through :func:`scipy.optimize.milp`
  (default, fast, exact);
* :class:`BranchAndBoundBackend` — a self-contained pure-Python branch and
  bound used for cross-checking and for environments without HiGHS.

Both consume the sparse CSR lowering natively.
"""

from __future__ import annotations

from .registry import (
    BackendInfo,
    BackendRegistryError,
    available_backend_names,
    backend_info,
    get_backend,
    iter_backend_rows,
    list_backends,
    register_backend,
    resolve_backend_name,
)

# Importing the backend modules runs their ``register_backend`` decorators.
from .branch_and_bound import BranchAndBoundBackend
from .scipy_milp import ScipyMilpBackend

# The portfolio backend lives in repro.accel (it composes the backends above
# rather than implementing a solver) and registers itself when the top-level
# repro package imports repro.accel — importing any repro submodule runs that
# first, so it is always in the registry by the time user code can look.

__all__ = [
    "BackendInfo",
    "BackendRegistryError",
    "BranchAndBoundBackend",
    "ScipyMilpBackend",
    "available_backend_names",
    "backend_info",
    "get_backend",
    "iter_backend_rows",
    "list_backends",
    "register_backend",
    "resolve_backend_name",
]
