"""MILP backend built on :func:`scipy.optimize.milp` (the HiGHS solver).

This is the default backend.  It stands in for the commercial CPLEX solver
used in the paper: both are exact branch-and-cut MILP solvers, so optimal
objective values (and hence the "minimal area overhead" claims) carry over.

The backend consumes the sparse CSR lowering natively — HiGHS keeps the
matrices sparse end-to-end, so the dense intermediate the seed implementation
materialised never exists.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..model import MatrixForm
from ..solution import Solution, SolveStats, SolveStatus
from .registry import register_backend


@register_backend(
    "scipy",
    aliases=("highs",),
    supports_sparse=True,
    supports_time_limit=True,
    description="HiGHS branch-and-cut via scipy.optimize.milp (default, exact)",
)
class ScipyMilpBackend:
    """Solve ILPs with HiGHS via :func:`scipy.optimize.milp`."""

    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6) -> Solution:
        constraints = []
        if form.A_ub.shape[0]:
            constraints.append(
                LinearConstraint(form.A_ub, -np.inf * np.ones(form.A_ub.shape[0]), form.b_ub)
            )
        if form.A_eq.shape[0]:
            constraints.append(LinearConstraint(form.A_eq, form.b_eq, form.b_eq))

        lower = np.array([lo for lo, _ in form.bounds], dtype=float)
        upper = np.array([hi for _, hi in form.bounds], dtype=float)
        bounds = Bounds(lower, upper)

        options: dict = {"mip_rel_gap": mip_gap}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)

        result = milp(
            c=form.c,
            constraints=constraints,
            bounds=bounds,
            integrality=form.integrality,
            options=options,
        )

        status = _translate_status(result)
        gap = float(result.mip_gap) if getattr(result, "mip_gap", None) is not None else None
        nodes = int(getattr(result, "mip_node_count", 0) or 0)
        dual_bound = getattr(result, "mip_dual_bound", None)
        stats = SolveStats(
            backend=self.name,
            nodes=nodes,
            gap=gap,
            lp_relaxation=float(dual_bound) + form.offset if dual_bound is not None else None,
        )
        if not status.has_solution or result.x is None:
            return Solution(status=status, message=str(result.message), stats=stats)

        values = {}
        for var, raw in zip(form.variables, result.x):
            value = float(raw)
            if form.integrality[var.index]:
                value = float(round(value))
            values[var] = value
        objective = float(form.c @ result.x) + form.offset
        return Solution(
            status=status,
            objective=objective,
            values=values,
            nodes=nodes,
            gap=gap,
            message=str(result.message),
            stats=stats,
        )


def _translate_status(result) -> SolveStatus:
    """Map scipy's result status codes onto :class:`SolveStatus`."""
    # scipy.optimize.milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if result.status == 0:
        return SolveStatus.OPTIMAL
    if result.status == 1:
        return SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
    if result.status == 2:
        return SolveStatus.INFEASIBLE
    if result.status == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR
