"""A self-contained branch-and-bound MILP solver.

The paper solved its formulations with CPLEX; :mod:`scipy`'s HiGHS backend is
the day-to-day replacement.  This module provides a second, fully
self-contained solver so that

* the repository does not depend on any single external MILP engine for its
  correctness story (the two backends cross-check each other in the tests),
* solver behaviour itself (bounding, branching, incumbent handling, time
  limits) can be unit-tested, and
* small models remain solvable even in environments where HiGHS is
  unavailable.

The implementation is a classic LP-relaxation branch-and-bound:

1. propagate the node's variable bounds through ``A_ub`` (vectorised over
   the CSR nonzeros — see :class:`_Propagator`), pruning rows-infeasible
   nodes before any LP is solved,
2. solve the LP relaxation with :func:`scipy.optimize.linprog`,
3. if the relaxation is integral, update the incumbent,
4. otherwise branch on the most fractional integer variable, exploring the
   child whose bound looks more promising first (best-first on the parent
   relaxation value, depth-first tie-break to find incumbents early).

The CSR constraint matrices of the sparse lowering are handed straight to
``linprog`` (HiGHS accepts them natively), so each node solve stays sparse;
all per-node state updates are numpy array operations — no Python loops over
variables or constraint entries anywhere on the node path.

``cuts=True`` runs the :mod:`repro.ilp.cuts` root cutting-plane loop before
the search; ``node_cuts=True`` additionally re-separates globally valid cuts
against node LP optima during the dive (local separation, global validity —
the generated inequalities hold for every integer point of the model, so
they strengthen the whole remaining tree, not just the current subtree).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..model import MatrixForm
from ..solution import Solution, SolveStats, SolveStatus
from .registry import register_backend

_INTEGRALITY_TOL = 1e-6
#: Node interval at which ``node_cuts`` re-runs separation.
_NODE_CUT_INTERVAL = 64


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: the parent bound plus extra variable bounds."""

    bound: float
    order: int = field(compare=True)
    lower: np.ndarray = field(compare=False, default=None)
    upper: np.ndarray = field(compare=False, default=None)
    depth: int = field(compare=False, default=0)


class _Propagator:
    """Vectorised bound propagation over the ``A_ub`` block.

    Precomputes the COO triplet view once per solve; each call to
    :meth:`tighten` is pure numpy over the nonzeros:

    * minimum activity per row — ``sum_j min(a_ij * lo_j, a_ij * up_j)`` via
      a masked triplet product and one :func:`numpy.bincount`;
    * rows whose minimum activity already exceeds ``b`` prove the node
      infeasible with no LP solved;
    * per-nonzero bound tightening ``x_j <= lo_j + slack_r / a_rj`` (and the
      mirror for negative coefficients) scattered back with
      ``np.minimum.at`` / ``np.maximum.at``;
    * integral rounding of the tightened bounds for integer variables.

    Every derived bound is implied by ``A_ub x <= b_ub`` plus the node
    bounds, so propagation never excludes a feasible point of the node's
    subproblem — it only shrinks the LP and exposes infeasibility early.
    """

    def __init__(self, form: MatrixForm):
        A = sparse.csr_matrix(form.A_ub)
        coo = A.tocoo()
        keep = coo.data != 0.0
        self.rows = coo.row[keep]
        self.cols = coo.col[keep]
        self.data = coo.data[keep].astype(float)
        self.nrows = A.shape[0]
        self.b = np.asarray(form.b_ub, dtype=float)
        self.positive = self.data > 0.0
        self.integer = form.integrality.astype(bool)

    def tighten(self, lower: np.ndarray, upper: np.ndarray,
                max_passes: int = 3) -> tuple[np.ndarray, np.ndarray] | None:
        """Tightened ``(lower, upper)`` copies, or ``None`` when infeasible."""
        if self.nrows == 0 or self.rows.size == 0:
            return lower, upper
        lower = lower.copy()
        upper = upper.copy()
        for _ in range(max_passes):
            # Minimum activity per row.  Selected contributions are either
            # finite or -inf (a positive coefficient on an unbounded-below
            # variable / negative on unbounded-above), so row sums are never
            # NaN and a -inf row simply yields infinite slack (no pruning).
            contrib = np.where(self.positive,
                               self.data * lower[self.cols],
                               self.data * upper[self.cols])
            minact = np.bincount(self.rows, weights=contrib, minlength=self.nrows)
            slack = self.b - minact
            if np.any(slack < -1e-9):
                return None
            finite = np.isfinite(slack[self.rows])
            shift = np.where(finite, slack[self.rows] / self.data, 0.0)
            new_upper = upper.copy()
            pos = self.positive & finite
            np.minimum.at(new_upper, self.cols[pos],
                          lower[self.cols[pos]] + shift[pos])
            new_lower = lower.copy()
            neg = ~self.positive & finite
            np.maximum.at(new_lower, self.cols[neg],
                          upper[self.cols[neg]] + shift[neg])
            # Integer variables live on the integer lattice: round the
            # propagated bounds inward before comparing.
            new_upper[self.integer] = np.floor(new_upper[self.integer] + 1e-6)
            new_lower[self.integer] = np.ceil(new_lower[self.integer] - 1e-6)
            if np.any(new_lower > new_upper + 1e-9):
                return None
            if (np.all(new_upper >= upper - 1e-9)
                    and np.all(new_lower <= lower + 1e-9)):
                return new_lower, new_upper
            lower, upper = new_lower, new_upper
        return lower, upper


@register_backend(
    "bnb",
    aliases=("branch_and_bound",),
    supports_sparse=True,
    supports_time_limit=True,
    supports_warm_start=True,
    description="pure-Python LP-relaxation branch and bound (cross-check solver)",
)
class BranchAndBoundBackend:
    """Pure-Python LP-based branch and bound.

    ``incumbent_hint`` warm-starts the search with a *known-achievable*
    objective value (e.g. the previous ``k``'s design in a sweep, which
    embeds into this model): the hint becomes an initial pruning cutoff, so
    subtrees that cannot match it are discarded before any incumbent is
    found.  Solutions matching the hint exactly remain reachable, and a hint
    that turns out to be unachievable triggers one clean re-solve without
    it — a wrong hint can cost time, never correctness.

    ``stop_check`` (a zero-argument callable) is polled once per node; when
    it returns True the search stops as if a time limit had struck.  The
    portfolio backend uses it for first-wins cancellation.

    ``propagate`` toggles the vectorised per-node bound propagation (exact;
    on by default).  ``cuts`` runs the root cutting-plane loop before the
    search and ``node_cuts`` re-separates during it — both only append
    valid inequalities, so every knob combination returns the same optimum.
    """

    def __init__(self, node_limit: int = 200_000,
                 stop_check=None, propagate: bool = True,
                 cuts: bool = False, node_cuts: bool = False):
        self.node_limit = node_limit
        self.stop_check = stop_check
        self.propagate = propagate
        self.cuts = cuts
        self.node_cuts = node_cuts

    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6, incumbent_hint: float | None = None) -> Solution:
        start = time.perf_counter()
        integer_mask = form.integrality.astype(bool)

        lower0 = np.array([lo for lo, _ in form.bounds], dtype=float)
        upper0 = np.array([hi for _, hi in form.bounds], dtype=float)

        cut_pool = None
        if self.cuts or self.node_cuts:
            from ..cuts import CutPool, root_cut_loop

            cut_pool = CutPool()
        if self.cuts:
            form, _ = root_cut_loop(form)
        propagator = _Propagator(form) if self.propagate else None

        # When every objective coefficient is an integer over integer
        # variables (true for the transistor-count objectives of this repo),
        # any feasible objective value is an integer, so each LP bound can be
        # rounded up to the next integer before pruning.  This closes the
        # fractional tail of the relaxation and prunes far earlier.
        c = np.asarray(form.c, dtype=float)
        active = np.nonzero(c)[0]
        objective_integral = bool(
            np.all(integer_mask[active]) and np.allclose(c[active], np.round(c[active]))
        )

        def tighten(bound: float) -> float:
            if objective_integral and math.isfinite(bound):
                return math.ceil(bound - 1e-6)
            return bound

        best_x: np.ndarray | None = None
        best_obj = math.inf
        # Integral solutions at/above the warm-start cutoff, kept as a
        # fallback design should a limit strike before a real incumbent.
        backup_x: np.ndarray | None = None
        backup_obj = math.inf
        cutoff_active = False
        if incumbent_hint is not None:
            # The hint is a full objective value (offset included); the
            # search works in offset-free space.  The cutoff sits one
            # objective quantum above the hint so equal-value solutions stay
            # reachable — only strictly worse subtrees are pruned.
            internal_hint = float(incumbent_hint) - form.offset
            slack = 1.0 if objective_integral else max(1e-6, 1e-9 * abs(internal_hint))
            best_obj = internal_hint + slack
            cutoff_active = True
        root_relaxation: float | None = None
        nodes_explored = 0
        counter = 0

        root = _Node(bound=-math.inf, order=counter, lower=lower0, upper=upper0, depth=0)
        heap: list[_Node] = [root]

        # Which limit (if any) stopped the search.  ``None`` means the tree
        # was exhausted, i.e. the incumbent (when one exists) is optimal.
        limit_hit: SolveStatus | None = None
        # The node a limit interrupted mid-plunge: it is no longer on the
        # heap but its subtree is still open, so its bound takes part in the
        # dual bound below.
        interrupted: _Node | None = None
        while heap and limit_hit is None:
            node: _Node | None = heapq.heappop(heap)
            # Plunge: explore one child immediately (depth-first dive, on the
            # branch the relaxation already leans towards) and push only the
            # sibling.  Pure best-first keeps returning to the frontier —
            # child bounds rise along a dive, so the heap minimum is almost
            # never the freshly created child — and on models with hundreds
            # of binaries it explores thousands of nodes before the first
            # incumbent exists to prune with.
            while node is not None:
                if time_limit is not None and time.perf_counter() - start > time_limit:
                    limit_hit = SolveStatus.TIME_LIMIT
                    interrupted = node
                    break
                if self.stop_check is not None and self.stop_check():
                    # Cooperative cancellation (portfolio race decided):
                    # behave exactly like a time limit.
                    limit_hit = SolveStatus.TIME_LIMIT
                    interrupted = node
                    break
                if nodes_explored >= self.node_limit:
                    limit_hit = SolveStatus.NODE_LIMIT
                    interrupted = node
                    break
                if node.bound >= best_obj - 1e-9:
                    break  # bounded out before solving
                nodes_explored += 1

                node_lower, node_upper = node.lower, node.upper
                if propagator is not None:
                    tightened = propagator.tighten(node_lower, node_upper)
                    if tightened is None:
                        break  # propagation proved the subproblem infeasible
                    node_lower, node_upper = tightened
                relaxation = self._solve_relaxation(form, node_lower, node_upper)
                if relaxation is None:
                    break  # infeasible subproblem
                obj, x = relaxation
                if root_relaxation is None:
                    root_relaxation = obj

                frac_index = self._most_fractional(x, integer_mask)
                if frac_index is None:
                    rounded = x.copy()
                    rounded[integer_mask] = np.round(rounded[integer_mask])
                    if obj < best_obj - 1e-9:
                        # integral solution: new incumbent
                        best_obj = obj
                        best_x = rounded
                    elif obj < backup_obj:
                        # Integral but at/above the warm-start cutoff.  Keep
                        # it aside: if a limit strikes before any incumbent
                        # beats the hint, this is still a decodable design —
                        # without it a warm-started solve under time pressure
                        # would fail where a cold solve returns FEASIBLE.
                        backup_obj = obj
                        backup_x = rounded
                    break
                if tighten(obj) >= best_obj - 1e-9:
                    break  # bounded out

                if (self.node_cuts and cut_pool is not None
                        and nodes_explored % _NODE_CUT_INTERVAL == 0):
                    # Local separation, global validity: cuts separated at a
                    # node LP optimum hold for every integer point of the
                    # model, so they strengthen the whole remaining tree.
                    from ..cuts import apply_cuts, generate_cuts

                    fresh = generate_cuts(form, x, cut_pool)
                    if fresh:
                        form = apply_cuts(form, fresh)
                        if propagator is not None:
                            propagator = _Propagator(form)

                value = x[frac_index]
                floor_val = math.floor(value + _INTEGRALITY_TOL)
                ceil_val = floor_val + 1

                down_upper = node_upper.copy()
                down_upper[frac_index] = min(down_upper[frac_index], floor_val)
                up_lower = node_lower.copy()
                up_lower[frac_index] = max(up_lower[frac_index], ceil_val)

                down = _Node(bound=tighten(obj), order=0, lower=node_lower,
                             upper=down_upper, depth=node.depth + 1)
                up = _Node(bound=tighten(obj), order=0, lower=up_lower,
                           upper=node_upper, depth=node.depth + 1)
                # Dive towards the branch the fractional value is closer to.
                dive, sibling = ((up, down) if value - floor_val > 0.5
                                 else (down, up))
                if not np.any(sibling.lower > sibling.upper + 1e-12):
                    counter += 1
                    sibling.order = counter
                    heapq.heappush(heap, sibling)
                node = dive if not np.any(dive.lower > dive.upper + 1e-12) else None

        elapsed = time.perf_counter() - start
        stats = SolveStats(
            backend=self.name,
            nodes=nodes_explored,
            lp_relaxation=(root_relaxation + form.offset
                           if root_relaxation is not None else None),
        )
        if best_x is None and backup_x is not None and limit_hit is not None:
            # A limit struck before anything beat the warm-start cutoff, but
            # an integral solution above it exists: return that as the
            # (unproven) incumbent instead of failing the solve.
            best_obj = backup_obj
            best_x = backup_x
        if best_x is None:
            if limit_hit is not None:
                # A limit stopped the search before any incumbent was found:
                # report *which* limit, not a blanket TIME_LIMIT.
                return Solution(status=limit_hit, nodes=nodes_explored,
                                solve_seconds=elapsed,
                                message=f"no incumbent found ({limit_hit.value})",
                                stats=stats)
            if cutoff_active:
                # The tree was exhausted under the hint cutoff without an
                # incumbent, so no solution at or below the hint exists —
                # the hint was wrong.  Re-solve without it (on the budget
                # that remains) so a bad hint degrades speed, not answers.
                remaining = None
                if time_limit is not None:
                    remaining = time_limit - elapsed
                    if remaining <= 0:
                        return Solution(status=SolveStatus.TIME_LIMIT,
                                        nodes=nodes_explored, solve_seconds=elapsed,
                                        message="incumbent hint exhausted the time budget",
                                        stats=stats)
                fresh = self.solve(form, time_limit=remaining, mip_gap=mip_gap)
                fresh.nodes += nodes_explored
                if fresh.stats is not None:
                    fresh.stats.nodes = fresh.nodes
                fresh.message = ("incumbent hint was unachievable; re-solved cold"
                                 + (f"; {fresh.message}" if fresh.message else ""))
                return fresh
            return Solution(status=SolveStatus.INFEASIBLE, nodes=nodes_explored,
                            solve_seconds=elapsed, stats=stats)

        gap: float | None = None
        message = ""
        if limit_hit is None:
            status = SolveStatus.OPTIMAL
        else:
            # Limit hit with an incumbent in hand: the design is usable but
            # unproven.  The open subproblems are the heap nodes plus the
            # node the limit interrupted mid-plunge; the tightest known dual
            # bound is the smallest of their parent relaxations, falling
            # back to the root relaxation only when nothing tighter exists
            # (e.g. the limit struck at the root, whose bound is -inf).
            status = SolveStatus.FEASIBLE
            open_nodes = list(heap)
            if interrupted is not None:
                open_nodes.append(interrupted)
            open_bounds = [n.bound for n in open_nodes if n.bound > -math.inf]
            if not open_bounds and root_relaxation is not None:
                open_bounds = [root_relaxation]
            if open_bounds:
                best_bound = min(open_bounds)
                gap = max(0.0, (best_obj - best_bound) / max(abs(best_obj), 1e-9))
            stats.gap = gap
            message = f"stopped on {limit_hit.value} with incumbent"

        values = {}
        for var, raw in zip(form.variables, best_x):
            value = float(raw)
            if form.integrality[var.index]:
                value = float(round(value))
            values[var] = value
        return Solution(
            status=status,
            objective=float(best_obj) + form.offset,
            values=values,
            nodes=nodes_explored,
            solve_seconds=elapsed,
            gap=gap,
            message=message,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _solve_relaxation(self, form: MatrixForm, lower: np.ndarray,
                          upper: np.ndarray) -> tuple[float, np.ndarray] | None:
        """Solve the LP relaxation with the given bounds; None if infeasible."""
        result = linprog(
            c=form.c,
            A_ub=form.A_ub if form.A_ub.shape[0] else None,
            b_ub=form.b_ub if form.A_ub.shape[0] else None,
            A_eq=form.A_eq if form.A_eq.shape[0] else None,
            b_eq=form.b_eq if form.A_eq.shape[0] else None,
            # linprog accepts an (n, 2) array with +/-inf entries natively —
            # no per-node Python list building.
            bounds=np.column_stack((lower, upper)),
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x, dtype=float)

    @staticmethod
    def _most_fractional(x: np.ndarray, integer_mask: np.ndarray) -> int | None:
        """Index of the integer variable farthest from integrality, or None."""
        fractional_part = np.abs(x - np.round(x))
        fractional_part[~integer_mask] = 0.0
        index = int(np.argmax(fractional_part))
        if fractional_part[index] <= _INTEGRALITY_TOL:
            return None
        return index
