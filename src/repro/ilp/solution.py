"""Solver results: status codes, per-solve statistics and solutions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from .expr import Variable


class SolveStatus(enum.Enum):
    """Outcome of an ILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # a feasible incumbent, optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"      # stopped on the time limit with no incumbent
    NODE_LIMIT = "node_limit"      # stopped on the node limit with no incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a usable variable assignment accompanies this status."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveStats:
    """Structured statistics of one solver run.

    Every backend attaches an instance to the :class:`Solution` it returns;
    :meth:`repro.ilp.model.Model.solve` fills in whatever the backend could
    not know (matrix shape, nonzeros, total wall time).

    Attributes
    ----------
    backend:
        Registry name of the backend that produced the solution.
    wall_seconds:
        Wall-clock time of the full solve (lowering + backend).
    nodes:
        Branch-and-bound nodes explored (0 when not reported).
    lp_relaxation:
        Objective of the root LP relaxation / best dual bound, when known.
    nnz:
        Nonzeros in the constraint matrices (``A_ub`` plus ``A_eq``).
    num_variables / num_constraints:
        Dimensions of the lowered model.
    gap:
        Relative optimality gap of the incumbent, when known.
    presolve:
        Summary of the :mod:`repro.accel.presolve` reductions applied before
        the backend ran (``None`` when presolve was off).
    batch:
        Summary of the compound batched solve this model travelled in
        (see :func:`repro.ilp.model.solve_models`): the batch size, the
        compound model's dimensions and the shared backend-call wall time.
        ``None`` when the model was solved individually.
    cuts:
        Summary of the :mod:`repro.ilp.cuts` root cutting-plane loop
        (rounds, cuts per kind, LP bound before/after); ``None`` when the
        cuts knob was off.
    portfolio:
        The adaptive portfolio's decision record: the (rows, cols, k)
        bucket, the predicted backend, which arms actually started, the
        mode (``solo``/``challenger``/``race``) and the actual winner.
        ``None`` outside portfolio solves.
    """

    backend: str = ""
    wall_seconds: float = 0.0
    nodes: int = 0
    lp_relaxation: float | None = None
    nnz: int = 0
    num_variables: int = 0
    num_constraints: int = 0
    gap: float | None = None
    presolve: dict | None = None
    batch: dict | None = None
    cuts: dict | None = None
    portfolio: dict | None = None

    def as_row(self) -> dict:
        """Flat dict used by the reporting tables."""
        return {
            "backend": self.backend,
            "wall_s": round(self.wall_seconds, 3),
            "nodes": self.nodes,
            "nnz": self.nnz,
            "vars": self.num_variables,
            "constrs": self.num_constraints,
        }


@dataclass
class Solution:
    """A (possibly proven-optimal) solution returned by a solver backend.

    Attributes
    ----------
    status:
        Outcome of the solve.
    objective:
        Objective value of the incumbent (``None`` when no incumbent exists).
    values:
        Mapping from :class:`Variable` to its value.  Integer and binary
        variables are already rounded to exact integers.
    solve_seconds:
        Wall-clock time spent in the backend.
    nodes:
        Number of branch-and-bound nodes explored (0 when the backend does
        not report it).
    gap:
        Relative optimality gap of the incumbent, when known.
    stats:
        Structured :class:`SolveStats`; always populated after
        :meth:`repro.ilp.model.Model.solve`.
    """

    status: SolveStatus
    objective: float | None = None
    values: Mapping[Variable, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    nodes: int = 0
    gap: float | None = None
    message: str = ""
    stats: SolveStats | None = None

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, var: Variable, default: float = 0.0) -> float:
        """Value of ``var``, or ``default`` if the variable is absent."""
        return self.values.get(var, default)

    def is_one(self, var: Variable, tol: float = 0.5) -> bool:
        """True when a binary variable takes value 1 in this solution."""
        return self.values.get(var, 0.0) > tol

    @property
    def proven_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL
