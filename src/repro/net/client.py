"""An asyncio client for the TCP serve daemon.

:class:`ServeClient` speaks the newline-delimited JSON wire protocol
(`docs/wire-protocol.md`): connect, submit job specs, await results.  A
background reader task demultiplexes response lines by their echoed
``id``, so any number of jobs may be in flight on one connection and
awaited in any order::

    client = await ServeClient.connect(host, port)
    pending = await client.submit({"job": "sweep", "circuit": "fig1",
                                   "max_k": 2})
    async for event in pending.events():      # progress documents
        ...
    result = await pending.result()           # the terminal document
    await client.close()

Both the load-test harness (:mod:`repro.net.load`) and the protocol
tests drive the daemon through this module, so the client is exercised
against every server behaviour the suite asserts.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator

#: Document types that terminate a request (anything non-progress).
_TERMINAL_TYPES = ("result", "error", "control")


class ServeClientError(ConnectionError):
    """The connection died while requests were outstanding."""


class PendingJob:
    """One submitted request: a queue of its response documents."""

    def __init__(self, request_id: Any):
        self.id = request_id
        self._queue: asyncio.Queue = asyncio.Queue()
        self._terminal: dict | None = None

    def _deliver(self, doc: dict) -> None:
        self._queue.put_nowait(doc)

    async def events(self) -> AsyncIterator[dict]:
        """Yield progress documents until the terminal one (not yielded)."""
        while self._terminal is None:
            doc = await self._queue.get()
            if doc.get("type") in _TERMINAL_TYPES:
                self._terminal = doc
                return
            yield doc

    async def result(self) -> dict:
        """The terminal document (``result``/``error``), skipping progress."""
        async for _ in self.events():
            pass
        assert self._terminal is not None
        if self._terminal.get("type") == "error" and \
                self._terminal["error"]["type"] == "ConnectionClosed":
            raise ServeClientError(self._terminal["error"]["message"])
        return self._terminal


class ServeClient:
    """One connection to a serve daemon; demultiplexes responses by id."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[Any, PendingJob] = {}
        self._broadcast: list[dict] = []
        self._sequence = 0
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        """Open a connection to a listening daemon."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    async def submit(self, spec: dict, request_id: Any = None) -> PendingJob:
        """Send one job spec; returns the handle its responses arrive on.

        ``request_id`` defaults to a connection-unique ``"q<n>"`` string;
        pass an explicit id to mirror another client's numbering (ids are
        scoped per connection by the server, so collisions across
        connections are safe).
        """
        if request_id is None:
            self._sequence += 1
            request_id = f"q{self._sequence}"
        pending = PendingJob(request_id)
        self._pending[request_id] = pending
        await self._send({**spec, "id": request_id})
        return pending

    async def request(self, spec: dict, request_id: Any = None) -> dict:
        """Submit one spec and await its terminal document."""
        pending = await self.submit(spec, request_id)
        return await pending.result()

    async def control(self, op: str, **fields) -> dict:
        """Send one control op and await its reply document."""
        return await self.request({"op": op, **fields})

    async def _send(self, document: dict) -> None:
        if self._closed:
            raise ServeClientError("client is closed")
        self._writer.write((json.dumps(document) + "\n").encode("utf-8"))
        await self._writer.drain()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                doc = json.loads(line)
                pending = self._pending.get(doc.get("id"))
                if pending is None:
                    # Unaddressed documents (e.g. the server_shutdown
                    # broadcast) are kept for inspection.
                    self._broadcast.append(doc)
                    continue
                pending._deliver(doc)
                if doc.get("type") in _TERMINAL_TYPES:
                    del self._pending[doc["id"]]
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._fail_pending("connection closed by the server")

    def _fail_pending(self, message: str) -> None:
        for pending in list(self._pending.values()):
            pending._deliver({"type": "error", "id": pending.id,
                              "error": {"type": "ConnectionClosed",
                                        "message": message}})
        self._pending.clear()

    @property
    def broadcasts(self) -> list[dict]:
        """Documents that arrived without a matching pending request."""
        return list(self._broadcast)

    async def wait_closed(self) -> None:
        """Wait until the server closes the connection (EOF on the reader).

        Useful after requesting ``{"op": "shutdown"}``: the terminal
        ``server_shutdown`` broadcast is only guaranteed to be in
        :attr:`broadcasts` once the server has closed the stream.
        """
        await asyncio.gather(self._reader_task, return_exceptions=True)

    async def close(self) -> None:
        """Close the connection (idempotent); fails outstanding requests."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
        await asyncio.gather(self._reader_task, return_exceptions=True)
