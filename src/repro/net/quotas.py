"""Per-client admission quotas for the multi-client serve daemon.

A single greedy client must not starve every other connection of the
shared session's solver capacity.  :class:`ClientQuota` bounds, per
connection, (a) how many jobs may be in flight at once and (b) how much
solver wall clock one job may request.  Violations are answered with a
structured ``QuotaExceeded`` error *document* — the connection stays
open, only the offending request is refused.

    >>> from repro.api.jobs import SweepJob
    >>> quota = ClientQuota(max_jobs=2, max_time_limit=30.0)
    >>> quota.admit(inflight=1)          # one slot left: admitted
    >>> quota.cap_time_limit(SweepJob(circuit="fig1")).time_limit
    30.0
    >>> quota.admit(inflight=2)
    Traceback (most recent call last):
        ...
    repro.net.quotas.QuotaError: connection already has 2 jobs in flight (max_jobs=2); await a result before submitting more
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: The structured error type quota violations are answered with.
QUOTA_ERROR_TYPE = "QuotaExceeded"


class QuotaError(ValueError):
    """A request refused by a per-client quota (wire type ``QuotaExceeded``)."""


@dataclass(frozen=True)
class ClientQuota:
    """Per-connection admission limits.

    Attributes
    ----------
    max_jobs:
        Maximum jobs one connection may have in flight concurrently.
        This doubles as the bounded in-flight queue of the backpressure
        story: a client that does not read results cannot pile up
        unbounded work.
    max_time_limit:
        Cap in seconds on any job's requested ``time_limit``.  Jobs that
        ask for more are refused; jobs that ask for nothing (deferring
        to the session default) are pinned *to* the cap, so no request
        can exceed it by omission.  ``None`` leaves time limits to the
        session.
    """

    max_jobs: int = 8
    max_time_limit: float | None = None

    def __post_init__(self):
        if self.max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.max_time_limit is not None and self.max_time_limit <= 0:
            raise ValueError(
                f"max_time_limit must be positive, got {self.max_time_limit}")

    def admit(self, inflight: int) -> None:
        """Raise :class:`QuotaError` when a new job would exceed ``max_jobs``."""
        if inflight >= self.max_jobs:
            raise QuotaError(
                f"connection already has {inflight} jobs in flight "
                f"(max_jobs={self.max_jobs}); await a result before "
                f"submitting more")

    def cap_time_limit(self, job):
        """Return ``job`` with its ``time_limit`` held under the cap.

        A job requesting more than ``max_time_limit`` raises
        :class:`QuotaError`; a job requesting nothing is pinned to the
        cap (the session default could be larger).  Job specs are
        frozen, so a capped spec is a new instance.
        """
        if self.max_time_limit is None:
            return job
        requested = getattr(job, "time_limit", None)
        if requested is None:
            return replace(job, time_limit=self.max_time_limit)
        if requested > self.max_time_limit:
            raise QuotaError(
                f"job requests time_limit={requested}s but this client is "
                f"capped at {self.max_time_limit}s")
        return job
