"""The transport-agnostic serve protocol engine.

One request grammar, two transports: the stdin/stdout pipe daemon
(:mod:`repro.api.serve`) and the asyncio TCP server
(:mod:`repro.net.server`) both decode lines with :func:`decode_request`,
answer control operations with :func:`handle_control` and execute job
specs with :func:`run_job` — so every wire-visible behaviour (error
documents, progress streaming, the response shapes documented in
``docs/wire-protocol.md``) is defined exactly once, here.

The division of labour:

* :func:`decode_request` — line → :class:`Request`, raising
  :class:`ProtocolError` for invalid JSON or an oversized line (bounded
  buffering: a client cannot make the daemon hold an arbitrarily large
  request line in memory);
* :func:`handle_control` — answer ``ping`` / ``cache_info`` /
  ``cache_clear`` / ``scheduler_stats`` / ``stats`` / ``metrics`` (a
  shutdown request is acknowledged by the transport itself, which owns
  the drain);
* :func:`parse_job` / :func:`run_job` — spec dict → envelope, with
  progress documents streamed through the transport-supplied ``emit``
  callable.  ``run_job`` is blocking; the TCP transport runs it in a
  thread pool via ``run_in_executor`` so concurrent clients coalesce on
  the session's shared scheduler.

Response documents are plain dicts; the transports own serialisation,
write locking and flushing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

#: Control operations both transports answer besides job specs.
CONTROL_OPS = ("ping", "cache_info", "cache_clear", "scheduler_stats",
               "stats", "metrics", "shutdown")

#: Default cap on one request line (bytes of UTF-8).  A line above the
#: cap is rejected with a ``ProtocolError`` document instead of being
#: buffered — the daemon's memory use per connection stays bounded.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A request line the protocol refuses: invalid JSON or oversized."""


@dataclass(frozen=True)
class Request:
    """One decoded request line.

    ``id`` is the client-chosen correlation id (or the transport's
    sequence number when the request carried none); ``kind`` is
    ``"control"`` or ``"job"``; ``data`` is the op/spec payload with the
    protocol-level ``"id"`` field already stripped.
    """

    id: Any
    kind: str
    data: Any

    @property
    def op(self) -> str | None:
        """The control operation name (``None`` for job requests)."""
        return self.data.get("op") if self.kind == "control" else None


def error_doc(request_id: Any, error_type: str, message: str) -> dict:
    """The wire shape of a protocol-level failure (one response line)."""
    return {"type": "error", "id": request_id,
            "error": {"type": error_type, "message": message}}


def control_doc(request_id: Any, op: str, **fields) -> dict:
    """The wire shape of a control-op reply (one response line)."""
    return {"type": "control", "id": request_id, "op": op, "ok": True,
            **fields}


def decode_request(line: str, default_id: Any,
                   max_line_bytes: int | None = MAX_LINE_BYTES) -> Request:
    """Decode one stripped request line into a :class:`Request`.

    Raises :class:`ProtocolError` when the line exceeds
    ``max_line_bytes`` (UTF-8 length) or is not valid JSON.  A JSON
    object with an ``"op"`` key is a control request, anything else a
    job request (non-object payloads are passed through so the job
    parser can reject them with a structured ``JobSpecError``).
    """
    if max_line_bytes is not None and len(line.encode("utf-8", "replace")) \
            > max_line_bytes:
        raise ProtocolError(
            f"request line exceeds the {max_line_bytes}-byte limit "
            f"({len(line)} characters); split the job or raise "
            f"--max-line-bytes")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    request_id = default_id
    if isinstance(data, dict) and "id" in data:
        request_id = data.pop("id")  # protocol field, not part of the spec
    kind = "control" if isinstance(data, dict) and "op" in data else "job"
    return Request(id=request_id, kind=kind, data=data)


def handle_control(session, request: Request,
                   extra_stats: dict | None = None) -> dict:
    """Answer one control request (everything except the shutdown ack).

    ``extra_stats`` lets a transport merge its own counters (open
    connections, rejected jobs, ...) into the ``stats`` reply under a
    ``"server"`` key.  An unknown op comes back as a ``ProtocolError``
    document; the caller keeps serving.
    """
    op = request.op
    if op == "ping":
        return control_doc(request.id, "ping")
    if op == "cache_info":
        return control_doc(request.id, "cache_info",
                           cache=session.cache_info())
    if op == "cache_clear":
        return control_doc(request.id, "cache_clear",
                           removed=session.cache_clear())
    if op == "scheduler_stats":
        return control_doc(request.id, "scheduler_stats",
                           scheduler=session.scheduler_stats())
    if op == "stats":
        stats = session.stats()
        if extra_stats:
            stats = {**stats, "server": dict(extra_stats)}
        return control_doc(request.id, "stats", stats=stats)
    if op == "metrics":
        # Prometheus-style exposition of the process-global registry;
        # ``snapshot`` carries the same data JSON-structured for clients
        # that would rather not parse the text format.
        return control_doc(request.id, "metrics",
                           text=session.metrics_text(),
                           snapshot=session.metrics_snapshot())
    return error_doc(request.id, "ProtocolError",
                     f"unknown op {op!r}; expected one of {CONTROL_OPS}")


def shutdown_doc(request_id: Any, **fields) -> dict:
    """The acknowledgement / terminal line of a shutdown."""
    return control_doc(request_id, "shutdown", **fields)


def parse_job(data: Any):
    """Spec dict → :class:`repro.api.jobs.JobSpec` (raises ``JobSpecError``)."""
    from ..api.jobs import job_from_dict  # lazy: breaks the api↔net cycle

    return job_from_dict(data)


def run_job(session, job, request_id: Any, emit: Callable[[dict], None],
            progress: bool = True) -> None:
    """Execute one parsed job spec, emitting response documents.

    Streams ``{"type": "progress", ...}`` documents while the job runs
    (unless ``progress`` is false) and always ends with exactly one
    ``{"type": "result", "envelope": ...}`` document — job failures are
    structured error *envelopes*, never exceptions.  Blocking: the
    caller picks the thread (inline for the pipe transport, an executor
    for TCP).
    """
    def stream_event(event: dict) -> None:
        emit({"type": "progress", "id": request_id, **event})

    envelope = session.run(job, progress=stream_event if progress else None)
    emit({"type": "result", "id": request_id, "envelope": envelope.to_dict()})
