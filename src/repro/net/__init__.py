"""repro.net — the multi-client network serving layer.

The :mod:`repro.api.serve` pipe daemon and the asyncio TCP daemon of
this package are two *transports* over one protocol engine
(:mod:`repro.net.protocol`): the same newline-delimited JSON request
grammar, the same response documents, the same control operations.  The
TCP transport (:mod:`repro.net.server`) multiplexes many concurrent
connections over a single warm :class:`repro.api.Session`, so
near-identical jobs from different clients coalesce on the session's
shared :class:`~repro.sched.scheduler.TaskScheduler`.

The pieces:

* :mod:`repro.net.protocol` — request decoding (with oversized-line
  rejection), control-op dispatch and blocking job execution, shared by
  both transports;
* :mod:`repro.net.quotas` — per-client admission limits
  (:class:`ClientQuota`: max concurrent jobs, per-job time-limit cap)
  answered with structured ``QuotaExceeded`` errors;
* :mod:`repro.net.server` — the asyncio TCP daemon
  (``repro serve --tcp HOST:PORT``): per-connection request scoping,
  bounded in-flight jobs, ``writer.drain()`` backpressure and graceful
  drain on SIGINT / ``{"op": "shutdown"}``;
* :mod:`repro.net.client` — an asyncio client (connect / submit /
  iterate responses) used by the load harness and the tests;
* :mod:`repro.net.load` — the multi-client load-test harness behind the
  ``serve-load`` benchmark suite.
"""

from .client import ServeClient
from .protocol import (
    CONTROL_OPS,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_request,
    handle_control,
    parse_job,
    run_job,
)
from .quotas import ClientQuota, QuotaError
from .server import ServeServer, serve_tcp
from .load import run_load_test

__all__ = [
    "CONTROL_OPS",
    "MAX_LINE_BYTES",
    "ClientQuota",
    "ProtocolError",
    "QuotaError",
    "Request",
    "ServeClient",
    "ServeServer",
    "decode_request",
    "handle_control",
    "parse_job",
    "run_job",
    "run_load_test",
    "serve_tcp",
]
