"""The multi-client load-test harness behind the ``serve-load`` suite.

:func:`run_load_test` spins up a real :class:`~repro.net.server.ServeServer`
on an ephemeral port, hammers it with N concurrent
:class:`~repro.net.client.ServeClient` connections sending a
duplicate-heavy job mix, then finishes with a *drain probe*: one last
client submits a job and immediately requests ``{"op": "shutdown"}``, so
every run also proves the graceful drain answers in-flight work before
closing.  The report carries throughput, latency percentiles and the
scheduler-stats delta (how many submitted tasks coalesced onto how few
actual solves) — the numbers the ``serve-load`` benchmark suite and the
CI smoke assert on.
"""

from __future__ import annotations

import asyncio
import math
import time

from .client import ServeClient, ServeClientError
from .quotas import ClientQuota
from .server import ServeServer


def default_spec_pool(circuit: str = "fig1", max_k: int | None = 2) -> list[dict]:
    """The duplicate-heavy job mix: two distinct specs, endlessly repeated.

    Every client cycles this pool, so with N clients the daemon sees the
    same two jobs from all directions at once — exactly the traffic shape
    the cross-request scheduler exists for.
    """
    return [
        {"job": "sweep", "circuit": circuit, "max_k": max_k},
        {"job": "synthesize", "circuit": circuit, "k": 1},
    ]


def _percentile(sorted_values: list[float], q: float) -> float | None:
    """Linear-interpolated percentile of an ascending sample list.

    Uses the standard ``rank = q/100 * (n - 1)`` definition (numpy's
    default): p50 of ``[1, 2, 3, 4]`` is 2.5, not 2 or 3.  An empty
    sample — every request rejected by quota, say — is ``None`` rather
    than a crash, and a singleton returns its only value for every ``q``.
    """
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q / 100.0 * (len(sorted_values) - 1)
    lower = math.floor(rank)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = rank - lower
    return (sorted_values[lower]
            + (sorted_values[upper] - sorted_values[lower]) * fraction)


def _latency_block(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    as_ms = lambda s: round(s * 1000.0, 3) if s is not None else None  # noqa: E731
    return {
        "p50_ms": as_ms(_percentile(ordered, 50)),
        "p90_ms": as_ms(_percentile(ordered, 90)),
        "p99_ms": as_ms(_percentile(ordered, 99)),
        "max_ms": as_ms(ordered[-1] if ordered else None),
        "mean_ms": as_ms(sum(ordered) / len(ordered) if ordered else None),
    }


async def _run_load(session, clients: int, requests_per_client: int,
                    spec_pool: list[dict], quota: ClientQuota | None,
                    concurrency: int, progress: bool,
                    drain_seconds: float) -> dict:
    server = ServeServer(session, port=0, quota=quota,
                         concurrency=concurrency, progress=progress,
                         drain_seconds=drain_seconds)
    host, port = await server.start()
    stats_before = session.scheduler_stats()
    latencies: list[float] = []
    answered = ok = errors = dropped = cached = 0

    async def one_client(index: int) -> None:
        nonlocal answered, ok, errors, dropped, cached
        client = await ServeClient.connect(host, port)
        try:
            for round_ in range(requests_per_client):
                spec = spec_pool[(index + round_) % len(spec_pool)]
                started = time.perf_counter()
                try:
                    doc = await client.request(spec)
                except ServeClientError:
                    dropped += 1
                    continue
                latencies.append(time.perf_counter() - started)
                answered += 1
                if doc.get("type") == "result" and \
                        doc["envelope"]["status"] == "ok":
                    ok += 1
                    if doc["envelope"].get("cached"):
                        cached += 1
                else:
                    # an error envelope or a protocol/quota error document
                    errors += 1
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(clients)))
    burst_wall = time.perf_counter() - started

    # Drain probe: one in-flight job must survive a graceful shutdown.
    probe = await ServeClient.connect(host, port)
    pending = await probe.submit(spec_pool[0])
    ack = await probe.control("shutdown")
    try:
        outcome = await pending.result()
        probe_answered = outcome.get("type") == "result"
    except ServeClientError:
        probe_answered = False
    await probe.wait_closed()  # the terminal broadcast lands before EOF
    terminal = [doc for doc in probe.broadcasts
                if doc.get("event") == "server_shutdown"]
    await probe.close()
    await server.serve_until_shutdown()

    requests = clients * requests_per_client
    stats_after = session.scheduler_stats()
    delta = {key: stats_after[key] - stats_before[key] for key in stats_after}
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests": requests,
        "answered": answered,
        "ok": ok,
        "errors": errors,
        "dropped": dropped,
        "cached_results": cached,
        "wall_seconds": round(burst_wall, 3),
        "requests_per_second": (round(answered / burst_wall, 3)
                                if burst_wall else None),
        "latency": _latency_block(latencies),
        "scheduler": delta,
        "dedup_ratio": (round(delta["submitted"] / delta["executed"], 3)
                        if delta.get("executed") else None),
        "drain": {
            "acknowledged": bool(ack.get("ok")),
            "probe_answered": probe_answered,
            "drained": bool(terminal and terminal[0].get("drained")),
        },
    }


def run_load_test(session, *, clients: int = 8, requests_per_client: int = 6,
                  spec_pool: list[dict] | None = None,
                  quota: ClientQuota | None = None, concurrency: int = 8,
                  progress: bool = False,
                  drain_seconds: float = 30.0) -> dict:
    """Hammer an in-process TCP daemon with N concurrent clients.

    Blocking (owns its own event loop): starts a daemon over ``session``,
    runs ``clients`` concurrent connections each sending
    ``requests_per_client`` jobs from the duplicate-heavy ``spec_pool``,
    finishes with the shutdown drain probe and returns the metrics block
    described in :mod:`repro.net.load`.  The caller's session keeps all
    warm state, so the scheduler delta in the report isolates exactly
    this run's traffic.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    pool = spec_pool if spec_pool is not None else default_spec_pool()
    if not pool:
        raise ValueError("spec_pool must not be empty")
    return asyncio.run(_run_load(session, clients, requests_per_client,
                                 pool, quota, concurrency, progress,
                                 drain_seconds))
