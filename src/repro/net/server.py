"""The asyncio TCP serve daemon: many clients, one warm session.

``repro serve --tcp HOST:PORT`` runs a :class:`ServeServer`: an asyncio
TCP server speaking the same newline-delimited JSON protocol as the
stdin/stdout pipe daemon (:mod:`repro.net.protocol` defines both), but
multiplexing any number of concurrent connections over one shared
:class:`repro.api.Session`.  Job execution is bridged from the event
loop into a thread pool with ``run_in_executor``, so near-identical jobs
from different clients coalesce on the session's shared
:class:`~repro.sched.scheduler.TaskScheduler` — the whole point of
serving many clients from one process.

Guarantees per connection:

* **request scoping** — ids are echoed per connection; two clients may
  both use ``"id": 1`` without ever seeing each other's responses;
* **errors never kill the connection** — malformed JSON, unknown ops,
  bad job specs and quota refusals are answered with structured
  ``error`` documents and the read loop keeps going;
* **backpressure** — request lines above ``max_line_bytes`` are
  rejected without buffering them, the per-connection in-flight job
  count is bounded by the :class:`~repro.net.quotas.ClientQuota` (excess
  submissions get ``QuotaExceeded``), and every response write awaits
  ``writer.drain()`` so a slow reader throttles its own producer instead
  of growing the daemon's buffers;
* **graceful drain** — SIGINT or a client ``{"op": "shutdown"}`` stops
  accepting connections, lets in-flight jobs finish (up to
  ``drain_seconds``, after which stragglers are answered with a
  ``ServerShutdown`` error), writes a terminal
  ``{"type": "control", "op": "shutdown", "event": "server_shutdown"}``
  line to every connection and closes them.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..obs.metrics import (record_connection_job, record_server,
                           set_connections_open)
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_request,
    error_doc,
    handle_control,
    parse_job,
    run_job,
    shutdown_doc,
)
from .quotas import QUOTA_ERROR_TYPE, ClientQuota, QuotaError

#: Sentinel closing a connection's outbound queue.
_CLOSE = object()


class _OversizedLine(Exception):
    """Raised by the line reader for a request above the byte cap."""


class _LineReader:
    """Newline-delimited reading with a hard per-line byte cap.

    ``asyncio.StreamReader.readline`` cannot recover cleanly from an
    over-limit line, so this wrapper owns its own buffer: an oversized
    line is *discarded* (never held in memory beyond one read chunk past
    the cap) and reported via :class:`_OversizedLine`, after which the
    stream is resynchronised at the next newline and reading continues.
    """

    _CHUNK = 1 << 16

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int):
        self._reader = reader
        self._buffer = bytearray()
        self._max = max_bytes

    async def next_line(self) -> str | None:
        """The next request line (``None`` on EOF)."""
        discarding = False
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                if discarding or len(raw) > self._max:
                    raise _OversizedLine()
                return raw.decode("utf-8", errors="replace")
            if len(self._buffer) > self._max:
                # Too long without a newline: drop what we hold and keep
                # discarding until the line ends.
                self._buffer.clear()
                discarding = True
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                if discarding:
                    raise _OversizedLine()
                if self._buffer:  # final line without a trailing newline
                    raw = bytes(self._buffer)
                    self._buffer.clear()
                    if len(raw) > self._max:
                        raise _OversizedLine()
                    return raw.decode("utf-8", errors="replace")
                return None
            self._buffer += chunk


class _Connection:
    """Per-connection state: line reader, outbound queue, in-flight jobs."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, max_line_bytes: int):
        self.lines = _LineReader(reader, max_line_bytes)
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        #: token -> (request_id, future, dispatch time) of running jobs.
        self.inflight: dict[object, tuple[Any, asyncio.Future, float]] = {}
        self.task: asyncio.Task | None = None     # the read-loop task
        self.writer_task: asyncio.Task | None = None
        self.closed = False

    def enqueue(self, doc: dict) -> None:
        """Queue one response document (dropped once the connection closed)."""
        if not self.closed:
            self.queue.put_nowait(doc)

    def close_queue(self) -> None:
        if not self.closed:
            self.closed = True
            self.queue.put_nowait(_CLOSE)


class ServeServer:
    """The asyncio multi-client TCP daemon over one warm session.

    Parameters
    ----------
    session:
        The shared :class:`repro.api.Session`; its scheduler and cache
        are what make concurrent clients coalesce.
    host / port:
        Bind address; port ``0`` picks a free port (reported by
        :meth:`start`).
    quota:
        Per-connection :class:`~repro.net.quotas.ClientQuota`.
    concurrency:
        Job-executing threads shared by all connections.
    progress:
        Stream ``progress`` documents while jobs run.
    max_line_bytes:
        Per-request-line byte cap (oversized lines are rejected, not
        buffered).
    drain_seconds:
        Graceful-shutdown deadline for in-flight jobs.
    """

    def __init__(self, session, host: str = "127.0.0.1", port: int = 0, *,
                 quota: ClientQuota | None = None, concurrency: int = 8,
                 progress: bool = True,
                 max_line_bytes: int = MAX_LINE_BYTES,
                 drain_seconds: float = 10.0):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.session = session
        self.host = host
        self.port = port
        self.quota = quota if quota is not None else ClientQuota()
        self.concurrency = concurrency
        self.progress = progress
        self.max_line_bytes = max_line_bytes
        self.drain_seconds = drain_seconds
        self._server: asyncio.AbstractServer | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._connections: set[_Connection] = set()
        self._stopped = asyncio.Event()
        self._draining = False
        self._handled = 0
        self._counters = {"connections_total": 0, "jobs_started": 0,
                          "jobs_rejected": 0, "protocol_errors": 0}

    def _count(self, event: str) -> None:
        self._counters[event] += 1
        record_server(event)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the effective ``(host, port)``."""
        self._pool = ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="repro-serve")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> int:
        """Block until a drain completes; returns requests handled."""
        await self._stopped.wait()
        return self._handled

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has begun (no new connections/requests)."""
        return self._draining

    def server_stats(self) -> dict:
        """The transport-level counters merged into ``{"op": "stats"}``."""
        return {
            **self._counters,
            "connections_open": len(self._connections),
            "requests": self._handled,
            "draining": self._draining,
            "quota": {"max_jobs": self.quota.max_jobs,
                      "max_time_limit": self.quota.max_time_limit},
        }

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight jobs, notify and close clients.

        Idempotent.  Stops accepting, interrupts every connection's read
        loop, waits up to ``drain_seconds`` for in-flight jobs (jobs past
        the deadline are answered with a ``ServerShutdown`` error
        document), writes the terminal shutdown line everywhere and
        closes the connections.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        current = asyncio.current_task()
        for conn in list(self._connections):
            if conn.task is not None and conn.task is not current:
                conn.task.cancel()

        jobs = [future for conn in self._connections
                for _, future, _ in conn.inflight.values()]
        drained = True
        if jobs:
            _, pending = await asyncio.wait(jobs, timeout=self.drain_seconds)
            if pending:
                drained = False
                for conn in list(self._connections):
                    for request_id, future, _ in conn.inflight.values():
                        if future in pending:
                            conn.enqueue(error_doc(
                                request_id, "ServerShutdown",
                                f"server draining: job still running after "
                                f"the {self.drain_seconds}s drain deadline"))

        for conn in list(self._connections):
            conn.enqueue(shutdown_doc(None, event="server_shutdown",
                                      drained=drained))
        await asyncio.gather(
            *(self._teardown(conn) for conn in list(self._connections)),
            return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        if self._pool is not None:
            # Deadline stragglers keep their worker thread until they hit
            # their own solver time limit; nothing new is accepted.
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._stopped.set()

    # ------------------------------------------------------------------
    # per-connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._draining:
            writer.close()
            return
        conn = _Connection(reader, writer, self.max_line_bytes)
        conn.task = asyncio.current_task()
        conn.writer_task = asyncio.ensure_future(self._writer_loop(conn))
        self._connections.add(conn)
        self._count("connections_total")
        set_connections_open(len(self._connections))
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            # The drain interrupted our pending read; shutdown() owns the
            # rest of this connection's life cycle.
            pass
        except ConnectionError:
            pass  # client vanished mid-read
        finally:
            if not self._draining:
                await self._teardown(conn)

    async def _read_loop(self, conn: _Connection) -> None:
        sequence = 0
        while not self._draining:
            try:
                line = await conn.lines.next_line()
            except _OversizedLine:
                sequence += 1
                self._count("protocol_errors")
                conn.enqueue(error_doc(
                    sequence, "ProtocolError",
                    f"request line exceeds the {self.max_line_bytes}-byte "
                    f"limit and was discarded"))
                continue
            if line is None:
                break
            sequence += 1
            if not line.strip():
                continue
            try:
                request = decode_request(line.strip(), sequence,
                                         max_line_bytes=None)
            except ProtocolError as exc:
                self._count("protocol_errors")
                conn.enqueue(error_doc(sequence, "ProtocolError", str(exc)))
                continue
            self._handled += 1
            if request.kind == "control":
                if request.op == "shutdown":
                    conn.enqueue(shutdown_doc(request.id))
                    await self.shutdown()
                    return
                conn.enqueue(handle_control(self.session, request,
                                            extra_stats=self.server_stats()))
                continue
            self._dispatch_job(conn, request)

    def _dispatch_job(self, conn: _Connection, request: Request) -> None:
        from ..api.jobs import JobSpecError  # lazy: breaks the api↔net cycle

        try:
            self.quota.admit(len(conn.inflight))
            job = self.quota.cap_time_limit(parse_job(request.data))
        except QuotaError as exc:
            self._count("jobs_rejected")
            conn.enqueue(error_doc(request.id, QUOTA_ERROR_TYPE, str(exc)))
            return
        except JobSpecError as exc:
            conn.enqueue(error_doc(request.id, "JobSpecError", str(exc)))
            return

        loop = asyncio.get_running_loop()

        def emit(doc: dict) -> None:  # called from the worker thread
            loop.call_soon_threadsafe(conn.enqueue, doc)

        self._count("jobs_started")
        token = object()
        future = loop.run_in_executor(
            self._pool, run_job, self.session, job, request.id, emit,
            self.progress)
        conn.inflight[token] = (request.id, future, time.monotonic())
        future.add_done_callback(
            lambda fut, _token=token: self._job_done(conn, _token, fut))

    def _job_done(self, conn: _Connection, token: object,
                  future: asyncio.Future) -> None:
        entry = conn.inflight.pop(token, None)
        if entry is not None:
            record_connection_job(time.monotonic() - entry[2])
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            # run_job converts job failures to error envelopes, so an
            # exception here is a genuine bug — surface it to the client
            # without taking the connection (or the daemon) down.
            request_id = None
            conn.enqueue(error_doc(request_id, type(exc).__name__, str(exc)))

    async def _writer_loop(self, conn: _Connection) -> None:
        while True:
            doc = await conn.queue.get()
            if doc is _CLOSE:
                return
            try:
                payload = json.dumps(doc, sort_keys=True) + "\n"
                conn.writer.write(payload.encode("utf-8"))
                await conn.writer.drain()  # backpressure: pace the producer
            except (ConnectionError, RuntimeError):
                conn.closed = True  # client gone: drop the rest silently
                return

    async def _teardown(self, conn: _Connection) -> None:
        self._connections.discard(conn)
        set_connections_open(len(self._connections))
        conn.close_queue()
        if conn.writer_task is not None:
            try:
                await conn.writer_task
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


async def _serve_tcp_async(session, host: str, port: int,
                           install_signal_handlers: bool,
                           **server_kwargs) -> int:
    server = ServeServer(session, host, port, **server_kwargs)
    bound_host, bound_port = await server.start()
    print(json.dumps({"type": "control", "op": "listening", "ok": True,
                      "host": bound_host, "port": bound_port}), flush=True)
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.shutdown()))
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-main thread or unsupported platform
    return await server.serve_until_shutdown()


def serve_tcp(session, host: str = "127.0.0.1", port: int = 0, *,
              quota: ClientQuota | None = None, concurrency: int = 8,
              progress: bool = True, max_line_bytes: int = MAX_LINE_BYTES,
              drain_seconds: float = 10.0,
              install_signal_handlers: bool = True) -> int:
    """Run the TCP daemon until a graceful shutdown; returns requests handled.

    The blocking entry point behind ``repro serve --tcp HOST:PORT``: it
    owns the event loop, announces the bound address as a one-line
    ``{"type": "control", "op": "listening", ...}`` document on stdout
    (port ``0`` binds a free port) and installs SIGINT/SIGTERM handlers
    that trigger the graceful drain.
    """
    return asyncio.run(_serve_tcp_async(
        session, host, port, install_signal_handlers, quota=quota,
        concurrency=concurrency, progress=progress,
        max_line_bytes=max_line_bytes, drain_seconds=drain_seconds))
