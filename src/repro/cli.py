"""Command-line interface: synthesize, sweep and compare from a terminal.

The CLI mirrors the benchmark harness so results can be regenerated without
writing any Python::

    python -m repro list                         # available circuits
    python -m repro backends                     # registered ILP backends
    python -m repro table1                       # the cost model (Table 1)
    python -m repro synthesize tseng --k 3       # one ADVBIST design
    python -m repro sweep paulin --jobs 4        # Table 2 block, 4 processes
    python -m repro sweep tseng --stats          # ... with solver statistics
    python -m repro compare fir6 --backend bnb   # Table 3 block, chosen solver
    python -m repro baseline ralloc iir3         # run a single heuristic baseline
    python -m repro synth mycircuit.json         # full pipeline on a user DFG file
    python -m repro fuzz --count 25 --seed 0     # random-DFG backend cross-check

Every command prints plain text; ``--time-limit`` caps each ILP solve.
The solver knobs shared by the ILP-backed commands:

* ``--backend`` — any name registered in :mod:`repro.ilp.backends`
  (``repro backends`` lists them) or ``auto``;
* ``--jobs`` — worker processes for the independent solves of a sweep or
  comparison (the grid is embarrassingly parallel);
* ``--no-cache`` — skip the on-disk design cache (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-advbist``) and re-solve everything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import run_advan, run_bits, run_ralloc
from .circuits import get_circuit, get_spec, list_circuits
from .core import AdvBistSynthesizer, SweepEngine
from .ilp.backends import available_backend_names, iter_backend_rows
from .reporting import (
    compare_methods,
    render_backends,
    render_fuzz_report,
    render_table1,
    render_table2,
    render_table3,
)

_BASELINES = {"advan": run_advan, "ralloc": run_ralloc, "bits": run_bits}

_SYNTH_METHODS = ("advbist", "all", "advan", "ralloc", "bits")


# ----------------------------------------------------------------------
# argparse value types: numeric flags fail with a clear message at parse
# time instead of a deep traceback from the executor or task grid.
# ----------------------------------------------------------------------
def _int_at_least(minimum: int, flag_meaning: str):
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be >= {minimum}, got {value}")
        return value
    return parse


_positive_int_jobs = _int_at_least(1, "--jobs")
_positive_int_k = _int_at_least(1, "--k")
_positive_int_max_k = _int_at_least(1, "--max-k")
_positive_int_count = _int_at_least(1, "--count")
_positive_int_ops = _int_at_least(1, "--ops")
_nonnegative_int_seed = _int_at_least(0, "--seed")


def _positive_float_time_limit(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--time-limit must be a number of seconds, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"--time-limit must be positive, got {value}")
    return value


def _resource_limits(text: str) -> dict[str, int]:
    """Parse ``--resources alu=1,mult=2`` into a class → count mapping."""
    limits: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        cls, sep, num = part.partition("=")
        if not sep or not cls.strip():
            raise argparse.ArgumentTypeError(
                f"--resources entries must look like CLASS=N, got {part!r}")
        try:
            count = int(num)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--resources count for {cls.strip()!r} must be an integer, got {num!r}")
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"--resources count for {cls.strip()!r} must be >= 1, got {count}")
        limits[cls.strip()] = count
    if not limits:
        raise argparse.ArgumentTypeError("--resources must name at least one CLASS=N")
    return limits


def _add_solver_arguments(parser: argparse.ArgumentParser, jobs: bool = False) -> None:
    """The solver knobs shared by the ILP-backed commands."""
    parser.add_argument("--time-limit", type=_positive_float_time_limit, default=120.0,
                        help="per-solve wall clock limit in seconds")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", *available_backend_names()],
                        help="ILP solver backend (see 'repro backends')")
    if jobs:
        parser.add_argument("--jobs", type=_positive_int_jobs, default=1,
                            help="worker processes for the independent solves")
        parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk design cache")


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based built-in self-testable data path synthesis "
                    "(reproduction of Kim/Ha/Takahashi, DAC 1999).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmark circuits")
    subparsers.add_parser("backends", help="list the registered ILP solver backends")
    subparsers.add_parser("table1", help="print the transistor cost model (Table 1)")

    synth = subparsers.add_parser("synthesize", help="synthesize one ADVBIST design")
    synth.add_argument("circuit", help="circuit name (see 'repro list')")
    synth.add_argument("--k", type=_positive_int_k, default=None,
                       help="number of test sessions (default: number of modules)")
    _add_solver_arguments(synth)

    sweep = subparsers.add_parser("sweep", help="Table 2 sweep (k = 1..N) for a circuit")
    sweep.add_argument("circuit")
    sweep.add_argument("--max-k", type=_positive_int_max_k, default=None,
                       help="cap the sweep at this many test sessions")
    sweep.add_argument("--stats", action="store_true",
                       help="append solver statistics (nnz, nodes, backend) per row")
    _add_solver_arguments(sweep, jobs=True)

    compare = subparsers.add_parser("compare",
                                    help="Table 3 comparison (ADVBIST vs baselines)")
    compare.add_argument("circuit")
    compare.add_argument("--k", type=_positive_int_k, default=None)
    _add_solver_arguments(compare, jobs=True)

    baseline = subparsers.add_parser("baseline", help="run one heuristic baseline")
    baseline.add_argument("method", choices=sorted(_BASELINES))
    baseline.add_argument("circuit")
    baseline.add_argument("--k", type=_positive_int_k, default=None)

    user_synth = subparsers.add_parser(
        "synth",
        help="run the full pipeline on a user DFG JSON file "
             "(schedule + bind if behavioural, then synthesize)")
    user_synth.add_argument("dfg", help="path to a DFG JSON file (repro.dfg.textio format)")
    user_synth.add_argument("--method", choices=_SYNTH_METHODS, default="advbist",
                            help="synthesis method, or 'all' for the Table 3 comparison")
    user_synth.add_argument("--k", type=_positive_int_k, default=None,
                            help="test sessions; with --method advbist omitting it "
                                 "sweeps k = 1..modules (Table 2)")
    user_synth.add_argument("--max-k", type=_positive_int_max_k, default=None,
                            help="cap the ADVBIST sweep at this many test sessions")
    user_synth.add_argument("--resources", type=_resource_limits, default=None,
                            metavar="CLASS=N[,CLASS=N...]",
                            help="functional-unit budget for scheduling a "
                                 "behavioural DFG, e.g. alu=1,mult=2")
    user_synth.add_argument("--stats", action="store_true",
                            help="append solver statistics to the sweep table")
    _add_solver_arguments(user_synth, jobs=True)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="sweep random circuits and cross-check the ILP backends "
             "(scipy vs branch-and-bound objective parity)")
    fuzz.add_argument("--count", type=_positive_int_count, default=10,
                      help="number of random circuits to generate")
    fuzz.add_argument("--seed", type=_nonnegative_int_seed, default=0,
                      help="base seed; circuit i uses seed + i")
    fuzz.add_argument("--ops", type=_positive_int_ops, default=6,
                      help="operations per generated circuit")
    fuzz.add_argument("--formulation", choices=["reference", "advbist"],
                      default="reference",
                      help="ILP to cross-check: the reference model (fast, "
                           "the default) or the full ADVBIST BIST model "
                           "(much slower for the pure-Python solver)")
    fuzz.add_argument("--k", type=_positive_int_k, default=None,
                      help="test sessions per circuit with --formulation "
                           "advbist (default: its module count)")
    fuzz.add_argument("--out", default="fuzz-failures",
                      help="directory for replayable failing-case JSON files")
    fuzz.add_argument("--time-limit", type=_positive_float_time_limit, default=120.0,
                      help="per-solve wall clock limit in seconds")

    return parser


def _cmd_list(_args) -> int:
    for name in list_circuits():
        spec = get_spec(name)
        print(f"{name:10s} {spec.description}")
    return 0


def _cmd_backends(_args) -> int:
    print(render_backends(iter_backend_rows()))
    return 0


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_synthesize(args) -> int:
    graph = get_circuit(args.circuit)
    k = args.k if args.k is not None else len(graph.module_ids)
    synthesizer = AdvBistSynthesizer(graph, backend=args.backend,
                                     time_limit=args.time_limit)
    reference = synthesizer.synthesize_reference()
    design = synthesizer.synthesize(k)
    reference_area = reference.area().total
    print(render_table3([reference.table3_row(), design.table3_row(reference_area)],
                        circuit=f"{args.circuit} (k={k})"))
    print(f"\nregister kinds: "
          f"{ {r: kind.name for r, kind in design.plan.register_kinds(design.datapath).items()} }")
    print(f"module sessions: {design.plan.module_session}")
    print(f"optimal: {design.optimal}   verified: {design.verify().ok}")
    if design.stats is not None:
        stats = design.stats
        print(f"solver: {stats.backend}   nnz: {stats.nnz}   "
              f"nodes: {stats.nodes}   wall: {stats.wall_seconds:.3f}s")
    return 0


def _cmd_sweep(args) -> int:
    graph = get_circuit(args.circuit)
    engine = SweepEngine(
        backend=args.backend,
        time_limit=args.time_limit,
        jobs=args.jobs,
        cache=not args.no_cache,
    )
    sweep = engine.sweep(graph, max_k=args.max_k)
    print(f"Reference area: {sweep.reference.area().total} transistors")
    print(render_table2(sweep.table2_rows(stats=args.stats), stats=args.stats))
    cached = sum(1 for report in sweep.reports if report.cached)
    if cached:
        print(f"\n({cached}/{len(sweep.reports)} solves served from the design cache)")
    return 0


def _cmd_compare(args) -> int:
    graph = get_circuit(args.circuit)
    result = compare_methods(graph, k=args.k, backend=args.backend,
                             time_limit=args.time_limit, jobs=args.jobs,
                             cache=not args.no_cache)
    print(render_table3(result.rows(), circuit=f"{args.circuit} ({result.k} sessions)"))
    print(f"\nlowest overhead: {result.winner()}")
    return 0


def _cmd_baseline(args) -> int:
    graph = get_circuit(args.circuit)
    design = _BASELINES[args.method](graph, args.k)
    print(render_table3([design.table3_row()], circuit=args.circuit))
    print(f"verified: {design.verify().ok}")
    return 0


def _cmd_synth(args) -> int:
    from .circuits.registry import load_front
    from .dfg.graph import DFGError

    try:
        front = load_front(args.dfg, resource_limits=args.resources)
    except FileNotFoundError:
        print(f"error: no such DFG file: {args.dfg}", file=sys.stderr)
        return 2
    except OSError as exc:
        # directory paths, permission problems, ... — diagnose, don't traceback
        print(f"error: cannot read DFG file {args.dfg}: {exc}", file=sys.stderr)
        return 2
    except (DFGError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    graph = front.graph
    summary = front.summary()
    print(f"front end: {summary['operations']} operations -> "
          f"{summary['control_steps']} control steps, "
          f"{summary['modules']} modules, "
          f"{summary['left_edge_registers']} left-edge registers")

    if args.method == "advbist" and args.k is None:
        engine = SweepEngine(backend=args.backend, time_limit=args.time_limit,
                             jobs=args.jobs, cache=not args.no_cache)
        sweep = engine.sweep(graph, max_k=args.max_k)
        print(f"Reference area: {sweep.reference.area().total} transistors")
        print(render_table2(sweep.table2_rows(stats=args.stats), stats=args.stats))
        cached = sum(1 for report in sweep.reports if report.cached)
        if cached:
            print(f"\n({cached}/{len(sweep.reports)} solves served from the design cache)")
        return 0

    methods = {"advbist": ("ADVBIST",), "all": ("ADVBIST", "ADVAN", "RALLOC", "BITS")}
    selected = methods.get(args.method, (args.method.upper(),))
    result = compare_methods(graph, k=args.k, methods=selected,
                             backend=args.backend, time_limit=args.time_limit,
                             jobs=args.jobs, cache=not args.no_cache)
    print(render_table3(result.rows(), circuit=f"{graph.name} ({result.k} sessions)"))
    for method, design in result.designs.items():
        print(f"{method}: optimal={design.optimal}   verified={design.verify().ok}")
    if len(result.designs) > 1:
        print(f"\nlowest overhead: {result.winner()}")
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzzing import run_fuzz

    report = run_fuzz(count=args.count, seed=args.seed,
                      formulation=args.formulation, k=args.k,
                      num_operations=args.ops, time_limit=args.time_limit,
                      failure_dir=args.out)
    print(render_fuzz_report(report.rows()))
    if report.failures:
        print(f"\n{len(report.failures)}/{len(report.cases)} circuits FAILED "
              f"backend parity; replayable cases written to:", file=sys.stderr)
        for case in report.failures:
            print(f"  {case.failure_path}", file=sys.stderr)
        return 1
    print(f"\nall {len(report.cases)} random circuits agree across backends")
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "backends": _cmd_backends,
    "table1": _cmd_table1,
    "synthesize": _cmd_synthesize,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "baseline": _cmd_baseline,
    "synth": _cmd_synth,
    "fuzz": _cmd_fuzz,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .core.engine import EngineError
    from .core.formulation import FormulationError
    from .dfg.graph import DFGError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (FormulationError, EngineError, DFGError) as exc:
        # e.g. an ADVBIST model that is infeasible for the requested k on a
        # user/random circuit: a clean diagnostic, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
