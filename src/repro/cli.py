"""Command-line interface: synthesize, sweep and compare from a terminal.

The CLI mirrors the benchmark harness so results can be regenerated without
writing any Python::

    python -m repro list                         # available circuits
    python -m repro backends                     # registered ILP backends
    python -m repro table1                       # the cost model (Table 1)
    python -m repro synthesize tseng --k 3       # one ADVBIST design
    python -m repro sweep paulin --jobs 4        # Table 2 block, 4 processes
    python -m repro sweep tseng --stats          # ... with solver statistics
    python -m repro compare fir6 --backend bnb   # Table 3 block, chosen solver
    python -m repro baseline ralloc iir3         # run a single heuristic baseline

Every command prints plain text; ``--time-limit`` caps each ILP solve.
The solver knobs shared by the ILP-backed commands:

* ``--backend`` — any name registered in :mod:`repro.ilp.backends`
  (``repro backends`` lists them) or ``auto``;
* ``--jobs`` — worker processes for the independent solves of a sweep or
  comparison (the grid is embarrassingly parallel);
* ``--no-cache`` — skip the on-disk design cache (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-advbist``) and re-solve everything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import run_advan, run_bits, run_ralloc
from .circuits import get_circuit, get_spec, list_circuits
from .core import AdvBistSynthesizer, SweepEngine
from .ilp.backends import available_backend_names, iter_backend_rows
from .reporting import (
    compare_methods,
    render_backends,
    render_table1,
    render_table2,
    render_table3,
)

_BASELINES = {"advan": run_advan, "ralloc": run_ralloc, "bits": run_bits}


def _add_solver_arguments(parser: argparse.ArgumentParser, jobs: bool = False) -> None:
    """The solver knobs shared by the ILP-backed commands."""
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-solve wall clock limit in seconds")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", *available_backend_names()],
                        help="ILP solver backend (see 'repro backends')")
    if jobs:
        parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the independent solves")
        parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk design cache")


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based built-in self-testable data path synthesis "
                    "(reproduction of Kim/Ha/Takahashi, DAC 1999).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmark circuits")
    subparsers.add_parser("backends", help="list the registered ILP solver backends")
    subparsers.add_parser("table1", help="print the transistor cost model (Table 1)")

    synth = subparsers.add_parser("synthesize", help="synthesize one ADVBIST design")
    synth.add_argument("circuit", help="circuit name (see 'repro list')")
    synth.add_argument("--k", type=int, default=None,
                       help="number of test sessions (default: number of modules)")
    _add_solver_arguments(synth)

    sweep = subparsers.add_parser("sweep", help="Table 2 sweep (k = 1..N) for a circuit")
    sweep.add_argument("circuit")
    sweep.add_argument("--max-k", type=int, default=None,
                       help="cap the sweep at this many test sessions")
    sweep.add_argument("--stats", action="store_true",
                       help="append solver statistics (nnz, nodes, backend) per row")
    _add_solver_arguments(sweep, jobs=True)

    compare = subparsers.add_parser("compare",
                                    help="Table 3 comparison (ADVBIST vs baselines)")
    compare.add_argument("circuit")
    compare.add_argument("--k", type=int, default=None)
    _add_solver_arguments(compare, jobs=True)

    baseline = subparsers.add_parser("baseline", help="run one heuristic baseline")
    baseline.add_argument("method", choices=sorted(_BASELINES))
    baseline.add_argument("circuit")
    baseline.add_argument("--k", type=int, default=None)

    return parser


def _cmd_list(_args) -> int:
    for name in list_circuits():
        spec = get_spec(name)
        print(f"{name:10s} {spec.description}")
    return 0


def _cmd_backends(_args) -> int:
    print(render_backends(iter_backend_rows()))
    return 0


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_synthesize(args) -> int:
    graph = get_circuit(args.circuit)
    k = args.k if args.k is not None else len(graph.module_ids)
    synthesizer = AdvBistSynthesizer(graph, backend=args.backend,
                                     time_limit=args.time_limit)
    reference = synthesizer.synthesize_reference()
    design = synthesizer.synthesize(k)
    reference_area = reference.area().total
    print(render_table3([reference.table3_row(), design.table3_row(reference_area)],
                        circuit=f"{args.circuit} (k={k})"))
    print(f"\nregister kinds: "
          f"{ {r: kind.name for r, kind in design.plan.register_kinds(design.datapath).items()} }")
    print(f"module sessions: {design.plan.module_session}")
    print(f"optimal: {design.optimal}   verified: {design.verify().ok}")
    if design.stats is not None:
        stats = design.stats
        print(f"solver: {stats.backend}   nnz: {stats.nnz}   "
              f"nodes: {stats.nodes}   wall: {stats.wall_seconds:.3f}s")
    return 0


def _cmd_sweep(args) -> int:
    graph = get_circuit(args.circuit)
    engine = SweepEngine(
        backend=args.backend,
        time_limit=args.time_limit,
        jobs=args.jobs,
        cache=not args.no_cache,
    )
    sweep = engine.sweep(graph, max_k=args.max_k)
    print(f"Reference area: {sweep.reference.area().total} transistors")
    print(render_table2(sweep.table2_rows(stats=args.stats), stats=args.stats))
    cached = sum(1 for report in sweep.reports if report.cached)
    if cached:
        print(f"\n({cached}/{len(sweep.reports)} solves served from the design cache)")
    return 0


def _cmd_compare(args) -> int:
    graph = get_circuit(args.circuit)
    result = compare_methods(graph, k=args.k, backend=args.backend,
                             time_limit=args.time_limit, jobs=args.jobs,
                             cache=not args.no_cache)
    print(render_table3(result.rows(), circuit=f"{args.circuit} ({result.k} sessions)"))
    print(f"\nlowest overhead: {result.winner()}")
    return 0


def _cmd_baseline(args) -> int:
    graph = get_circuit(args.circuit)
    design = _BASELINES[args.method](graph, args.k)
    print(render_table3([design.table3_row()], circuit=args.circuit))
    print(f"verified: {design.verify().ok}")
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "backends": _cmd_backends,
    "table1": _cmd_table1,
    "synthesize": _cmd_synthesize,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "baseline": _cmd_baseline,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
