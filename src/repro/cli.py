"""Command-line interface: synthesize, sweep and compare from a terminal.

The CLI mirrors the benchmark harness so results can be regenerated without
writing any Python::

    python -m repro list                         # available circuits
    python -m repro table1                       # the cost model (Table 1)
    python -m repro synthesize tseng --k 3       # one ADVBIST design
    python -m repro sweep paulin                 # Table 2 block for one circuit
    python -m repro compare fir6                 # Table 3 block for one circuit
    python -m repro baseline ralloc iir3         # run a single heuristic baseline

Every command prints plain text; ``--time-limit`` caps each ILP solve.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baselines import run_advan, run_bits, run_ralloc
from .circuits import get_circuit, get_spec, list_circuits
from .core import AdvBistSynthesizer
from .reporting import compare_methods, render_table1, render_table2, render_table3

_BASELINES = {"advan": run_advan, "ralloc": run_ralloc, "bits": run_bits}


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based built-in self-testable data path synthesis "
                    "(reproduction of Kim/Ha/Takahashi, DAC 1999).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmark circuits")
    subparsers.add_parser("table1", help="print the transistor cost model (Table 1)")

    synth = subparsers.add_parser("synthesize", help="synthesize one ADVBIST design")
    synth.add_argument("circuit", help="circuit name (see 'repro list')")
    synth.add_argument("--k", type=int, default=None,
                       help="number of test sessions (default: number of modules)")
    synth.add_argument("--time-limit", type=float, default=120.0,
                       help="per-solve wall clock limit in seconds")

    sweep = subparsers.add_parser("sweep", help="Table 2 sweep (k = 1..N) for a circuit")
    sweep.add_argument("circuit")
    sweep.add_argument("--time-limit", type=float, default=120.0)

    compare = subparsers.add_parser("compare",
                                    help="Table 3 comparison (ADVBIST vs baselines)")
    compare.add_argument("circuit")
    compare.add_argument("--k", type=int, default=None)
    compare.add_argument("--time-limit", type=float, default=120.0)

    baseline = subparsers.add_parser("baseline", help="run one heuristic baseline")
    baseline.add_argument("method", choices=sorted(_BASELINES))
    baseline.add_argument("circuit")
    baseline.add_argument("--k", type=int, default=None)

    return parser


def _cmd_list(_args) -> int:
    for name in list_circuits():
        spec = get_spec(name)
        print(f"{name:10s} {spec.description}")
    return 0


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_synthesize(args) -> int:
    graph = get_circuit(args.circuit)
    k = args.k if args.k is not None else len(graph.module_ids)
    synthesizer = AdvBistSynthesizer(graph, time_limit=args.time_limit)
    reference = synthesizer.synthesize_reference()
    design = synthesizer.synthesize(k)
    reference_area = reference.area().total
    print(render_table3([reference.table3_row(), design.table3_row(reference_area)],
                        circuit=f"{args.circuit} (k={k})"))
    print(f"\nregister kinds: "
          f"{ {r: kind.name for r, kind in design.plan.register_kinds(design.datapath).items()} }")
    print(f"module sessions: {design.plan.module_session}")
    print(f"optimal: {design.optimal}   verified: {design.verify().ok}")
    return 0


def _cmd_sweep(args) -> int:
    graph = get_circuit(args.circuit)
    sweep = AdvBistSynthesizer(graph, time_limit=args.time_limit).sweep()
    print(f"Reference area: {sweep.reference.area().total} transistors")
    print(render_table2(sweep.table2_rows()))
    return 0


def _cmd_compare(args) -> int:
    graph = get_circuit(args.circuit)
    result = compare_methods(graph, k=args.k, time_limit=args.time_limit)
    print(render_table3(result.rows(), circuit=f"{args.circuit} ({result.k} sessions)"))
    print(f"\nlowest overhead: {result.winner()}")
    return 0


def _cmd_baseline(args) -> int:
    graph = get_circuit(args.circuit)
    design = _BASELINES[args.method](graph, args.k)
    print(render_table3([design.table3_row()], circuit=args.circuit))
    print(f"verified: {design.verify().ok}")
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "table1": _cmd_table1,
    "synthesize": _cmd_synthesize,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "baseline": _cmd_baseline,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
