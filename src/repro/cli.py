"""Command-line interface: a thin client of the :mod:`repro.api` façade.

The CLI mirrors the benchmark harness so results can be regenerated without
writing any Python::

    python -m repro list                         # available circuits
    python -m repro backends                     # registered ILP backends
    python -m repro table1                       # the cost model (Table 1)
    python -m repro synthesize tseng --k 3       # one ADVBIST design
    python -m repro sweep paulin --jobs 4        # Table 2 block, 4 processes
    python -m repro sweep tseng --stats          # ... with solver statistics
    python -m repro compare fir6 --backend bnb   # Table 3 block, chosen solver
    python -m repro compare fir6 --json          # ... as a ResultEnvelope
    python -m repro baseline ralloc iir3         # run a single heuristic baseline
    python -m repro synth mycircuit.json         # full pipeline on a user DFG file
    python -m repro fuzz --count 25 --seed 0     # random-DFG backend cross-check
    python -m repro bench run --suite table2     # timed, parity-guarded grid
    python -m repro bench compare NEW.json OLD.json   # regression gate
    python -m repro cache info                   # design-cache statistics
    python -m repro obs dump                     # one-shot metrics snapshot
    python -m repro bench history --drift B.json # distribution walk-off gate
    python -m repro serve                        # JSON-lines batch daemon

Every command builds a declarative job spec, hands it to a
:class:`repro.api.Session` (which owns the backend, the design cache and
the worker pool), and renders the returned
:class:`repro.api.ResultEnvelope` — ``--json`` on ``synthesize`` /
``sweep`` / ``compare`` prints the envelope itself instead of tables.
The solver knobs shared by the ILP-backed commands:

* ``--backend`` — any name registered in :mod:`repro.ilp.backends`
  (``repro backends`` lists them) or ``auto``;
* ``--jobs`` — worker processes for the independent solves of a sweep or
  comparison (the grid is embarrassingly parallel);
* ``--presolve/--no-presolve`` — run the :mod:`repro.accel.presolve`
  reductions on every ILP before solving (exact, off by default);
* ``--cuts/--no-cuts`` — run the :mod:`repro.ilp.cuts` root cutting-plane
  loop (implication/clique/cover cuts) on every ILP before solving
  (exact, off by default);
* ``--warm-start/--no-warm-start`` — with a warm-start-capable backend,
  chain each circuit's ADVBIST solves in ascending ``k`` so every solve
  seeds the next incumbent (on by default; a chain is one serial unit, so
  a single-circuit sweep with ``--jobs > 1`` wants ``--no-warm-start``);
* ``--batch/--no-batch`` — pack the independent hint-free ILP solves of a
  request into one block-diagonal compound model solved in a single
  backend call (:mod:`repro.sched.batching`; exact, off by default);
  batched solves run in-process and outside warm-start chains, so
  ``--batch`` pairs naturally with ``--no-warm-start`` and makes
  ``--jobs`` moot for the batched portion;
* ``--no-cache`` — skip the on-disk design cache and re-solve everything;
* ``--cache-dir`` — design-cache root (default ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-advbist``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from ._flags import (
    host_port,
    int_at_least,
    nonnegative_float,
    positive_float,
    resource_limits,
    speedup_threshold,
)
from .api import (
    BASELINE_METHODS,
    BaselineJob,
    BenchJob,
    CompareJob,
    FuzzJob,
    ResultEnvelope,
    Session,
    SweepJob,
    SynthesizeJob,
    serve,
)
from .bench.compare import DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD
from .circuits import get_spec, list_circuits
from .ilp.backends import available_backend_names, iter_backend_rows
from .reporting import (
    render_backends,
    render_fuzz_report,
    render_table1,
    render_table2,
    render_table3,
)

_SYNTH_METHODS = ("advbist", "all", "advan", "ralloc", "bits")


# ----------------------------------------------------------------------
# argparse value types (one shared definition per flag — see repro._flags):
# numeric flags fail with a clear message at parse time instead of a deep
# traceback from the executor or task grid.  ``repro fuzz`` and
# ``repro bench`` use the very same --seed / --jobs parsers.
# ----------------------------------------------------------------------
_positive_int_jobs = int_at_least(1, "--jobs")
_positive_int_k = int_at_least(1, "--k")
_positive_int_max_k = int_at_least(1, "--max-k")
_positive_int_count = int_at_least(1, "--count")
_positive_int_ops = int_at_least(1, "--ops")
_nonnegative_int_seed = int_at_least(0, "--seed")
_positive_float_time_limit = positive_float("--time-limit", "a number of seconds")
_nonnegative_float_min_seconds = nonnegative_float("--min-seconds")
_resource_limits = resource_limits


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk design cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="design-cache root (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-advbist)")


def _add_solver_arguments(parser: argparse.ArgumentParser,
                          jobs: bool = False) -> None:
    """The solver knobs shared by the ILP-backed commands."""
    parser.add_argument("--time-limit", type=_positive_float_time_limit, default=120.0,
                        help="per-solve wall clock limit in seconds")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", *available_backend_names()],
                        help="ILP solver backend (see 'repro backends')")
    parser.add_argument("--presolve", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run the repro.accel presolve reductions on every "
                             "ILP before solving (exact: identical designs, "
                             "smaller models)")
    parser.add_argument("--cuts", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run the repro.ilp.cuts root cutting-plane loop "
                             "(implication, clique and cover cuts) on every "
                             "ILP before solving (exact: identical designs, "
                             "tighter root LP bounds)")
    parser.add_argument("--warm-start", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="chain each circuit's ADVBIST solves in ascending "
                             "k so every solve seeds the next incumbent "
                             "(warm-start-capable backends only). A chain runs "
                             "serially: to keep a single-circuit sweep "
                             "parallel under --jobs, pass --no-warm-start")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="pack independent hint-free ILP solves into one "
                             "block-diagonal compound model solved in a single "
                             "backend call (exact: identical designs). Only "
                             "solves outside warm-start chains batch, so pass "
                             "--no-warm-start to batch a whole sweep; batched "
                             "solves run in-process, bypassing --jobs workers")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="append one JSON line per finished solver task "
                             "(after an environment-fingerprint header) to "
                             "this file — the repro.obs per-solve trace sink")
    if jobs:
        parser.add_argument("--jobs", type=_positive_int_jobs, default=1,
                            help="worker processes for the independent solves")
    _add_cache_arguments(parser)


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable ResultEnvelope "
                             "as JSON instead of rendered tables")


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based built-in self-testable data path synthesis "
                    "(reproduction of Kim/Ha/Takahashi, DAC 1999).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmark circuits")
    subparsers.add_parser("backends", help="list the registered ILP solver backends")
    subparsers.add_parser("table1", help="print the transistor cost model (Table 1)")

    synth = subparsers.add_parser("synthesize", help="synthesize one ADVBIST design")
    synth.add_argument("circuit", help="circuit name (see 'repro list')")
    synth.add_argument("--k", type=_positive_int_k, default=None,
                       help="number of test sessions (default: number of modules)")
    _add_solver_arguments(synth)
    _add_json_argument(synth)

    sweep = subparsers.add_parser("sweep", help="Table 2 sweep (k = 1..N) for a circuit")
    sweep.add_argument("circuit")
    sweep.add_argument("--max-k", type=_positive_int_max_k, default=None,
                       help="cap the sweep at this many test sessions")
    sweep.add_argument("--stats", action="store_true",
                       help="append solver statistics (nnz, nodes, backend) per row")
    _add_solver_arguments(sweep, jobs=True)
    _add_json_argument(sweep)

    compare = subparsers.add_parser("compare",
                                    help="Table 3 comparison (ADVBIST vs baselines)")
    compare.add_argument("circuit")
    compare.add_argument("--k", type=_positive_int_k, default=None)
    _add_solver_arguments(compare, jobs=True)
    _add_json_argument(compare)

    baseline = subparsers.add_parser("baseline", help="run one heuristic baseline")
    baseline.add_argument("method", choices=[m.lower() for m in BASELINE_METHODS])
    baseline.add_argument("circuit")
    baseline.add_argument("--k", type=_positive_int_k, default=None)

    user_synth = subparsers.add_parser(
        "synth",
        help="run the full pipeline on a user DFG JSON file "
             "(schedule + bind if behavioural, then synthesize)")
    user_synth.add_argument("dfg", help="path to a DFG JSON file (repro.dfg.textio format)")
    user_synth.add_argument("--method", choices=_SYNTH_METHODS, default="advbist",
                            help="synthesis method, or 'all' for the Table 3 comparison")
    user_synth.add_argument("--k", type=_positive_int_k, default=None,
                            help="test sessions; with --method advbist omitting it "
                                 "sweeps k = 1..modules (Table 2)")
    user_synth.add_argument("--max-k", type=_positive_int_max_k, default=None,
                            help="cap the ADVBIST sweep at this many test sessions")
    user_synth.add_argument("--resources", type=_resource_limits, default=None,
                            metavar="CLASS=N[,CLASS=N...]",
                            help="functional-unit budget for scheduling a "
                                 "behavioural DFG, e.g. alu=1,mult=2")
    user_synth.add_argument("--stats", action="store_true",
                            help="append solver statistics to the sweep table")
    _add_solver_arguments(user_synth, jobs=True)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="sweep random circuits and cross-check the ILP backends "
             "(scipy vs branch-and-bound objective parity)")
    fuzz.add_argument("--count", type=_positive_int_count, default=10,
                      help="number of random circuits to generate")
    fuzz.add_argument("--seed", type=_nonnegative_int_seed, default=0,
                      help="base seed; circuit i uses seed + i")
    fuzz.add_argument("--ops", type=_positive_int_ops, default=6,
                      help="operations per generated circuit")
    fuzz.add_argument("--formulation", choices=["reference", "advbist"],
                      default="reference",
                      help="ILP to cross-check: the reference model (fast, "
                           "the default) or the full ADVBIST BIST model "
                           "(much slower for the pure-Python solver)")
    fuzz.add_argument("--k", type=_positive_int_k, default=None,
                      help="test sessions per circuit with --formulation "
                           "advbist (default: its module count)")
    fuzz.add_argument("--out", default="fuzz-failures",
                      help="directory for replayable failing-case JSON files")
    fuzz.add_argument("--time-limit", type=_positive_float_time_limit, default=120.0,
                      help="per-solve wall clock limit in seconds")

    bench = subparsers.add_parser(
        "bench",
        help="timed, parity-guarded benchmark suites with a JSON perf "
             "trajectory (run / compare / history / suites)")
    bench_actions = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_actions.add_parser(
        "run",
        help="execute one or more suites, write a schema'd BENCH_*.json, "
             "optionally gate against prior reports")
    bench_run.add_argument("--suite", action="append", required=True,
                           dest="suites", metavar="NAME",
                           help="suite to run (repeatable; "
                                "see 'repro bench suites')")
    bench_run.add_argument("--circuits", nargs="+", default=None,
                           metavar="CIRCUIT",
                           help="narrow every suite to these circuits")
    bench_run.add_argument("--max-k", type=_positive_int_max_k, default=None,
                           help="cap each Table 2 sweep at this many "
                                "test sessions")
    bench_run.add_argument("--seed", type=_nonnegative_int_seed, default=None,
                           help="re-seed the fuzz-throughput units")
    bench_run.add_argument("--jobs", type=_positive_int_jobs, default=None,
                           help="force this worker-process count on every "
                                "scenario (default: the scenario's own)")
    bench_run.add_argument("--scenarios", nargs="+", default=None,
                           metavar="NAME",
                           help="run only these scenarios of each suite")
    bench_run.add_argument("--time-limit", type=_positive_float_time_limit,
                           default=120.0,
                           help="per-solve wall clock limit in seconds")
    bench_run.add_argument("--no-warmup", action="store_true",
                           help="skip the throwaway warm-up solve (leave "
                                "warm-up on for real measurements)")
    bench_run.add_argument("--out", default=None, metavar="PATH",
                           help="output JSON path (default: "
                                "BENCH_<suite>.json in the working dir)")
    bench_run.add_argument("--compare", nargs="+", default=None,
                           metavar="PRIOR.json",
                           help="prior BENCH_*.json reports to gate against "
                                "(legacy schema-1 files are migrated)")
    bench_run.add_argument("--threshold", type=speedup_threshold,
                           default=DEFAULT_THRESHOLD, metavar="RATIO",
                           help="slowdown ratio that counts as a regression, "
                                f"e.g. 1.5x (default: {DEFAULT_THRESHOLD}x)")
    bench_run.add_argument("--min-seconds", type=_nonnegative_float_min_seconds,
                           default=DEFAULT_MIN_SECONDS, metavar="S",
                           help="noise floor: prior timings below this are "
                                f"never gated on (default: {DEFAULT_MIN_SECONDS})")
    bench_run.add_argument("--verbose", action="store_true",
                           help="print every compared timing, not only "
                                "the regressions")
    bench_run.add_argument("--json", action="store_true",
                           help="print the report JSON to stdout as well")

    bench_compare = bench_actions.add_parser(
        "compare",
        help="diff an existing report against one or more priors "
             "(exit 1 on regression)")
    bench_compare.add_argument("current", help="the fresh BENCH_*.json report")
    bench_compare.add_argument("priors", nargs="+",
                               help="prior reports to gate against")
    bench_compare.add_argument("--threshold", type=speedup_threshold,
                               default=DEFAULT_THRESHOLD, metavar="RATIO",
                               help="slowdown ratio that counts as a "
                                    f"regression (default: {DEFAULT_THRESHOLD}x)")
    bench_compare.add_argument("--min-seconds",
                               type=_nonnegative_float_min_seconds,
                               default=DEFAULT_MIN_SECONDS, metavar="S",
                               help="noise floor for gating "
                                    f"(default: {DEFAULT_MIN_SECONDS})")
    bench_compare.add_argument("--verbose", action="store_true",
                               help="print every compared timing")

    bench_history = bench_actions.add_parser(
        "history",
        help="summarise a series of BENCH_*.json reports as a trajectory "
             "table, or (--drift) flag distributions walking off a baseline")
    bench_history.add_argument("reports", nargs="+",
                               help="report files, oldest first")
    bench_history.add_argument("--drift", action="store_true",
                               help="instead of the trajectory table, judge "
                                    "the most recent observations per timing "
                                    "key against the baseline and exit 1 on "
                                    "a consistent walk-off (repro.obs.drift)")
    bench_history.add_argument("--baseline", default=None, metavar="PATH",
                               help="baseline BENCH_*.json for --drift "
                                    "(default: the first/oldest report)")
    bench_history.add_argument("--window", type=int_at_least(1, "--window"),
                               default=None, metavar="N",
                               help="most-recent observations judged per key "
                                    "(default: 3)")
    bench_history.add_argument("--drift-ratio", type=speedup_threshold,
                               default=None, metavar="RATIO",
                               help="consistent slowdown ratio that counts as "
                                    "drift, e.g. 1.25x (default: 1.25x)")
    bench_history.add_argument("--min-seconds",
                               type=_nonnegative_float_min_seconds,
                               default=DEFAULT_MIN_SECONDS, metavar="S",
                               help="noise floor: baseline timings below this "
                                    "are never judged "
                                    f"(default: {DEFAULT_MIN_SECONDS})")
    bench_history.add_argument("--metrics", action="append", default=None,
                               metavar="SNAP.json", dest="metrics_snapshots",
                               help="live metrics-registry snapshot JSON "
                                    "(repro obs dump --json) appended to the "
                                    "observation series as histogram means "
                                    "(repeatable; --drift only)")
    bench_history.add_argument("--drift-out", default=None, metavar="PATH",
                               help="also write the drift verdicts as JSON "
                                    "(--drift only)")
    bench_history.add_argument("--verbose", action="store_true",
                               help="with --drift, print every judged key, "
                                    "not only drifting/improved/new ones")

    bench_actions.add_parser("suites", help="list the built-in suites")

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk design cache")
    cache.add_argument("action", choices=["info", "clear"],
                       help="'info' prints location/entries/size, "
                            "'clear' deletes every cached design")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="design-cache root (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-advbist)")

    obs = subparsers.add_parser(
        "obs",
        help="live-observability snapshots: run a small workload in an "
             "isolated metrics registry and print the exposition")
    obs_actions = obs.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_actions.add_parser(
        "dump",
        help="run one sweep in a private registry and print its "
             "Prometheus-style metrics text (or --json for the structured "
             "snapshot plus the per-solve trace)")
    obs_dump.add_argument("--circuit", default="fig1",
                          help="circuit to sweep (default: fig1)")
    obs_dump.add_argument("--max-k", type=_positive_int_max_k, default=2,
                          help="cap the sweep at this many test sessions "
                               "(default: 2)")
    _add_solver_arguments(obs_dump, jobs=True)
    obs_dump.add_argument("--json", action="store_true",
                          help="emit {metrics, trace, environment} JSON "
                               "instead of the exposition text")

    daemon = subparsers.add_parser(
        "serve",
        help="JSON-lines batch daemon: read job specs from stdin, stream "
             "progress events and result envelopes to stdout (one warm "
             "session, so the design cache and worker pool persist "
             "across requests)")
    daemon.add_argument("--quiet", action="store_true",
                        help="suppress progress lines (emit only results)")
    daemon.add_argument("--concurrency", type=int_at_least(1, "concurrency"),
                        default=1, metavar="N",
                        help="job-executing threads; with N > 1 identical "
                             "in-flight requests coalesce onto one solve via "
                             "the session's shared scheduler (response order "
                             "across requests is then unspecified; correlate "
                             "by id)")
    daemon.add_argument("--tcp", type=host_port, default=None,
                        metavar="HOST:PORT",
                        help="listen on a TCP socket instead of stdin/stdout "
                             "(same wire protocol; port 0 picks an ephemeral "
                             "port, announced on a 'listening' control line)")
    daemon.add_argument("--max-client-jobs",
                        type=int_at_least(1, "--max-client-jobs"), default=8,
                        metavar="N",
                        help="TCP quota: jobs one connection may have in "
                             "flight before submissions are answered with a "
                             "QuotaExceeded error (default: 8)")
    daemon.add_argument("--max-time-limit",
                        type=positive_float("--max-time-limit",
                                            "a number of seconds"),
                        default=None, metavar="S",
                        help="TCP quota: cap each job's solver time_limit; "
                             "specs without one are pinned to the cap, specs "
                             "over it are rejected (default: uncapped)")
    daemon.add_argument("--drain-seconds",
                        type=nonnegative_float("--drain-seconds"),
                        default=10.0, metavar="S",
                        help="TCP graceful-shutdown budget: how long to wait "
                             "for in-flight jobs before closing connections "
                             "(default: 10)")
    daemon.add_argument("--max-line-bytes",
                        type=int_at_least(1024, "--max-line-bytes"),
                        default=None, metavar="BYTES",
                        help="TCP request-line size cap; oversized lines are "
                             "rejected with a ProtocolError and the "
                             "connection survives (default: 1 MiB)")
    _add_solver_arguments(daemon, jobs=True)

    return parser


# ----------------------------------------------------------------------
# session plumbing + envelope rendering
# ----------------------------------------------------------------------
def _session_from_args(args) -> Session:
    """One warm Session configured from the shared solver flags."""
    return Session(
        backend=getattr(args, "backend", "auto"),
        time_limit=getattr(args, "time_limit", 120.0),
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        presolve=getattr(args, "presolve", False),
        cuts=getattr(args, "cuts", False),
        warm_start=getattr(args, "warm_start", True),
        batch=getattr(args, "batch", False),
        trace_file=getattr(args, "trace_file", None),
    )


def _exit_code(envelope: ResultEnvelope) -> int:
    """Map an envelope to a process exit code (2 = bad input, 1 = solver)."""
    if envelope.ok:
        return 0
    kind = (envelope.error or {}).get("type", "")
    return 2 if kind == "JobSpecError" else 1


def _finish(envelope: ResultEnvelope, args, render) -> int:
    """Common tail of every envelope-producing command: --json or tables.

    ``render`` may return a non-zero exit code of its own (e.g. the fuzz
    report on parity failures); ``None`` means success.
    """
    if getattr(args, "json", False):
        print(envelope.to_json(indent=2))
        return _exit_code(envelope)
    if not envelope.ok:
        print(f"error: {envelope.error['message']}", file=sys.stderr)
        return _exit_code(envelope)
    return render(envelope, args) or 0


def _print_cache_note(envelope: ResultEnvelope) -> None:
    cached = sum(1 for report in envelope.reports if report.get("cached"))
    if cached:
        print(f"\n({cached}/{len(envelope.reports)} solves served "
              f"from the design cache)")


def _render_sweep(envelope: ResultEnvelope, args) -> None:
    payload = envelope.payload
    print(f"Reference area: {payload['reference_area']} transistors")
    print(render_table2(payload["rows"], stats=getattr(args, "stats", False)))
    _print_cache_note(envelope)


def _render_compare(envelope: ResultEnvelope, args) -> None:
    payload = envelope.payload
    print(render_table3(payload["table3"],
                        circuit=f"{payload['circuit']} ({payload['k']} sessions)"))
    print(f"\nlowest overhead: {payload['winner']}")


def _render_synthesize(envelope: ResultEnvelope, args) -> None:
    payload = envelope.payload
    print(render_table3(payload["table3"],
                        circuit=f"{payload['circuit']} (k={payload['k']})"))
    kinds = {int(reg): kind for reg, kind in payload["register_kinds"].items()}
    sessions = {int(m): s for m, s in payload["module_session"].items()}
    print(f"\nregister kinds: {kinds}")
    print(f"module sessions: {sessions}")
    print(f"optimal: {payload['optimal']}   verified: {payload['verified']}")
    if payload.get("stats"):
        stats = payload["stats"]
        print(f"solver: {stats['backend']}   nnz: {stats['nnz']}   "
              f"nodes: {stats['nodes']}   wall: {stats['wall_s']:.3f}s")
    _print_cache_note(envelope)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _cmd_list(_args) -> int:
    for name in list_circuits():
        spec = get_spec(name)
        print(f"{name:10s} {spec.description}")
    return 0


def _cmd_backends(_args) -> int:
    print(render_backends(iter_backend_rows()))
    return 0


def _cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def _cmd_synthesize(args) -> int:
    with _session_from_args(args) as session:
        envelope = session.run(SynthesizeJob(circuit=args.circuit, k=args.k))
    return _finish(envelope, args, _render_synthesize)


def _cmd_sweep(args) -> int:
    with _session_from_args(args) as session:
        envelope = session.run(SweepJob(circuit=args.circuit, max_k=args.max_k))
    return _finish(envelope, args, _render_sweep)


def _cmd_compare(args) -> int:
    with _session_from_args(args) as session:
        envelope = session.run(CompareJob(circuit=args.circuit, k=args.k))
    return _finish(envelope, args, _render_compare)


def _render_baseline(envelope: ResultEnvelope, args) -> None:
    payload = envelope.payload
    print(render_table3(payload["table3"], circuit=payload["circuit"]))
    print(f"verified: {payload['verified']}")


def _cmd_baseline(args) -> int:
    with Session() as session:
        envelope = session.run(BaselineJob(circuit=args.circuit,
                                           method=args.method, k=args.k))
    return _finish(envelope, args, _render_baseline)


def _cmd_synth(args) -> int:
    from .circuits.registry import load_front
    from .dfg.graph import DFGError

    try:
        front = load_front(args.dfg, resource_limits=args.resources)
    except FileNotFoundError:
        print(f"error: no such DFG file: {args.dfg}", file=sys.stderr)
        return 2
    except OSError as exc:
        # directory paths, permission problems, ... — diagnose, don't traceback
        print(f"error: cannot read DFG file {args.dfg}: {exc}", file=sys.stderr)
        return 2
    except (DFGError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    name = front.graph.name
    summary = front.summary()
    print(f"front end: {summary['operations']} operations -> "
          f"{summary['control_steps']} control steps, "
          f"{summary['modules']} modules, "
          f"{summary['left_edge_registers']} left-edge registers")

    with _session_from_args(args) as session:
        if args.method == "advbist" and args.k is None:
            envelope = session.run(SweepJob(circuit=name, max_k=args.max_k))
            return _finish(envelope, args, _render_sweep)

        methods = {"advbist": ("ADVBIST",),
                   "all": ("ADVBIST", "ADVAN", "RALLOC", "BITS")}
        selected = methods.get(args.method, (args.method.upper(),))
        envelope = session.run(CompareJob(circuit=name, k=args.k,
                                          methods=selected))
    return _finish(envelope, args, _render_synth_compare)


def _render_synth_compare(envelope: ResultEnvelope, args) -> None:
    payload = envelope.payload
    print(render_table3(payload["table3"],
                        circuit=f"{payload['circuit']} ({payload['k']} sessions)"))
    for method in payload["overheads"]:
        print(f"{method}: optimal={payload['optimal'][method]}   "
              f"verified={payload['verified'][method]}")
    if len(payload["overheads"]) > 1:
        print(f"\nlowest overhead: {payload['winner']}")


def _render_fuzz(envelope: ResultEnvelope, args) -> int | None:
    payload = envelope.payload
    print(render_fuzz_report(payload["rows"]))
    if not payload["ok"]:
        print(f"\n{payload['num_failures']}/{payload['cases']} circuits FAILED "
              f"backend parity; replayable cases written to:", file=sys.stderr)
        for path in payload["failures"]:
            print(f"  {path}", file=sys.stderr)
        return 1
    print(f"\nall {payload['cases']} random circuits agree across backends")
    return None


def _cmd_fuzz(args) -> int:
    with Session(time_limit=args.time_limit, cache=False) as session:
        envelope = session.run(FuzzJob(count=args.count, seed=args.seed,
                                       ops=args.ops,
                                       formulation=args.formulation, k=args.k,
                                       failure_dir=args.out))
    return _finish(envelope, args, _render_fuzz)


# ----------------------------------------------------------------------
# repro bench: run / compare / history / suites
# ----------------------------------------------------------------------
def _bench_progress(event: dict) -> None:
    if event["event"] == "scenario_started":
        print(f"[{event['suite']}] scenario {event['scenario']} ...",
              file=sys.stderr)
    elif event["event"] == "unit_finished":
        print(f"[{event['suite']}/{event['scenario']}] "
              f"{event['unit']}: {event['seconds']:.3f}s", file=sys.stderr)


def _print_bench_summary(report: dict) -> None:
    from .reporting import format_table

    for name, suite in report["suites"].items():
        rows = [{
            "scenario": scenario["scenario"],
            "backend": scenario["backend"],
            "presolve": scenario["presolve"],
            "warm_start": scenario["warm_start"],
            "wall_s": scenario["wall_seconds"],
            "cached": f"{scenario['cached_solves']}/{scenario['total_solves']}",
            "speedup": (f"{suite['speedups'][scenario['scenario']]:g}x"
                        if suite["speedups"].get(scenario["scenario"]) else "-"),
        } for scenario in suite["scenarios"].values()]
        print(format_table(
            rows, ["scenario", "backend", "presolve", "warm_start", "wall_s",
                   "cached", "speedup"],
            title=f"Suite {name} — parity "
                  f"{'ok' if suite['parity_ok'] else 'FAILED'}"))
        print()


def _cmd_bench_run(args) -> int:
    from pathlib import Path

    from .bench import BenchError, compare_reports, load_report
    from .bench import render_comparison, run_suites
    from .bench.schema import BenchSchemaError

    try:
        report = run_suites(
            args.suites, circuits=args.circuits, max_k=args.max_k,
            seed=args.seed, jobs=args.jobs, scenarios=args.scenarios,
            time_limit=args.time_limit, warmup=not args.no_warmup,
            progress=_bench_progress)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = Path(args.out if args.out is not None
               else f"BENCH_{'-'.join(args.suites)}.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    _print_bench_summary(report)

    exit_code = 0
    if not report["parity_ok"]:
        print("PARITY FAILURE: an acceleration layer changed a proven "
              "objective", file=sys.stderr)
        exit_code = 1
    if args.compare:
        try:
            priors = [(path, load_report(path)) for path in args.compare]
        except BenchSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        comparison = compare_reports(report, priors,
                                     threshold=args.threshold,
                                     min_seconds=args.min_seconds)
        print(render_comparison(comparison, verbose=args.verbose))
        if not comparison.ok:
            exit_code = 1
    return exit_code


def _cmd_bench_compare(args) -> int:
    from .bench import compare_reports, load_report, render_comparison
    from .bench.schema import BenchSchemaError

    try:
        current = load_report(args.current)
        priors = [(path, load_report(path)) for path in args.priors]
    except BenchSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_reports(current, priors, threshold=args.threshold,
                                 min_seconds=args.min_seconds)
    print(render_comparison(comparison, verbose=args.verbose))
    return 0 if comparison.ok else 1


def _cmd_bench_history(args) -> int:
    from .bench import load_report, render_history
    from .bench.schema import BenchSchemaError

    try:
        reports = [(path, load_report(path)) for path in args.reports]
    except BenchSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.drift:
        return _bench_drift(args, reports)
    print(render_history(reports))
    return 0


def _bench_drift(args, reports) -> int:
    """The ``repro bench history --drift`` walk-off gate (exit 1 on drift)."""
    from pathlib import Path

    from .bench import load_report
    from .bench.compare import flatten_timings
    from .bench.schema import BenchSchemaError
    from .obs.drift import (DEFAULT_DRIFT_RATIO, DEFAULT_WINDOW, detect_drift,
                            render_drift, series_from_metrics,
                            series_from_reports)

    if args.baseline is not None:
        try:
            baseline_flat = flatten_timings(load_report(args.baseline))
        except BenchSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        baseline_source = args.baseline
        series = series_from_reports(reports)
    else:
        # No explicit baseline: the oldest report anchors the series.  A
        # single report then judges against itself (all ratios 1.0) — a
        # deliberate no-op that makes the committed baseline self-verify.
        baseline_source, baseline_report = reports[0]
        baseline_flat = flatten_timings(baseline_report)
        series = series_from_reports(reports[1:] if len(reports) > 1
                                     else reports)
    if args.metrics_snapshots:
        snapshots = []
        for path in args.metrics_snapshots:
            try:
                snapshots.append(
                    (path, json.loads(Path(path).read_text(encoding="utf-8"))))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: {path}: cannot read metrics snapshot: {exc}",
                      file=sys.stderr)
                return 2
        live = series_from_metrics(snapshots)
        # Live histogram means have no bench baseline; the first snapshot
        # anchors its own series so later snapshots can drift against it.
        if live:
            first_source, first_flat = live[0]
            for key, value in first_flat.items():
                baseline_flat.setdefault(key, value)
            series = list(series) + live[1:] if len(live) > 1 \
                else list(series) + live
    report = detect_drift(
        baseline_flat, series,
        drift_ratio=(args.drift_ratio if args.drift_ratio is not None
                     else DEFAULT_DRIFT_RATIO),
        window=args.window if args.window is not None else DEFAULT_WINDOW,
        min_seconds=args.min_seconds, baseline_source=baseline_source)
    print(render_drift(report, verbose=args.verbose))
    if args.drift_out:
        Path(args.drift_out).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.drift_out}")
    return 0 if report.ok else 1


def _cmd_bench_suites(_args) -> int:
    from .bench import get_suite, list_suites
    from .reporting import format_table

    rows = [{
        "suite": name,
        "kinds": "+".join(get_suite(name).job_kinds),
        "circuits": ",".join(get_suite(name).circuits) or "-",
        "scenarios": ",".join(get_suite(name).scenario_names()),
        "description": get_suite(name).description,
    } for name in list_suites()]
    print(format_table(rows, ["suite", "kinds", "circuits", "scenarios",
                              "description"],
                       title="Benchmark suites"))
    return 0


def _cmd_bench(args) -> int:
    handlers = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "history": _cmd_bench_history,
        "suites": _cmd_bench_suites,
    }
    return handlers[args.bench_command](args)


def _cmd_cache(args) -> int:
    with Session(cache=True, cache_dir=args.cache_dir) as session:
        if args.action == "info":
            info = session.cache_info()
            print(f"cache root: {info['root']}")
            print(f"entries:    {info['entries']}")
            print(f"size:       {info['bytes']} bytes")
            memory = info.get("memory")
            if memory:
                print(f"memory tier: {memory['entries']} entries "
                      f"(capacity {memory['capacity']})")
                print(f"  hits/misses: {memory['hits']}/{memory['misses']}   "
                      f"evictions: {memory['evictions']}   "
                      f"single-flight waits: {memory['single_flight_waits']}")
        else:
            removed = session.cache_clear()
            print(f"removed {removed} cached designs")
    return 0


def _cmd_obs(args) -> int:
    handlers = {"dump": _cmd_obs_dump}
    return handlers[args.obs_command](args)


def _cmd_obs_dump(args) -> int:
    """One-shot local metrics snapshot: run a sweep in a private registry."""
    from .bench.schema import environment_fingerprint
    from .obs.metrics import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as registry:
        with _session_from_args(args) as session:
            envelope = session.run(SweepJob(circuit=args.circuit,
                                            max_k=args.max_k))
            if not envelope.ok:
                print(f"error: {envelope.error['message']}", file=sys.stderr)
                return _exit_code(envelope)
            if args.json:
                print(json.dumps({
                    "environment": environment_fingerprint(),
                    "metrics": registry.snapshot(),
                    "trace": session.tracer.snapshot(),
                }, indent=2, sort_keys=True))
            else:
                print(registry.render())
    return 0


def _cmd_serve(args) -> int:
    if args.tcp is not None:
        from .net import MAX_LINE_BYTES, ClientQuota, serve_tcp

        host, port = args.tcp
        quota = ClientQuota(max_jobs=args.max_client_jobs,
                            max_time_limit=args.max_time_limit)
        with _session_from_args(args) as session:
            serve_tcp(session, host, port, quota=quota,
                      concurrency=args.concurrency,
                      progress=not args.quiet,
                      max_line_bytes=args.max_line_bytes or MAX_LINE_BYTES,
                      drain_seconds=args.drain_seconds)
        return 0
    with _session_from_args(args) as session:
        serve(session, progress=not args.quiet,
              concurrency=args.concurrency)
    try:
        sys.stdout.flush()
    except BrokenPipeError:
        # The client closed the pipe; detach stdout from it so the
        # interpreter's exit-time flush does not crash after a clean serve.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "backends": _cmd_backends,
    "table1": _cmd_table1,
    "synthesize": _cmd_synthesize,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "baseline": _cmd_baseline,
    "synth": _cmd_synth,
    "fuzz": _cmd_fuzz,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .core.engine import EngineError
    from .core.formulation import FormulationError
    from .dfg.graph import DFGError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (FormulationError, EngineError, DFGError) as exc:
        # the session converts job failures to error envelopes; this net
        # catches problems outside a job (e.g. session construction).
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
