"""Diff benchmark reports: the regression gate of ``repro bench``.

:func:`compare_reports` flattens every report into stable
``scenario/unit`` timing keys and compares a fresh run against the best
prior timing per key, flagging anything slower than ``threshold`` times
the prior.  The flattening deliberately ignores the suite name — a
``solver-micro`` CI run gates against the full-grid ``table2`` history as
long as the scenario and unit labels match (and they do: both call a fig1
sweep under ``cold_baseline`` the unit ``sweep:fig1``).

Noise guard: timings whose *prior* is below ``min_seconds`` are reported
but never flagged — a 4 ms job doubling to 8 ms is scheduler jitter, not
a regression.

    >>> from repro.bench.compare import compare_reports
    >>> current = {"cold/unit:a": 2.0, "cold/unit:b": 0.010}
    >>> prior = {"cold/unit:a": 1.0, "cold/unit:b": 0.004}
    >>> result = compare_reports(current, [("old.json", prior)], threshold=1.5)
    >>> [row.status for row in result.rows]
    ['regressed', 'noise']
    >>> result.ok
    False
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from .schema import BenchSchemaError, migrate_report

#: Default slowdown ratio past which a timing counts as a regression.
DEFAULT_THRESHOLD = 1.5

#: Default noise floor: prior timings below this are never gated on.
DEFAULT_MIN_SECONDS = 0.05

#: Terminal statuses a comparison row can carry.
ROW_STATUSES = ("ok", "faster", "regressed", "noise", "new")


def load_report(path: str | Path) -> dict:
    """Read one ``BENCH_*.json`` file, migrating legacy schemas on the way.

    Raises :class:`BenchSchemaError` for unreadable or unknown documents
    (with the file name in the message, since compare takes many files).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BenchSchemaError(f"{path}: no such report file") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"{path}: cannot read report: {exc}") from exc
    try:
        return migrate_report(data)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc


def flatten_timings(report: Mapping) -> dict[str, float]:
    """Flatten a schema-2 report into ``"scenario/unit" -> seconds``.

    >>> report = {"suites": {"s": {"scenarios": {"cold": {
    ...     "per_unit_seconds": {"sweep:fig1": 0.4}}}}}}
    >>> flatten_timings(report)
    {'cold/sweep:fig1': 0.4}
    """
    flat: dict[str, float] = {}
    for suite in report.get("suites", {}).values():
        for scenario_name, scenario in suite.get("scenarios", {}).items():
            for label, seconds in scenario.get("per_unit_seconds", {}).items():
                flat[f"{scenario_name}/{label}"] = float(seconds)
    return flat


def _flatten_checked(report: Mapping, prefer) -> tuple[dict[str, float], set[str]]:
    """Like :func:`flatten_timings`, but collision-aware.

    Two suites in one report may label the same unit under the same
    scenario (e.g. ``table2`` and ``solver-micro`` both time
    ``cold_baseline/sweep:fig1``).  Silently keeping whichever iterated
    last could mask a regression, so colliding keys keep the ``prefer``
    extreme — ``max`` for the current report (gate on the slowest
    instance), ``min`` for priors (consistent with "fastest prior") —
    and are reported back for a warning.
    """
    flat: dict[str, float] = {}
    collided: set[str] = set()
    for suite in report.get("suites", {}).values():
        for scenario_name, scenario in suite.get("scenarios", {}).items():
            for label, seconds in scenario.get("per_unit_seconds", {}).items():
                key = f"{scenario_name}/{label}"
                if key in flat:
                    collided.add(key)
                    flat[key] = prefer(flat[key], float(seconds))
                else:
                    flat[key] = float(seconds)
    return flat, collided


def _unit_workloads(report: Mapping) -> dict[str, tuple]:
    """Per timing key, the workload fingerprint that makes it comparable.

    Two reports may share a ``scenario/unit`` key yet have measured
    different work — a narrowed ``--max-k`` changes how many solves a
    ``sweep:`` unit contains, a different ``--time-limit`` changes how
    long a limited solve may run, and a forced ``--jobs`` changes the
    worker count behind every unit.  Comparing such keys is still useful
    (the CI micro gate does it against full-grid history) but must be
    *flagged*, so the fingerprint rides along with each key.
    """
    time_limit = (report.get("config") or {}).get("time_limit")
    workloads: dict[str, tuple] = {}
    for suite in report.get("suites", {}).values():
        max_k = (suite.get("config") or {}).get("max_k")
        for scenario_name, scenario in suite.get("scenarios", {}).items():
            jobs = scenario.get("jobs", 1)
            for label in scenario.get("per_unit_seconds", {}):
                workloads[f"{scenario_name}/{label}"] = (max_k, time_limit,
                                                         jobs)
    return workloads


@dataclass(frozen=True)
class ComparisonRow:
    """One timing key's verdict in a report comparison."""

    unit: str                 # "scenario/label"
    current_seconds: float
    prior_seconds: float | None
    prior_source: str | None  # file the best prior timing came from
    ratio: float | None       # current / prior
    status: str               # one of ROW_STATUSES

    def as_dict(self) -> dict:
        return {
            "unit": self.unit,
            "current_s": self.current_seconds,
            "prior_s": self.prior_seconds,
            "prior_source": self.prior_source,
            "ratio": self.ratio,
            "status": self.status,
        }


@dataclass
class BenchComparison:
    """Outcome of diffing one fresh report against prior reports."""

    threshold: float
    min_seconds: float
    rows: list[ComparisonRow] = field(default_factory=list)
    parity_ok: bool = True
    #: Non-fatal caveats, e.g. keys compared across different max_k.
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.status == "regressed"]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and parity held — the CI gate."""
        return not self.regressions and self.parity_ok


def compare_reports(current: Mapping | dict[str, float],
                    priors: Sequence[tuple[str, Mapping | dict[str, float]]],
                    threshold: float = DEFAULT_THRESHOLD,
                    min_seconds: float = DEFAULT_MIN_SECONDS,
                    ) -> BenchComparison:
    """Compare a fresh report against one or more prior reports.

    ``current`` and each prior may be a full schema-2 report or an
    already-flat ``{"scenario/unit": seconds}`` mapping; ``priors`` pairs
    each mapping with its source name (normally the file path).  Every
    timing key of ``current`` is judged against the *fastest* prior that
    recorded it:

    * ``regressed`` — slower than ``threshold`` × prior (prior above the
      ``min_seconds`` noise floor);
    * ``noise`` — would have regressed, but the prior is under the floor;
    * ``faster`` — at least the same margin *quicker* than the prior;
    * ``ok`` — within the threshold band;
    * ``new`` — no prior recorded this key.

    A ``parity_ok: false`` in the current report fails the comparison even
    with no timing regressions — a fast wrong answer is not a win.

    Keys whose recorded workload differs between the runs (a narrowed
    ``max_k`` or another ``time_limit``) are still compared — the CI micro
    gate deliberately diffs against full-grid history — but each mismatch
    is listed in :attr:`BenchComparison.warnings` so a phantom regression
    (or a masked one) is attributable to the config change.
    """
    collisions: list[str] = []
    if _is_flat(current):
        current_flat = {key: float(value) for key, value in dict(current).items()}
        parity_ok = True
        current_workloads: dict[str, tuple] = {}
    else:
        current_flat, collided = _flatten_checked(current, max)
        collisions.extend(f"current report: {key}" for key in sorted(collided))
        parity_ok = bool(current.get("parity_ok", True))
        current_workloads = _unit_workloads(current)

    best_prior: dict[str, tuple[float, str]] = {}
    prior_workloads: dict[str, dict[str, tuple]] = {}
    for source, prior in priors:
        if _is_flat(prior):
            flat = {key: float(value) for key, value in dict(prior).items()}
        else:
            flat, collided = _flatten_checked(prior, min)
            collisions.extend(f"{source}: {key}" for key in sorted(collided))
            prior_workloads[str(source)] = _unit_workloads(prior)
        for key, seconds in flat.items():
            if key not in best_prior or seconds < best_prior[key][0]:
                best_prior[key] = (seconds, str(source))

    comparison = BenchComparison(threshold=threshold, min_seconds=min_seconds,
                                 parity_ok=parity_ok)
    for collision in collisions:
        comparison.warnings.append(
            f"timing key recorded by more than one suite, kept the "
            f"gating extreme — {collision}")
    mismatched_workloads: dict[tuple, list[str]] = {}
    for key in sorted(current_flat):
        seconds = float(current_flat[key])
        if key not in best_prior:
            comparison.rows.append(ComparisonRow(
                unit=key, current_seconds=seconds, prior_seconds=None,
                prior_source=None, ratio=None, status="new"))
            continue
        prior_seconds, source = best_prior[key]
        ours = current_workloads.get(key)
        theirs = prior_workloads.get(source, {}).get(key)
        if ours is not None and theirs is not None and ours != theirs:
            mismatched_workloads.setdefault(
                (source, ours, theirs), []).append(key)
        ratio = (seconds / prior_seconds) if prior_seconds > 0 else float("inf")
        if ratio > threshold:
            status = "regressed" if prior_seconds >= min_seconds else "noise"
        elif ratio <= 1.0 / threshold:
            status = "faster"
        else:
            status = "ok"
        comparison.rows.append(ComparisonRow(
            unit=key, current_seconds=seconds, prior_seconds=prior_seconds,
            prior_source=source, ratio=round(ratio, 3), status=status))
    for (source, ours, theirs), keys in sorted(mismatched_workloads.items(),
                                               key=lambda item: item[1]):
        comparison.warnings.append(
            f"{len(keys)} key(s) compared across different workloads vs "
            f"{source} (current max_k={ours[0]}, time_limit={ours[1]}, "
            f"jobs={ours[2]}; prior max_k={theirs[0]}, "
            f"time_limit={theirs[1]}, jobs={theirs[2]}): "
            f"{', '.join(keys[:4])}{', ...' if len(keys) > 4 else ''}")
    return comparison


def _is_flat(mapping: Mapping) -> bool:
    return "suites" not in mapping and "scenarios" not in mapping


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_comparison(comparison: BenchComparison, verbose: bool = False) -> str:
    """The per-suite regression table ``repro bench`` prints.

    Shows every regression plus (with ``verbose``) the full row set;
    without ``verbose`` the ok/faster/new rows are summarised in one
    trailing line so a clean run stays short.
    """
    from ..reporting.tables import format_table

    rows = comparison.rows if verbose else comparison.regressions
    rendered: list[str] = []
    if rows:
        rendered.append(format_table(
            [{
                "unit": row.unit,
                "prior_s": ("-" if row.prior_seconds is None
                            else f"{row.prior_seconds:.3f}"),
                "current_s": f"{row.current_seconds:.3f}",
                "ratio": "-" if row.ratio is None else f"{row.ratio:.2f}x",
                "verdict": row.status.upper() if row.status == "regressed"
                           else row.status,
            } for row in rows],
            ["unit", "prior_s", "current_s", "ratio", "verdict"],
            title=f"Benchmark regression gate (threshold "
                  f"{comparison.threshold:g}x, noise floor "
                  f"{comparison.min_seconds:g}s)"))
    counts = {status: sum(1 for row in comparison.rows if row.status == status)
              for status in ROW_STATUSES}
    summary = ", ".join(f"{count} {status}" for status, count in counts.items()
                        if count)
    rendered.append(f"compared {len(comparison.rows)} timings: "
                    f"{summary or 'nothing to compare'}")
    for warning in comparison.warnings:
        rendered.append(f"warning: {warning}")
    if not comparison.parity_ok:
        rendered.append("PARITY FAILURE: the current run changed a proven "
                        "objective — timings are irrelevant until that is fixed")
    elif comparison.regressions:
        rendered.append(f"{len(comparison.regressions)} timing(s) regressed "
                        f"past {comparison.threshold:g}x")
    else:
        rendered.append("no regressions")
    return "\n".join(rendered)


def render_history(reports: Sequence[tuple[str, Mapping]]) -> str:
    """One-line-per-report trajectory table for ``repro bench history``.

    Each entry pairs a source name with a (migrated) schema-2 report;
    rows surface the scenario wall clocks and headline speed-ups so the
    perf trajectory reads top-to-bottom.
    """
    from ..reporting.tables import format_table

    rows = []
    for source, report in reports:
        for suite_name, suite in sorted(report.get("suites", {}).items()):
            walls = {name: scenario.get("wall_seconds")
                     for name, scenario in suite.get("scenarios", {}).items()}
            speedups = {name: ratio
                        for name, ratio in (suite.get("speedups") or {}).items()
                        if ratio is not None and
                        name != suite.get("config", {}).get("baseline_scenario")}
            rows.append({
                "report": source,
                "created": (report.get("created_at") or "-")[:19],
                "suite": suite_name,
                "python": report.get("environment", {}).get("python", "?"),
                "parity": "ok" if suite.get("parity_ok") else "FAIL",
                "walls_s": " ".join(f"{name}={seconds:g}"
                                    for name, seconds in walls.items()),
                "speedups": " ".join(f"{name}={ratio:g}x"
                                     for name, ratio in speedups.items()) or "-",
            })
    return format_table(
        rows, ["report", "created", "suite", "python", "parity",
               "walls_s", "speedups"],
        title="Benchmark history")
