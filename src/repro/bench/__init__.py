"""repro.bench — the benchmark & regression observability subsystem.

Benchmarking is a first-class, schema'd citizen of the reproduction: the
paper's evaluation grids (and the engineering benches that grew around
them) are **declarative suites** executed through the same
:class:`repro.api.Session` / job-spec contract every other front end uses,
and every run produces one versioned JSON report that later runs can be
diffed against.

The moving parts::

    suites   —  frozen BenchSuite specs: table2, table3, sweep-scaling,
                solver-micro, fuzz-throughput
    runner   —  run_suite()/run_suites(): execute a suite's scenario grid,
                guard objective parity, attribute speedups per accel layer
    schema   —  BENCH_SCHEMA, environment fingerprint, validate_report(),
                migrate_report() (legacy bench_regress schema-1 shim)
    compare  —  load_report(), compare_reports(): threshold-gated timing
                diffs against one or more prior ``BENCH_*.json`` files

Quick start (the CI gate in one call):

    >>> from repro.bench import get_suite, list_suites
    >>> "solver-micro" in list_suites()
    True
    >>> get_suite("table2").scenario_names()
    ('cold_baseline', 'cold_accel', 'cold_portfolio', 'warm_cache')

On the command line::

    repro bench suites                          # what can run
    repro bench run --suite solver-micro        # one timed grid -> JSON
    repro bench run --suite table2 --compare BENCH_regress.json --threshold 1.5x
    repro bench compare BENCH_new.json BENCH_regress.json
    repro bench history BENCH_*.json            # the perf trajectory
"""

from .compare import (
    BenchComparison,
    ComparisonRow,
    compare_reports,
    load_report,
    render_comparison,
    render_history,
)
from .runner import BenchError, run_suite, run_suites
from .schema import (
    BENCH_SCHEMA,
    BenchSchemaError,
    environment_fingerprint,
    migrate_report,
    validate_report,
)
from .suites import SUITES, BenchSuite, ScenarioSpec, get_suite, list_suites

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchError",
    "BenchSchemaError",
    "BenchSuite",
    "ComparisonRow",
    "SUITES",
    "ScenarioSpec",
    "compare_reports",
    "environment_fingerprint",
    "get_suite",
    "list_suites",
    "load_report",
    "migrate_report",
    "render_comparison",
    "render_history",
    "run_suite",
    "run_suites",
    "validate_report",
]
