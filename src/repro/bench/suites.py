"""The declarative benchmark suites: frozen specs, no execution logic.

A :class:`BenchSuite` names *what* to measure — which circuits, which job
kinds, which solver configurations (:class:`ScenarioSpec`) — and the
:mod:`repro.bench.runner` decides *how*: every unit of work becomes a
:mod:`repro.api.jobs` spec executed by a :class:`repro.api.Session`, so a
benchmark run exercises exactly the code path every other front end uses.

The built-in suites:

=================  ====================================================
``table2``         the paper's Table 2 k-sweeps over all seven circuits,
                   plain vs accelerated vs portfolio vs warm-cache
``table3``         the paper's Table 3 method comparisons, plain vs
                   accelerated
``sweep-scaling``  serial vs two-process sweep of tseng/fir6 (the
                   process-pool speed-up, cache disabled)
``solver-micro``   a fig1-only sweep + compare micro grid — seconds, not
                   minutes; the CI regression gate
``fuzz-throughput`` seeded random-DFG parity sweep, measured as
                   circuits/second
``dedup-throughput`` M concurrent clients submitting identical sweeps
                   through one shared session — proves the scheduler
                   coalesces them onto a single set of solves
``serve-load``     N concurrent TCP clients hammering a real
                   ``repro serve --tcp`` daemon with a duplicate-heavy
                   job mix, ending in a graceful-drain probe — reports
                   throughput, latency percentiles and the dedup ratio
=================  ====================================================

Suites are intentionally *specs*, not functions: they serialise into the
report (``report["suites"][name]["config"]``), they can cross the wire as
a :class:`repro.api.BenchJob`, and two runs of the same suite are
comparable by construction.

    >>> from repro.bench.suites import get_suite
    >>> suite = get_suite("solver-micro")
    >>> (suite.circuits, suite.job_kinds, suite.max_k)
    (('fig1', 'paulin'), ('sweep',), 3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: The seven built-in circuits (fig1 plus the Table 2/3 evaluation set).
PAPER_CIRCUITS = ("fig1", "tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6")

#: Job kinds a suite may fan out per circuit (plus the special "fuzz" kind,
#: the concurrent-clients "dedup" kind and the TCP-daemon "serve" kind).
SUITE_JOB_KINDS = ("sweep", "compare", "fuzz", "dedup", "serve")

#: Cache policies a scenario may request.
CACHE_NONE = "none"        # run without a design cache
CACHE_FRESH = "fresh"      # empty per-scenario cache directory
#: ``reuse:<scenario>`` reuses the cache another scenario populated.


@dataclass(frozen=True)
class ScenarioSpec:
    """One solver configuration a suite times its job grid under.

    Attributes
    ----------
    name:
        Stable scenario label; timings are diffed across runs by
        ``scenario/unit`` key, so renaming a scenario orphans its history.
    presolve / cuts / warm_start / batch / backend / jobs:
        The :class:`repro.api.Session` knobs of this configuration
        (``cuts`` selects the :mod:`repro.ilp.cuts` root cutting-plane
        loop, ``batch`` the compound batched solving of
        :mod:`repro.sched.batching`).
    cache:
        ``"none"`` (no design cache), ``"fresh"`` (empty per-scenario
        directory) or ``"reuse:<scenario>"`` (the warm-cache pattern:
        re-run on the cache a previous scenario populated).

    >>> ScenarioSpec("cold_accel", presolve=True, warm_start=True).cache
    'fresh'
    """

    name: str
    presolve: bool = False
    cuts: bool = False
    warm_start: bool = False
    batch: bool = False
    backend: str = "auto"
    jobs: int = 1
    cache: str = CACHE_FRESH

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"scenario {self.name!r}: jobs must be >= 1")
        if self.cache not in (CACHE_NONE, CACHE_FRESH) and \
                not self.cache.startswith("reuse:"):
            raise ValueError(
                f"scenario {self.name!r}: cache must be 'none', 'fresh' or "
                f"'reuse:<scenario>', got {self.cache!r}")

    @property
    def reuses(self) -> str | None:
        """Name of the scenario whose cache this one reuses, if any."""
        return self.cache.partition(":")[2] if self.cache.startswith("reuse:") else None

    def as_dict(self) -> dict:
        return {
            "scenario": self.name,
            "backend": self.backend,
            "presolve": self.presolve,
            "cuts": self.cuts,
            "warm_start": self.warm_start,
            "batch": self.batch,
            "jobs": self.jobs,
            "cache": self.cache,
        }


@dataclass(frozen=True)
class BenchSuite:
    """A frozen benchmark definition: circuits × job kinds × scenarios.

    The runner times every *unit* (one job spec, labelled
    ``"sweep:tseng"`` / ``"compare:fir6"`` / ``"fuzz:c12"``) under every
    scenario, asserts objective parity across scenarios, and reports the
    per-scenario wall-clock speed-ups relative to ``baseline_scenario``.

    >>> get_suite("sweep-scaling").scenario_names()
    ('serial', 'jobs2')
    """

    name: str
    description: str
    job_kinds: tuple[str, ...]
    scenarios: tuple[ScenarioSpec, ...]
    circuits: tuple[str, ...] = ()
    max_k: int | None = None
    baseline_scenario: str = ""
    #: fuzz-kind knobs (ignored by sweep/compare units)
    fuzz_count: int = 0
    fuzz_seed: int = 0
    fuzz_ops: int = 5
    #: dedup-kind knobs: M concurrent client threads, each submitting the
    #: identical job K times through one shared session
    dedup_clients: int = 4
    dedup_repeat: int = 2
    #: serve-kind knobs: N concurrent TCP connections to an in-process
    #: ``repro serve --tcp`` daemon, each sending K duplicate-heavy jobs
    serve_clients: int = 8
    serve_requests: int = 6

    def __post_init__(self):
        if not self.job_kinds:
            raise ValueError(f"suite {self.name!r} has no job kinds")
        for kind in self.job_kinds:
            if kind not in SUITE_JOB_KINDS:
                raise ValueError(
                    f"suite {self.name!r}: unknown job kind {kind!r}; "
                    f"expected a subset of {SUITE_JOB_KINDS}")
        if not self.scenarios:
            raise ValueError(f"suite {self.name!r} has no scenarios")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"suite {self.name!r} has duplicate scenario names")
        if not self.baseline_scenario:
            object.__setattr__(self, "baseline_scenario", names[0])

    def scenario_names(self) -> tuple[str, ...]:
        return tuple(scenario.name for scenario in self.scenarios)

    def unit_labels(self, circuits: tuple[str, ...] | None = None,
                    ) -> Iterator[str]:
        """The stable per-unit labels of this suite's job grid."""
        circuits = tuple(circuits) if circuits is not None else self.circuits
        for kind in self.job_kinds:
            if kind == "fuzz":
                yield f"fuzz:c{self.fuzz_count}:s{self.fuzz_seed}"
            elif kind == "dedup":
                for circuit in circuits:
                    yield (f"dedup:{circuit}:"
                           f"c{self.dedup_clients}x{self.dedup_repeat}")
            elif kind == "serve":
                for circuit in circuits:
                    yield (f"serve:{circuit}:"
                           f"c{self.serve_clients}x{self.serve_requests}")
            else:
                for circuit in circuits:
                    yield f"{kind}:{circuit}"

    def as_dict(self) -> dict:
        return {
            "suite": self.name,
            "description": self.description,
            "job_kinds": list(self.job_kinds),
            "circuits": list(self.circuits),
            "max_k": self.max_k,
            "baseline_scenario": self.baseline_scenario,
            "scenarios": [scenario.as_dict() for scenario in self.scenarios],
        }


# ----------------------------------------------------------------------
# the built-in suites
# ----------------------------------------------------------------------
#: The four acceleration scenarios of the historical bench_regress grid.
_ACCEL_SCENARIOS = (
    ScenarioSpec("cold_baseline", presolve=False, warm_start=False),
    # The adaptive portfolio predicts the winning arm per size bucket and
    # runs it alone — on one core that beats racing by roughly the arm count.
    ScenarioSpec("cold_accel", presolve=True, warm_start=True,
                 backend="adaptive"),
    ScenarioSpec("cold_portfolio", presolve=True, warm_start=True,
                 backend="portfolio"),
    ScenarioSpec("warm_cache", presolve=True, warm_start=True,
                 backend="adaptive", cache="reuse:cold_accel"),
)

SUITES: dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        BenchSuite(
            name="table2",
            description="Table 2 ADVBIST k-sweeps, plain vs accelerated "
                        "vs portfolio vs warm-cache",
            job_kinds=("sweep",),
            circuits=PAPER_CIRCUITS,
            scenarios=_ACCEL_SCENARIOS,
        ),
        BenchSuite(
            name="table3",
            description="Table 3 method comparisons (ADVBIST vs the "
                        "heuristic baselines), plain vs accelerated",
            job_kinds=("compare",),
            circuits=PAPER_CIRCUITS,
            scenarios=(
                ScenarioSpec("cold_baseline", presolve=False, warm_start=False),
                ScenarioSpec("cold_accel", presolve=True, warm_start=True),
            ),
        ),
        BenchSuite(
            name="sweep-scaling",
            description="serial vs two-process sweep wall time (the "
                        "process-pool speed-up; cache disabled so both "
                        "paths do identical work)",
            job_kinds=("sweep",),
            circuits=("tseng", "fir6"),
            scenarios=(
                ScenarioSpec("serial", jobs=1, cache=CACHE_NONE),
                ScenarioSpec("jobs2", jobs=2, cache=CACHE_NONE),
            ),
        ),
        BenchSuite(
            name="solver-micro",
            # paulin rides along so the gate sees a model where the accel
            # stack has real headroom — on fig1 the solver wall is too
            # small for presolve/portfolio wins to clear measurement noise.
            description="fig1 + paulin sweep micro grid — the fast "
                        "CI regression gate",
            job_kinds=("sweep",),
            circuits=("fig1", "paulin"),
            max_k=3,
            scenarios=(
                ScenarioSpec("cold_baseline", presolve=False, warm_start=False),
                ScenarioSpec("cold_accel", presolve=True, warm_start=True,
                             backend="adaptive"),
                # Same grid with root cutting planes — the parity guard
                # proves the cut loop never changes an objective.
                ScenarioSpec("cold_cuts", presolve=True, cuts=True,
                             warm_start=False),
                # Same grid through the compound batched path — the
                # cross-scenario parity guard then proves batched
                # objectives match the serial scenarios exactly.
                ScenarioSpec("cold_batched", presolve=False, warm_start=False,
                             batch=True),
                ScenarioSpec("warm_cache", presolve=True, warm_start=True,
                             backend="adaptive", cache="reuse:cold_accel"),
            ),
        ),
        BenchSuite(
            name="dedup-throughput",
            description="M concurrent clients submitting K identical sweeps "
                        "through one shared session — the scheduler must "
                        "coalesce them onto a single set of solves",
            job_kinds=("dedup",),
            circuits=("fig1",),
            max_k=2,
            dedup_clients=4,
            dedup_repeat=2,
            # Fresh caches: the concurrent burst coalesces in-flight
            # duplicates, the memory tier absorbs the repeats — together
            # every unique task is solved exactly once per scenario.
            scenarios=(
                ScenarioSpec("coalesced"),
                ScenarioSpec("coalesced_batched", batch=True),
            ),
        ),
        BenchSuite(
            name="serve-load",
            description="N concurrent TCP clients hammering an in-process "
                        "repro serve --tcp daemon with a duplicate-heavy "
                        "mix, ending in a graceful-drain probe — reports "
                        "throughput, latency percentiles and dedup ratio",
            job_kinds=("serve",),
            circuits=("fig1",),
            max_k=2,
            serve_clients=8,
            serve_requests=6,
            scenarios=(ScenarioSpec("tcp"),),
        ),
        BenchSuite(
            name="fuzz-throughput",
            description="seeded random-DFG backend-parity sweep measured "
                        "as circuits per second",
            job_kinds=("fuzz",),
            scenarios=(ScenarioSpec("throughput", cache=CACHE_NONE),),
            fuzz_count=12,
            fuzz_seed=0,
            fuzz_ops=5,
        ),
    )
}


def list_suites() -> list[str]:
    """The registered suite names, sorted.

    >>> list_suites()
    ['dedup-throughput', 'fuzz-throughput', 'serve-load', 'solver-micro', 'sweep-scaling', 'table2', 'table3']
    """
    return sorted(SUITES)


def get_suite(name: str) -> BenchSuite:
    """Look up a built-in suite by name.

    >>> get_suite("table3").job_kinds
    ('compare',)
    >>> get_suite("nope")
    Traceback (most recent call last):
        ...
    KeyError: "unknown benchmark suite 'nope'; expected one of ['dedup-throughput', 'fuzz-throughput', 'serve-load', 'solver-micro', 'sweep-scaling', 'table2', 'table3']"
    """
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(f"unknown benchmark suite {name!r}; "
                       f"expected one of {list_suites()}") from None
