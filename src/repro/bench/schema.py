"""The versioned benchmark-report schema, fingerprint and migration shim.

Every ``repro bench run`` writes exactly one JSON document in the shape
below (``BENCH_SCHEMA`` = 2).  The schema is the *contract of the perf
trajectory*: reports are diffed across runs, machines and months, so the
shape is validated on write (:func:`validate_report`) and old reports are
upgraded on read (:func:`migrate_report`) instead of silently breaking.

Schema 2 layout::

    {
      "schema": 2,
      "bench": "repro.bench",
      "created_at": "2026-07-26T12:00:00+00:00",
      "environment": { python / platform / scipy / highs_available / ... },
      "config":      { circuits / max_k / time_limit / jobs / seed / warmup },
      "parity_ok":   true,                  # AND of every suite
      "suites": {
        "<suite>": {
          "suite": ..., "description": ...,
          "config":   { the resolved circuits / max_k / job_kinds },
          "parity_ok": true, "parity_mismatches": [...], "unproven_entries": [...],
          "speedups": { "<scenario>": wall-clock ratio vs the baseline scenario },
          "scenarios": {
            "<scenario>": {
              "scenario" / "backend" / "presolve" / "warm_start" / "jobs" / "cache",
              "wall_seconds": ..., "per_unit_seconds": {"sweep:tseng": ...},
              "cached_solves": ..., "total_solves": ...,
              "objectives": { parity fingerprint }, "proven": { ... },
              "attribution": { presolved_solves / presolve_rows_removed /
                               presolve_vars_removed / presolve_seconds /
                               portfolio_wins },
              "scheduler": { dedup-only, per unit: clients / repeat /
                             requests / tasks_per_request / submitted /
                             cache_hits / deduped / coalesced /
                             solver_tasks },
              "throughput": { fuzz-only: cases / circuits_per_second }
            } } } }
    }

Schema 1 is the format the retired ``benchmarks/bench_regress.py`` script
wrote (one flat scenario grid mixing ``sweep:*`` and ``compare:*`` units);
:func:`migrate_report` splits it into ``table2`` + ``table3`` suites with
identical ``scenario`` / unit labels, so the checked-in
``BENCH_regress.json`` keeps gating CI without being regenerated.

    >>> from repro.bench.schema import migrate_report, validate_report
    >>> legacy = {"schema": 1, "bench": "bench_regress", "python": "3.11",
    ...           "machine": "x86_64", "parity_ok": True,
    ...           "parity_mismatches": [], "unproven_entries": [],
    ...           "config": {"circuits": ["fig1"], "max_k": 3, "time_limit": 60.0},
    ...           "scenarios": {"cold_baseline": {
    ...               "scenario": "cold_baseline", "backend": "auto",
    ...               "presolve": False, "warm_start": False,
    ...               "wall_seconds": 0.5,
    ...               "per_job_seconds": {"sweep:fig1": 0.4, "compare:fig1": 0.1},
    ...               "cached_solves": 0, "total_solves": 5,
    ...               "objectives": {"sweep:fig1:k=1": 1000.0},
    ...               "proven": {"sweep:fig1:k=1": True}}}}
    >>> report = migrate_report(legacy)
    >>> validate_report(report)["schema"]
    2
    >>> sorted(report["suites"])
    ['table2', 'table3']
"""

from __future__ import annotations

import platform
import sys
from datetime import datetime, timezone
from typing import Any, Mapping

#: Version stamped on every report this package writes.
BENCH_SCHEMA = 2

#: The legacy version written by the retired bench_regress.py script.
LEGACY_BENCH_SCHEMA = 1

#: ``bench`` discriminators accepted by :func:`migrate_report`.
_LEGACY_BENCH_NAMES = ("bench_regress",)


class BenchSchemaError(ValueError):
    """Raised for a malformed, unknown-version or inconsistent report."""


def environment_fingerprint() -> dict:
    """The environment facts that make two timings (in)comparable.

    Records interpreter, platform and solver-stack versions plus HiGHS
    availability — a regression between two reports with different
    fingerprints is a machine change before it is a code change.

    >>> sorted(environment_fingerprint())[:4]
    ['highs_available', 'implementation', 'machine', 'numpy']
    """
    try:
        import scipy
        scipy_version: str | None = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep here
        scipy_version = None
    try:
        from scipy.optimize import milp  # noqa: F401
        highs = True
    except ImportError:  # pragma: no cover
        highs = False
    try:
        import numpy
        numpy_version: str | None = numpy.__version__
    except ImportError:  # pragma: no cover
        numpy_version = None
    from .. import __version__

    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.system(),
        "machine": platform.machine(),
        "scipy": scipy_version,
        "numpy": numpy_version,
        "highs_available": highs,
        "repro_version": __version__,
    }


def utc_timestamp() -> str:
    """The ISO-8601 UTC creation stamp written into reports."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise BenchSchemaError(f"{path}: {message}")


def _require_mapping(value: Any, path: str) -> Mapping:
    _require(isinstance(value, Mapping), path,
             f"expected an object, got {type(value).__name__}")
    return value


def _require_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {value!r}")


def validate_report(report: Mapping) -> Mapping:
    """Check ``report`` against schema 2; returns it unchanged when valid.

    Raises :class:`BenchSchemaError` naming the offending path.  Legacy
    reports must go through :func:`migrate_report` first — a schema-1
    document here is an error, not a silent pass.
    """
    report = _require_mapping(report, "report")
    _require(report.get("schema") == BENCH_SCHEMA, "report.schema",
             f"expected {BENCH_SCHEMA}, got {report.get('schema')!r} "
             f"(run migrate_report() on legacy files)")
    _require(report.get("bench") == "repro.bench", "report.bench",
             f"expected 'repro.bench', got {report.get('bench')!r}")
    environment = _require_mapping(report.get("environment"), "report.environment")
    for key in ("python", "machine", "highs_available"):
        _require(key in environment, f"report.environment.{key}", "missing")
    _require_mapping(report.get("config"), "report.config")
    _require(isinstance(report.get("parity_ok"), bool), "report.parity_ok",
             f"expected a boolean, got {report.get('parity_ok')!r}")
    suites = _require_mapping(report.get("suites"), "report.suites")
    _require(len(suites) > 0, "report.suites", "report contains no suites")
    for suite_name, suite in suites.items():
        _validate_suite(suite, f"report.suites[{suite_name!r}]")
    parity = all(suite["parity_ok"] for suite in suites.values())
    _require(report["parity_ok"] == parity, "report.parity_ok",
             "does not equal the AND of the per-suite parity_ok flags")
    return report


def _validate_suite(suite: Any, path: str) -> None:
    suite = _require_mapping(suite, path)
    for key in ("suite", "config", "parity_ok", "scenarios", "speedups"):
        _require(key in suite, f"{path}.{key}", "missing")
    _require(isinstance(suite["parity_ok"], bool), f"{path}.parity_ok",
             f"expected a boolean, got {suite['parity_ok']!r}")
    _require_mapping(suite["config"], f"{path}.config")
    _require_mapping(suite["speedups"], f"{path}.speedups")
    scenarios = _require_mapping(suite["scenarios"], f"{path}.scenarios")
    _require(len(scenarios) > 0, f"{path}.scenarios", "suite has no scenarios")
    for name, scenario in scenarios.items():
        spath = f"{path}.scenarios[{name!r}]"
        scenario = _require_mapping(scenario, spath)
        for key in ("scenario", "backend", "wall_seconds", "per_unit_seconds"):
            _require(key in scenario, f"{spath}.{key}", "missing")
        _require_number(scenario["wall_seconds"], f"{spath}.wall_seconds")
        units = _require_mapping(scenario["per_unit_seconds"],
                                 f"{spath}.per_unit_seconds")
        for label, seconds in units.items():
            _require_number(seconds, f"{spath}.per_unit_seconds[{label!r}]")
        for key in ("objectives", "proven", "attribution"):
            if key in scenario and scenario[key] is not None:
                _require_mapping(scenario[key], f"{spath}.{key}")


# ----------------------------------------------------------------------
# migration
# ----------------------------------------------------------------------
#: Legacy unit-label prefix → the suite it migrates into.
_LEGACY_SUITE_OF_PREFIX = {"sweep": "table2", "compare": "table3"}


def migrate_report(report: Mapping) -> dict:
    """Upgrade any known report version to schema 2 (and validate it).

    A schema-2 report passes through (validated).  A schema-1
    ``bench_regress`` report is split by unit-label prefix into ``table2``
    (``sweep:*``) and ``table3`` (``compare:*``) suites whose scenario and
    unit labels match what the live suites produce, so legacy timings keep
    participating in ``repro bench compare``.
    """
    report = _require_mapping(report, "report")
    version = report.get("schema")
    if version == BENCH_SCHEMA:
        return dict(validate_report(report))
    if version != LEGACY_BENCH_SCHEMA:
        raise BenchSchemaError(
            f"report.schema: cannot migrate version {version!r}; "
            f"known versions are {LEGACY_BENCH_SCHEMA} and {BENCH_SCHEMA}")
    if report.get("bench") not in _LEGACY_BENCH_NAMES:
        raise BenchSchemaError(
            f"report.bench: unknown legacy bench {report.get('bench')!r}; "
            f"expected one of {_LEGACY_BENCH_NAMES}")

    legacy_config = dict(_require_mapping(report.get("config"), "report.config"))
    scenarios = _require_mapping(report.get("scenarios"), "report.scenarios")
    parity_ok = bool(report.get("parity_ok", False))

    suites: dict[str, dict] = {}
    for prefix, suite_name in _LEGACY_SUITE_OF_PREFIX.items():
        migrated_scenarios: dict[str, dict] = {}
        for name, scenario in scenarios.items():
            scenario = _require_mapping(scenario, f"report.scenarios[{name!r}]")
            units = {
                label: seconds
                for label, seconds in dict(scenario.get("per_job_seconds") or {}).items()
                if label.partition(":")[0] == prefix
            }
            if not units:
                continue
            keep = lambda key: key.partition(":")[0] == prefix  # noqa: E731
            migrated_scenarios[name] = {
                "scenario": name,
                "backend": scenario.get("backend", "auto"),
                "presolve": bool(scenario.get("presolve", False)),
                "warm_start": bool(scenario.get("warm_start", False)),
                "jobs": 1,
                "cache": "fresh",
                # The legacy wall mixed both grids; the per-suite wall is
                # the sum of this suite's units (close, and comparable).
                "wall_seconds": round(sum(units.values()), 3),
                "per_unit_seconds": units,
                "cached_solves": scenario.get("cached_solves", 0),
                "total_solves": scenario.get("total_solves", 0),
                "objectives": {key: value
                               for key, value in dict(scenario.get("objectives") or {}).items()
                               if keep(key)},
                "proven": {key: value
                           for key, value in dict(scenario.get("proven") or {}).items()
                           if keep(key)},
                "attribution": None,
            }
        if not migrated_scenarios:
            continue
        baseline = ("cold_baseline" if "cold_baseline" in migrated_scenarios
                    else next(iter(migrated_scenarios)))
        baseline_wall = migrated_scenarios[baseline]["wall_seconds"]
        speedups = {
            name: (round(baseline_wall / scenario["wall_seconds"], 3)
                   if scenario["wall_seconds"] else None)
            for name, scenario in migrated_scenarios.items()
        }
        suites[suite_name] = {
            "suite": suite_name,
            "description": f"migrated from bench_regress schema 1 ({prefix} units)",
            "config": {
                "circuits": legacy_config.get("circuits"),
                "max_k": legacy_config.get("max_k"),
                "job_kinds": [prefix],
                "baseline_scenario": baseline,
            },
            "parity_ok": parity_ok,
            "parity_mismatches": list(report.get("parity_mismatches") or []),
            "unproven_entries": list(report.get("unproven_entries") or []),
            "speedups": speedups,
            "scenarios": migrated_scenarios,
        }
    if not suites:
        raise BenchSchemaError(
            "report.scenarios: legacy report contains no sweep:/compare: units")

    migrated = {
        "schema": BENCH_SCHEMA,
        "bench": "repro.bench",
        "created_at": None,
        "migrated_from": {"schema": LEGACY_BENCH_SCHEMA,
                          "bench": report.get("bench")},
        "environment": {
            "python": report.get("python", "unknown"),
            "implementation": "unknown",
            "platform": "unknown",
            "machine": report.get("machine", "unknown"),
            "scipy": None,
            "numpy": None,
            "highs_available": True,
            "repro_version": None,
        },
        "config": {
            "circuits": legacy_config.get("circuits"),
            "max_k": legacy_config.get("max_k"),
            "time_limit": legacy_config.get("time_limit"),
            "jobs": None,
            "seed": None,
            "warmup": True,
        },
        "parity_ok": parity_ok,
        "suites": suites,
    }
    return dict(validate_report(migrated))
