"""Execute benchmark suites through the :mod:`repro.api` façade.

:func:`run_suite` times one :class:`~repro.bench.suites.BenchSuite`'s job
grid under each of its scenarios and returns the per-suite report block;
:func:`run_suites` runs several suites and wraps them into one schema-2
report (validated before it is returned, so a malformed report can never
be written).

Three guarantees the runner enforces on every run:

* **Same code path as production** — every unit is a
  :class:`repro.api.SweepJob` / :class:`~repro.api.CompareJob` /
  :class:`~repro.api.FuzzJob` executed by a :class:`repro.api.Session`;
  nothing is timed that a user could not reach.
* **Objective parity** — acceleration layers are exact, so every proven
  objective must be identical across a suite's scenarios; any mismatch is
  recorded and flips ``parity_ok`` to ``False``.
* **Per-layer attribution** — the per-solve
  :class:`repro.ilp.SolveStats` records (presolve shrinkage, portfolio
  winners) are aggregated per scenario, so a speed-up in the report can be
  traced to the layer that produced it.
"""

from __future__ import annotations

import re
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .schema import (
    BENCH_SCHEMA,
    environment_fingerprint,
    utc_timestamp,
    validate_report,
)
from .suites import CACHE_NONE, BenchSuite, ScenarioSpec, get_suite

#: Progress callback signature: one flat event dict per call.
ProgressCallback = Callable[[dict], None]

# Winner-annotated backend labels: "portfolio[scipy]", "adaptive[scipy-ws]".
_PORTFOLIO_BACKEND = re.compile(r"[\w-]+\[([^\]]+)\]")


class BenchError(ValueError):
    """Raised when a benchmark suite cannot run or a unit job fails."""


def _emit(progress: ProgressCallback | None, event: dict) -> None:
    if progress is not None:
        progress(event)


# ----------------------------------------------------------------------
# unit jobs and parity fingerprints
# ----------------------------------------------------------------------
def _unit_jobs(suite: BenchSuite, circuits: Sequence[str], max_k: int | None,
               seed: int | None) -> Iterator[tuple[str, object]]:
    """Yield ``(label, job_spec)`` for every unit of the suite's grid."""
    from ..api import CompareJob, FuzzJob, SweepJob

    for kind in suite.job_kinds:
        if kind == "sweep":
            for circuit in circuits:
                yield f"sweep:{circuit}", SweepJob(circuit=circuit, max_k=max_k)
        elif kind == "compare":
            for circuit in circuits:
                yield f"compare:{circuit}", CompareJob(circuit=circuit)
        elif kind == "fuzz":
            fuzz_seed = seed if seed is not None else suite.fuzz_seed
            label = f"fuzz:c{suite.fuzz_count}:s{fuzz_seed}"
            yield label, FuzzJob(count=suite.fuzz_count, seed=fuzz_seed,
                                 ops=suite.fuzz_ops)
        elif kind == "dedup":
            # M client threads each submit this identical sweep K times;
            # the runner fans the same job spec out itself (see
            # _run_dedup_unit), so one label covers the whole burst.
            for circuit in circuits:
                label = (f"dedup:{circuit}:"
                         f"c{suite.dedup_clients}x{suite.dedup_repeat}")
                yield label, SweepJob(circuit=circuit, max_k=max_k)
        elif kind == "serve":
            # N concurrent TCP clients against an in-process daemon; the
            # unit's "job" is the duplicate-heavy spec pool the clients
            # cycle (see repro.net.load.run_load_test).
            from ..net.load import default_spec_pool

            for circuit in circuits:
                label = (f"serve:{circuit}:"
                         f"c{suite.serve_clients}x{suite.serve_requests}")
                yield label, default_spec_pool(circuit, max_k)
        else:  # pragma: no cover - BenchSuite.__post_init__ rejects these
            raise BenchError(f"suite {suite.name!r}: unknown job kind {kind!r}")


def _fingerprint(label: str, envelope) -> dict[str, tuple[float, bool]]:
    """Parity fingerprint of one envelope: ``key -> (objective, proven)``.

    ``proven`` marks entries whose value is configuration-independent — a
    proven optimum or a deterministic heuristic baseline.  Entries where a
    solver stopped on its time limit carry whatever incumbent it reached;
    those may legitimately differ between scenarios (the accelerated path
    often finds a *better* one) and are excluded from the parity assertion
    but still recorded for the human reading the JSON.
    """
    payload = envelope.payload
    entries: dict[str, tuple[float, bool]] = {}
    if label.startswith("sweep:") or label.startswith("dedup:"):
        entries[f"{label}:reference"] = (payload["reference_area"],
                                         bool(payload["reference_optimal"]))
        for row in payload["rows"]:
            entries[f"{label}:k={row['k']}"] = (row["area"], bool(row["optimal"]))
        return entries
    if label.startswith("compare:"):
        optimal = payload["optimal"]
        for method, row in zip(["reference"] + list(payload["overheads"]),
                               payload["table3"]):
            if method == "reference":
                proven = bool(payload["reference_optimal"])
            elif method == "ADVBIST":
                proven = bool(optimal.get(method, False))
            else:
                # The heuristic baselines are deterministic (their designs
                # carry optimal=False, but the *area* is config-independent).
                proven = True
            entries[f"{label}:{method}"] = (row["Area"], proven)
        return entries
    return entries  # fuzz units carry no objective fingerprint


def _verification_failures(label: str, envelope, scenario_name: str,
                           ) -> list[dict]:
    """BIST rule-check failures in a unit's payload (always parity breaks).

    Every design a suite touches must pass :func:`repro.datapath.verify_bist_plan`
    regardless of which scenario produced it — a worker returning the right
    area but a broken assignment would otherwise slip past the objective
    fingerprint.
    """
    payload = envelope.payload
    failures: list[dict] = []
    if label.startswith("sweep:") or label.startswith("dedup:"):
        for row in payload["rows"]:
            if not row.get("verified", True):
                failures.append({
                    "entry": f"{label}:k={row['k']}", "scenario": scenario_name,
                    "detail": "design failed BIST verification"})
    elif label.startswith("compare:"):
        for method, ok in payload.get("verified", {}).items():
            if not ok:
                failures.append({
                    "entry": f"{label}:{method}", "scenario": scenario_name,
                    "detail": "design failed BIST verification"})
    return failures


def _empty_attribution() -> dict:
    return {
        "presolved_solves": 0,
        "presolve_vars_removed": 0,
        "presolve_rows_removed": 0,
        "presolve_seconds": 0.0,
        "portfolio_wins": {},
    }


def _attribute(attribution: dict, reports: Iterable[Mapping]) -> None:
    """Fold one envelope's per-task reports into the scenario attribution."""
    for row in reports:
        if row.get("cached"):
            # A cache hit replays the original solve's stored stats —
            # counting them would claim presolve/portfolio work the warm
            # path never did.
            continue
        if row.get("presolve_vars_removed") is not None:
            attribution["presolved_solves"] += 1
            attribution["presolve_vars_removed"] += row["presolve_vars_removed"]
            attribution["presolve_rows_removed"] += row["presolve_rows_removed"]
            attribution["presolve_seconds"] = round(
                attribution["presolve_seconds"] + row.get("presolve_s", 0.0), 6)
        match = _PORTFOLIO_BACKEND.fullmatch(str(row.get("backend", "")))
        if match:
            wins = attribution["portfolio_wins"]
            wins[match.group(1)] = wins.get(match.group(1), 0) + 1


# ----------------------------------------------------------------------
# scenario execution
# ----------------------------------------------------------------------
def _run_serve_unit(session, suite: BenchSuite, scenario: ScenarioSpec,
                    label: str, spec_pool: list, scheduler: dict,
                    ) -> tuple[float, dict]:
    """N concurrent TCP clients against an in-process serve daemon.

    Runs :func:`repro.net.load.run_load_test` over the scenario's warm
    session, records the coalescing delta under ``scheduler[label]`` and
    returns ``(unit_seconds, throughput_block)``.  The suite's contract is
    zero lost requests under concurrent load: any dropped, unanswered or
    errored request — or a graceful-drain probe that went unanswered — is
    a :class:`BenchError`, not a number in the report.
    """
    from ..net.load import run_load_test

    started = time.perf_counter()
    load = run_load_test(session, clients=suite.serve_clients,
                         requests_per_client=suite.serve_requests,
                         spec_pool=spec_pool, progress=False)
    seconds = round(time.perf_counter() - started, 3)
    problems = []
    if load["answered"] != load["requests"]:
        problems.append(f"{load['requests'] - load['answered']} of "
                        f"{load['requests']} requests unanswered")
    if load["dropped"]:
        problems.append(f"{load['dropped']} requests dropped")
    if load["errors"]:
        problems.append(f"{load['errors']} error responses")
    if not load["drain"]["probe_answered"]:
        problems.append("graceful-drain probe went unanswered")
    if problems:
        raise BenchError(f"{suite.name}/{scenario.name}/{label}: "
                         + "; ".join(problems))
    delta = load["scheduler"]
    scheduler[label] = {
        "clients": load["clients"],
        "requests_per_client": load["requests_per_client"],
        "requests": load["requests"],
        "answered": load["answered"],
        "cached_results": load["cached_results"],
        "submitted": delta["submitted"],
        "cache_hits": delta["cache_hits"],
        "deduped": delta["deduped"],
        "coalesced": delta["coalesced"],
        "solver_tasks": delta["executed"],
        "dedup_ratio": load["dedup_ratio"],
        "drain": load["drain"],
    }
    throughput = {
        "requests": load["requests"],
        "requests_per_second": load["requests_per_second"],
        "latency": load["latency"],
    }
    return seconds, throughput


def _run_dedup_unit(session, job, clients: int, repeat: int) -> list:
    """M client threads × K identical submissions through one session.

    Returns every envelope (``clients * repeat`` of them).  The threads
    share the session's scheduler, so concurrent identical submissions
    coalesce onto one in-flight computation — exactly the contention a
    ``repro serve --concurrency N`` daemon sees from N clients.
    """
    from concurrent.futures import ThreadPoolExecutor

    def client(_index: int) -> list:
        return [session.run(job) for _ in range(repeat)]

    with ThreadPoolExecutor(max_workers=clients) as pool:
        batches = list(pool.map(client, range(clients)))
    return [envelope for batch in batches for envelope in batch]


def _run_scenario(suite: BenchSuite, scenario: ScenarioSpec,
                  circuits: Sequence[str], max_k: int | None,
                  time_limit: float, jobs: int | None, seed: int | None,
                  cache_root: Path, cache_dirs: dict[str, str],
                  progress: ProgressCallback | None) -> dict:
    """Time the suite's full unit grid under one scenario configuration."""
    from ..api import Session

    if scenario.cache == CACHE_NONE:
        cache: bool = False
        cache_dir = None
    else:
        reused = scenario.reuses
        if reused is not None:
            if reused not in cache_dirs:
                raise BenchError(
                    f"suite {suite.name!r}: scenario {scenario.name!r} reuses "
                    f"the cache of {reused!r}, which has not run (was it "
                    f"filtered out?)")
            cache_dir = cache_dirs[reused]
        else:
            cache_dir = str(cache_root / scenario.name)
        cache_dirs[scenario.name] = cache_dir
        cache = True

    effective_jobs = jobs if jobs is not None else scenario.jobs
    per_unit: dict[str, float] = {}
    fingerprint: dict[str, tuple[float, bool]] = {}
    throughput: dict | None = None
    parity_failures: list[dict] = []
    attribution = _empty_attribution()
    scheduler: dict[str, dict] = {}
    cached_solves = 0
    total_solves = 0

    started = time.perf_counter()
    with Session(backend=scenario.backend, time_limit=time_limit,
                 jobs=effective_jobs, cache=cache, cache_dir=cache_dir,
                 presolve=scenario.presolve,
                 cuts=scenario.cuts,
                 warm_start=scenario.warm_start,
                 batch=scenario.batch) as session:
        for label, job in _unit_jobs(suite, circuits, max_k, seed):
            _emit(progress, {"event": "unit_started", "suite": suite.name,
                             "scenario": scenario.name, "unit": label})
            unit_started = time.perf_counter()
            if label.startswith("serve:"):
                seconds, throughput = _run_serve_unit(
                    session, suite, scenario, label, job, scheduler)
                per_unit[label] = seconds
                _emit(progress, {"event": "unit_finished",
                                 "suite": suite.name,
                                 "scenario": scenario.name, "unit": label,
                                 "seconds": seconds})
                continue
            if label.startswith("dedup:"):
                stats_before = session.scheduler_stats()
                envelopes = _run_dedup_unit(session, job,
                                            suite.dedup_clients,
                                            suite.dedup_repeat)
                stats_after = session.scheduler_stats()
                envelope = envelopes[0]
                delta = {key: stats_after[key] - stats_before[key]
                         for key in stats_after}
                scheduler[label] = {
                    "clients": suite.dedup_clients,
                    "repeat": suite.dedup_repeat,
                    "requests": len(envelopes),
                    "tasks_per_request": len(envelope.reports),
                    "submitted": delta["submitted"],
                    "cache_hits": delta["cache_hits"],
                    "deduped": delta["deduped"],
                    "coalesced": delta["coalesced"],
                    "solver_tasks": delta["executed"],
                }
            else:
                envelopes = [session.run(job)]
                envelope = envelopes[0]
            seconds = round(time.perf_counter() - unit_started, 3)
            per_unit[label] = seconds
            for done in envelopes:
                if not done.ok:
                    raise BenchError(
                        f"{suite.name}/{scenario.name}/{label} failed: "
                        f"{done.error}")
                parity_failures.extend(
                    _verification_failures(label, done, scenario.name))
                _attribute(attribution, done.reports)
                cached_solves += sum(1 for r in done.reports
                                     if r.get("cached"))
                total_solves += len(done.reports)
            fingerprint.update(_fingerprint(label, envelope))
            if label.startswith("fuzz:"):
                cases = envelope.payload["cases"]
                throughput = {
                    "cases": cases,
                    "circuits_per_second": (round(cases / seconds, 3)
                                            if seconds else None),
                }
                if not envelope.payload["ok"]:
                    parity_failures.append({
                        "entry": label,
                        "scenario": scenario.name,
                        "detail": f"{envelope.payload['num_failures']} of "
                                  f"{cases} circuits failed backend parity",
                    })
            _emit(progress, {"event": "unit_finished", "suite": suite.name,
                             "scenario": scenario.name, "unit": label,
                             "seconds": seconds})

    return {
        **scenario.as_dict(),
        "jobs": effective_jobs,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "per_unit_seconds": per_unit,
        "cached_solves": cached_solves,
        "total_solves": total_solves,
        "objectives": {key: area for key, (area, _) in fingerprint.items()},
        "proven": {key: proven for key, (_, proven) in fingerprint.items()},
        "attribution": attribution,
        "scheduler": scheduler,
        "throughput": throughput,
        "unit_parity_failures": parity_failures,
    }


def _check_parity(scenarios: dict[str, dict], baseline_name: str,
                  ) -> tuple[list[dict], list[str]]:
    """Cross-scenario parity: proven objectives must match the baseline."""
    mismatches: list[dict] = []
    unproven = sorted({
        key
        for scenario in scenarios.values()
        for key, proven in scenario["proven"].items() if not proven
    })
    baseline = scenarios[baseline_name]
    for scenario in scenarios.values():
        mismatches.extend(scenario.pop("unit_parity_failures"))
        for key, objective in scenario["objectives"].items():
            if not (scenario["proven"][key] and baseline["proven"].get(key)):
                continue
            if objective != baseline["objectives"][key]:
                mismatches.append({
                    "entry": key,
                    "scenario": scenario["scenario"],
                    "baseline": baseline["objectives"][key],
                    "got": objective,
                })
    return mismatches, unproven


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def _warmup(time_limit: float) -> None:
    """One throwaway solve so the first timed scenario does not pay the
    interpreter/scipy import and first-call costs."""
    from ..api import Session, SynthesizeJob

    with Session(time_limit=time_limit, cache=False) as session:
        envelope = session.run(SynthesizeJob(circuit="fig1", k=1))
    if not envelope.ok:  # pragma: no cover - fig1 always solves
        raise BenchError(f"warmup solve failed: {envelope.error}")


def run_suite(suite: str | BenchSuite, *, circuits: Sequence[str] | None = None,
              max_k: int | None = None, time_limit: float = 120.0,
              jobs: int | None = None, seed: int | None = None,
              scenarios: Sequence[str] | None = None, warmup: bool = True,
              progress: ProgressCallback | None = None) -> dict:
    """Run one suite and return its per-suite report block.

    Parameters override the suite's frozen defaults for this run only:
    ``circuits`` / ``max_k`` narrow the grid (the CI smoke runs ``table2``
    on one circuit), ``jobs`` forces a worker count on every scenario,
    ``seed`` re-seeds fuzz units, and ``scenarios`` filters the scenario
    list by name.  ``warmup=False`` skips the throwaway warm-up solve
    (tests want that; real measurements do not).
    """
    if isinstance(suite, str):
        try:
            suite = get_suite(suite)
        except KeyError as exc:
            raise BenchError(str(exc.args[0])) from exc
    effective_circuits = tuple(circuits) if circuits is not None else suite.circuits
    effective_max_k = max_k if max_k is not None else suite.max_k
    selected = suite.scenarios
    if scenarios is not None:
        # Intersect rather than reject: one --scenarios filter is shared by
        # every suite of a run, and suites have different scenario sets.
        selected = tuple(s for s in suite.scenarios if s.name in set(scenarios))
        if not selected:
            raise BenchError(
                f"suite {suite.name!r}: none of the scenarios "
                f"{sorted(scenarios)} exist; available: "
                f"{list(suite.scenario_names())}")

    if warmup:
        _warmup(time_limit)

    results: dict[str, dict] = {}
    cache_dirs: dict[str, str] = {}
    with tempfile.TemporaryDirectory(prefix=f"bench-{suite.name}-") as tmp:
        for scenario in selected:
            _emit(progress, {"event": "scenario_started", "suite": suite.name,
                             "scenario": scenario.name})
            results[scenario.name] = _run_scenario(
                suite, scenario, effective_circuits, effective_max_k,
                time_limit, jobs, seed, Path(tmp), cache_dirs, progress)
            _emit(progress, {
                "event": "scenario_finished", "suite": suite.name,
                "scenario": scenario.name,
                "wall_seconds": results[scenario.name]["wall_seconds"],
            })

    baseline_name = (suite.baseline_scenario
                     if suite.baseline_scenario in results
                     else next(iter(results)))
    mismatches, unproven = _check_parity(results, baseline_name)
    baseline_wall = results[baseline_name]["wall_seconds"]
    speedups = {
        name: (round(baseline_wall / scenario["wall_seconds"], 3)
               if scenario["wall_seconds"] else None)
        for name, scenario in results.items()
    }
    return {
        "suite": suite.name,
        "description": suite.description,
        "config": {
            "circuits": list(effective_circuits),
            "max_k": effective_max_k,
            "job_kinds": list(suite.job_kinds),
            "baseline_scenario": baseline_name,
        },
        "parity_ok": not mismatches,
        "parity_mismatches": mismatches,
        "unproven_entries": unproven,
        "speedups": speedups,
        "scenarios": results,
    }


def run_suites(names: Sequence[str | BenchSuite], *,
               circuits: Sequence[str] | None = None, max_k: int | None = None,
               time_limit: float = 120.0, jobs: int | None = None,
               seed: int | None = None, scenarios: Sequence[str] | None = None,
               warmup: bool = True,
               progress: ProgressCallback | None = None) -> dict:
    """Run several suites and wrap them into one validated schema-2 report.

    The report is the document ``repro bench run`` writes; it always
    passes :func:`repro.bench.schema.validate_report` before it is
    returned, so a malformed report cannot reach disk.
    """
    if not names:
        raise BenchError("run_suites() needs at least one suite name")
    suite_reports: dict[str, dict] = {}
    for index, name in enumerate(names):
        block = run_suite(
            name, circuits=circuits, max_k=max_k, time_limit=time_limit,
            jobs=jobs, seed=seed, scenarios=scenarios,
            warmup=warmup and index == 0, progress=progress)
        suite_reports[block["suite"]] = block
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "repro.bench",
        "created_at": utc_timestamp(),
        "environment": environment_fingerprint(),
        "config": {
            "circuits": list(circuits) if circuits is not None else None,
            "max_k": max_k,
            "time_limit": time_limit,
            "jobs": jobs,
            "seed": seed,
            "warmup": warmup,
        },
        "parity_ok": all(block["parity_ok"] for block in suite_reports.values()),
        "suites": suite_reports,
    }
    return dict(validate_report(report))
