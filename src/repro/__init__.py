"""repro — ILP-based built-in self-testable data path synthesis.

A from-scratch reproduction of *"On ILP Formulations for Built-In
Self-Testable Data Path Synthesis"* (Kim, Ha, Takahashi — DAC 1999): the
ADVBIST integer linear program that performs system register assignment,
BIST register assignment and interconnection assignment concurrently, plus
every substrate it needs (DFGs, a small HLS front end, an ILP toolkit, the
transistor cost model) and the three heuristic baselines it is compared
against (ADVAN, RALLOC, BITS).

Quick start::

    from repro import get_circuit, synthesize_bist, synthesize_reference

    graph = get_circuit("tseng")
    reference = synthesize_reference(graph)
    design = synthesize_bist(graph, k=3)
    print(design.table3_row(reference.area().total))
"""

from .dfg import (
    Constant,
    DataFlowGraph,
    DFGBuilder,
    DfgVariable,
    Operation,
    horizontal_crossings,
    minimum_module_counts,
    minimum_register_count,
    variable_lifetimes,
)
from .hls import (
    ModuleBinding,
    RegisterBinding,
    alap_schedule,
    asap_schedule,
    bind_modules,
    coloring_binding,
    left_edge_binding,
    list_schedule,
)
from .datapath import (
    Datapath,
    TestPlan,
    TestRegisterKind,
    verify_bist_plan,
)
from .cost import (
    AreaBreakdown,
    CostModel,
    PAPER_COST_MODEL,
    area_overhead,
    datapath_area,
)
from .core import (
    AdvBistFormulation,
    AdvBistSynthesizer,
    BistDesign,
    FormulationOptions,
    ReferenceDesign,
    ReferenceFormulation,
    SweepResult,
    synthesize_bist,
    synthesize_reference,
)
from .baselines import run_advan, run_bits, run_ralloc
from .circuits import get_circuit, get_spec, list_circuits
from .reporting import (
    compare_methods,
    extra_register_penalty,
    render_table1,
    render_table2,
    render_table3,
)

__version__ = "1.0.0"

__all__ = [
    # dfg
    "Constant", "DataFlowGraph", "DFGBuilder", "DfgVariable", "Operation",
    "horizontal_crossings", "minimum_module_counts", "minimum_register_count",
    "variable_lifetimes",
    # hls
    "ModuleBinding", "RegisterBinding", "alap_schedule", "asap_schedule",
    "bind_modules", "coloring_binding", "left_edge_binding", "list_schedule",
    # datapath
    "Datapath", "TestPlan", "TestRegisterKind", "verify_bist_plan",
    # cost
    "AreaBreakdown", "CostModel", "PAPER_COST_MODEL", "area_overhead", "datapath_area",
    # core
    "AdvBistFormulation", "AdvBistSynthesizer", "BistDesign", "FormulationOptions",
    "ReferenceDesign", "ReferenceFormulation", "SweepResult",
    "synthesize_bist", "synthesize_reference",
    # baselines
    "run_advan", "run_bits", "run_ralloc",
    # circuits
    "get_circuit", "get_spec", "list_circuits",
    # reporting
    "compare_methods", "extra_register_penalty",
    "render_table1", "render_table2", "render_table3",
    "__version__",
]
