"""repro — ILP-based built-in self-testable data path synthesis.

A from-scratch reproduction of *"On ILP Formulations for Built-In
Self-Testable Data Path Synthesis"* (Kim, Ha, Takahashi — DAC 1999): the
ADVBIST integer linear program that performs system register assignment,
BIST register assignment and interconnection assignment concurrently, plus
every substrate it needs (DFGs, a small HLS front end, an ILP toolkit, the
transistor cost model) and the three heuristic baselines it is compared
against (ADVAN, RALLOC, BITS).

Quick start (executable — the tier-1 suite runs this as a doctest):

    >>> from repro import get_circuit, synthesize_bist, synthesize_reference
    >>> graph = get_circuit("fig1")
    >>> reference = synthesize_reference(graph)
    >>> design = synthesize_bist(graph, k=2)
    >>> design.optimal and design.verify().ok
    True
    >>> design.overhead_vs(reference.area().total) >= 0.0
    True

Programmatic consumers should speak the :mod:`repro.api` façade: declarative
job specs in, JSON-serialisable result envelopes out, with one
:class:`Session` owning the backend, the on-disk design cache and the
worker pool (``jobs > 1`` keeps a persistent process pool warm across
jobs)::

    from repro import Session, SweepJob, render_table2

    with Session(jobs=4, cache_dir="/tmp/repro-cache") as session:
        envelope = session.run(SweepJob(circuit="tseng"))
    print(render_table2(envelope.payload["rows"], stats=True))

``repro serve`` exposes the same contract as a JSON-lines daemon over
stdin/stdout (see :mod:`repro.api.serve` for the wire protocol).
"""

from .dfg import (
    Constant,
    DataFlowGraph,
    DFGBuilder,
    DfgVariable,
    GeneratorConfig,
    Operation,
    generate_behavioral,
    generate_corpus,
    generate_scheduled,
    horizontal_crossings,
    minimum_module_counts,
    minimum_register_count,
    variable_lifetimes,
)
from .hls import (
    FrontEndResult,
    ModuleBinding,
    RegisterBinding,
    alap_schedule,
    asap_schedule,
    bind_modules,
    coloring_binding,
    elaborate,
    left_edge_binding,
    list_schedule,
)
from .datapath import (
    Datapath,
    TestPlan,
    TestRegisterKind,
    verify_bist_plan,
)
from .cost import (
    AreaBreakdown,
    CostModel,
    PAPER_COST_MODEL,
    area_overhead,
    datapath_area,
)
from .core import (
    AdvBistFormulation,
    AdvBistSynthesizer,
    BistDesign,
    DesignCache,
    FormulationOptions,
    ReferenceDesign,
    ReferenceFormulation,
    SweepEngine,
    SweepResult,
    SweepTask,
    synthesize_bist,
    synthesize_reference,
)
from .ilp import SolveStats, available_backend_names, list_backends, register_backend
from .accel import (
    PortfolioBackend,
    PresolveStats,
    PresolvedModel,
    presolve_form,
)
from .baselines import run_advan, run_bits, run_ralloc
from .circuits import (
    get_circuit,
    get_spec,
    list_circuits,
    load_circuit,
    register_graph,
    unregister_circuit,
)
from .api import (
    BaselineJob,
    BenchJob,
    CompareJob,
    FuzzJob,
    JobSpec,
    JobSpecError,
    ResultEnvelope,
    Session,
    SweepJob,
    SynthesizeJob,
    job_from_dict,
    job_from_json,
)
from .bench import (
    BenchSuite,
    compare_reports,
    get_suite,
    list_suites,
    run_suite,
    run_suites,
)
from .fuzzing import FuzzReport, ParityCase, check_parity, run_fuzz
from .reporting import (
    compare_methods,
    extra_register_penalty,
    render_backends,
    render_fuzz_report,
    render_table1,
    render_table2,
    render_table3,
)

__version__ = "1.0.0"

__all__ = [
    # dfg
    "Constant", "DataFlowGraph", "DFGBuilder", "DfgVariable", "GeneratorConfig",
    "Operation", "generate_behavioral", "generate_corpus", "generate_scheduled",
    "horizontal_crossings", "minimum_module_counts", "minimum_register_count",
    "variable_lifetimes",
    # hls
    "FrontEndResult", "ModuleBinding", "RegisterBinding", "alap_schedule",
    "asap_schedule", "bind_modules", "coloring_binding", "elaborate",
    "left_edge_binding", "list_schedule",
    # datapath
    "Datapath", "TestPlan", "TestRegisterKind", "verify_bist_plan",
    # cost
    "AreaBreakdown", "CostModel", "PAPER_COST_MODEL", "area_overhead", "datapath_area",
    # core
    "AdvBistFormulation", "AdvBistSynthesizer", "BistDesign", "DesignCache",
    "FormulationOptions", "ReferenceDesign", "ReferenceFormulation",
    "SweepEngine", "SweepResult", "SweepTask",
    "synthesize_bist", "synthesize_reference",
    # ilp
    "SolveStats", "available_backend_names", "list_backends", "register_backend",
    # accel
    "PortfolioBackend", "PresolveStats", "PresolvedModel", "presolve_form",
    # baselines
    "run_advan", "run_bits", "run_ralloc",
    # circuits
    "get_circuit", "get_spec", "list_circuits",
    "load_circuit", "register_graph", "unregister_circuit",
    # api façade
    "BaselineJob", "BenchJob", "CompareJob", "FuzzJob", "JobSpec",
    "JobSpecError", "ResultEnvelope", "Session", "SweepJob", "SynthesizeJob",
    "job_from_dict", "job_from_json",
    # bench subsystem
    "BenchSuite", "compare_reports", "get_suite", "list_suites",
    "run_suite", "run_suites",
    # fuzzing
    "FuzzReport", "ParityCase", "check_parity", "run_fuzz",
    # reporting
    "compare_methods", "extra_register_penalty",
    "render_backends", "render_fuzz_report",
    "render_table1", "render_table2", "render_table3",
    "__version__",
]
