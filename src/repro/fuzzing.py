"""Random-DFG fuzzing: cross-check the ILP backends against each other.

The repository deliberately ships two independent exact MILP backends
(scipy/HiGHS and the pure-Python branch and bound).  On any input where both
prove optimality they must agree on the objective — any divergence is a bug
in a backend, the sparse lowering, or the formulation.  This module turns
that invariant into a fuzzing harness over the random circuit corpus of
:mod:`repro.dfg.generate`:

* :func:`check_parity` — solve one circuit's ILP with both backends and
  compare (the reference formulation by default; ``formulation="advbist"``
  cross-checks the full BIST ILP, which is much slower for the pure-Python
  solver);
* :func:`run_fuzz` — sweep ``count`` seeded random circuits, collect
  :class:`ParityCase` records, and write each failing circuit to disk as a
  replayable JSON file (``repro synth`` accepts it directly).

``repro fuzz`` is a thin CLI wrapper over :func:`run_fuzz`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from .core.formulation import AdvBistFormulation
from .core.reference import ReferenceFormulation
from .cost.transistors import CostModel, PAPER_COST_MODEL
from .dfg.generate import GeneratorConfig, generate_corpus
from .dfg.graph import DataFlowGraph
from .dfg.textio import to_dict as graph_to_dict

#: Objective agreement tolerance: the objectives are sums of integer
#: transistor counts, so anything beyond numerical noise is a real bug.
PARITY_TOL = 1e-6

DEFAULT_BACKENDS = ("scipy", "bnb")

#: Formulations the parity check can target.
FORMULATIONS = ("reference", "advbist")


@dataclass
class BackendRun:
    """One backend's outcome on one circuit."""

    backend: str
    status: str
    objective: float | None
    optimal: bool
    wall_seconds: float


@dataclass
class ParityCase:
    """Cross-check record of one fuzzed circuit."""

    circuit: str
    seed: int
    k: int | None
    graph: DataFlowGraph
    formulation: str = "reference"
    runs: list[BackendRun] = field(default_factory=list)
    failure_path: Path | None = None

    @property
    def objectives(self) -> dict[str, float | None]:
        return {run.backend: run.objective for run in self.runs}

    @property
    def conclusive_runs(self) -> list[BackendRun]:
        """Runs that *proved* something: an optimum or infeasibility.

        A run stopped by a time/node limit proved nothing and cannot be held
        against the other backend — its incumbent (if any) is legitimately
        allowed to differ from the true optimum.
        """
        return [run for run in self.runs
                if run.optimal or run.status == "infeasible"]

    @property
    def ok(self) -> bool:
        """Whether the backends agree on this circuit.

        The invariant is over *proofs*: every backend that reached a
        conclusive verdict (proven optimum or proven infeasibility) must
        agree with every other conclusive backend — same verdict, and same
        objective within :data:`PARITY_TOL`.  Inconclusive runs (limit hits)
        are not held to optimality — a worse incumbent is legitimate — but
        both formulations *minimise*, so any incumbent strictly better than
        a proven optimum disproves that proof and is a failure.
        """
        conclusive = self.conclusive_runs
        solved = [run.objective for run in conclusive if run.optimal]
        if solved and len(solved) != len(conclusive):
            return False  # one backend proved an optimum, another proved infeasible
        if not solved:
            return True  # uniformly infeasible (or nothing conclusive) is agreement
        tol = PARITY_TOL * max(1.0, abs(solved[0]))
        if max(solved) - min(solved) > tol:
            return False
        proven = min(solved)
        return all(run.objective >= proven - tol
                   for run in self.runs if run.objective is not None)

    def as_row(self) -> dict:
        """Flat dict for the fuzz report table."""
        row = {
            "circuit": self.circuit,
            "seed": self.seed,
            "ops": len(self.graph),
            "modules": len(self.graph.module_ids),
            "form": self.formulation,
            "k": "-" if self.k is None else self.k,
        }
        for run in self.runs:
            row[run.backend] = "-" if run.objective is None else run.objective
        if not self.ok:
            row["parity"] = "FAIL"
        elif len(self.conclusive_runs) < 2:
            row["parity"] = "n/a"  # a limit hit left nothing to cross-check
        else:
            row["parity"] = "ok"
        row["wall_s"] = round(sum(run.wall_seconds for run in self.runs), 3)
        return row


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    cases: list[ParityCase] = field(default_factory=list)

    @property
    def failures(self) -> list[ParityCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def rows(self) -> list[dict]:
        return [case.as_row() for case in self.cases]


def check_parity(
    graph: DataFlowGraph,
    formulation: str = "reference",
    k: int | None = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    cost_model: CostModel = PAPER_COST_MODEL,
    time_limit: float | None = None,
    seed: int = -1,
) -> ParityCase:
    """Solve one circuit's ILP with every backend and compare objectives.

    ``formulation`` selects the model: ``"reference"`` (register +
    interconnect assignment; small, the fuzzing default) or ``"advbist"``
    (the full BIST ILP for ``k`` test sessions; a much deeper exercise of
    the lowering but orders of magnitude slower for the pure-Python branch
    and bound).
    """
    if formulation not in FORMULATIONS:
        raise ValueError(f"unknown formulation {formulation!r}; "
                         f"expected one of {FORMULATIONS}")
    sessions: int | None = None
    if formulation == "advbist":
        sessions = k if k is not None else len(graph.module_ids)
    case = ParityCase(circuit=graph.name, seed=seed, k=sessions, graph=graph,
                      formulation=formulation)
    for backend in backends:
        if formulation == "advbist":
            model = AdvBistFormulation(graph, sessions, cost_model)
        else:
            model = ReferenceFormulation(graph, cost_model)
        result = model.solve(backend=backend, time_limit=time_limit)
        solution = result.solution
        case.runs.append(BackendRun(
            backend=backend,
            status=solution.status.value,
            objective=(None if solution.objective is None
                       else float(solution.objective)),
            optimal=solution.proven_optimal,
            wall_seconds=solution.solve_seconds,
        ))
    return case


def failure_payload(case: ParityCase) -> dict:
    """Replayable JSON description of a failing parity case."""
    return {
        "schema": 1,
        "kind": "repro-fuzz-failure",
        "seed": case.seed,
        "formulation": case.formulation,
        "k": case.k,
        "runs": [
            {"backend": run.backend, "status": run.status,
             "objective": run.objective, "optimal": run.optimal}
            for run in case.runs
        ],
        "graph": graph_to_dict(case.graph),
    }


def run_fuzz(
    count: int,
    seed: int | None = None,
    config: GeneratorConfig | None = None,
    formulation: str = "reference",
    k: int | None = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    cost_model: CostModel = PAPER_COST_MODEL,
    time_limit: float | None = None,
    failure_dir: str | Path | None = None,
    **config_overrides,
) -> FuzzReport:
    """Fuzz ``count`` random circuits, checking backend parity on each.

    Circuit ``i`` is generated from seed ``base + i`` where ``base`` is
    ``seed`` when given, else the config's seed (see
    :func:`repro.dfg.generate.generate_corpus`); a failing case is written to
    ``failure_dir/<circuit>.json`` in a format :func:`repro.circuits.load_circuit`
    and ``repro synth`` replay directly.

    This is the execution body of :class:`repro.api.FuzzJob`: front ends
    submit a spec to a :class:`repro.api.Session` (which supplies its cost
    model and time-limit defaults) rather than calling this directly.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = replace(config or GeneratorConfig(), **config_overrides)
    if seed is not None:
        base = replace(base, seed=seed)
    report = FuzzReport()
    for i, graph in enumerate(generate_corpus(count, base)):
        case_seed = base.seed + i
        case = check_parity(graph, formulation=formulation, k=k,
                            backends=backends, cost_model=cost_model,
                            time_limit=time_limit, seed=case_seed)
        if not case.ok and failure_dir is not None:
            directory = Path(failure_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{graph.name}.json"
            path.write_text(json.dumps(failure_payload(case), indent=2,
                                       sort_keys=True),
                            encoding="utf-8")
            case.failure_path = path
        report.cases.append(case)
    return report
