"""ADVAN — test-session-oriented BIST synthesis (Kim, Takahashi, Ha, ITC 1998).

ADVAN is the authors' own earlier heuristic, used in the paper as the closest
baseline.  Its published characteristics, which this reimplementation keeps:

* **signature registers are allocated first**, so the circuit is guaranteed
  testable in the requested number of test sessions;
* it never adds registers beyond the minimum, and it avoids BILBO and CBILBO
  reconfigurations altogether (Table 3 shows B = C = 0 for ADVAN on every
  circuit) by keeping the TPG and SR register sets disjoint;
* register binding is testability-aware but performed *before* the test
  register selection, so the interconnect (and hence multiplexer area) ends
  up larger than ADVBIST's concurrent optimum.

The register binding below is a left-edge allocation whose tie-break avoids
self-adjacent registers (an operation's input and output sharing a register),
which is the structural cause of CBILBOs.
"""

from __future__ import annotations

import time

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.datapath import Datapath
from ..dfg.analysis import variable_lifetimes
from ..dfg.graph import DataFlowGraph
from ..core.result import BistDesign
from .common import (
    TestAssignmentPolicy,
    assign_sessions,
    constant_ports_of,
    finish_design,
    greedy_test_assignment,
)

#: ADVAN's selection preferences: no reuse pressure (TPGs and SRs stay on
#: separate registers), BILBO strongly discouraged, CBILBO practically banned.
ADVAN_POLICY = TestAssignmentPolicy(
    reuse_bonus=0.0,
    bilbo_penalty=50.0,
    cbilbo_penalty=500.0,
    fanout_penalty=0.05,
)


def advan_register_binding(graph: DataFlowGraph,
                           primary_input_policy: str = "at_first_use") -> dict[int, int]:
    """Left-edge register binding with a self-adjacency-avoiding tie-break.

    Variables are processed in order of birth; each goes to a free register,
    preferring registers that do not already hold an input (respectively the
    output) of the producing (respectively consuming) operations — i.e. the
    assignment steers away from self-adjacent registers without ever needing
    an extra register.
    """
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    order = sorted(lifetimes, key=lambda v: (lifetimes[v].birth, lifetimes[v].death, v))

    # Variables that must not share a register with v to avoid self-adjacency.
    adversaries: dict[int, set[int]] = {v: set() for v in graph.variable_ids}
    for op in graph.operations.values():
        for _port, var_id in op.variable_inputs:
            adversaries[var_id].add(op.output)
            adversaries[op.output].add(var_id)

    register_members: list[list[int]] = []
    register_last_death: list[int] = []
    assignment: dict[int, int] = {}
    for var_id in order:
        lifetime = lifetimes[var_id]
        free = [reg for reg, last in enumerate(register_last_death) if last < lifetime.birth]
        if free:
            def adjacency_cost(reg: int) -> tuple[int, int, int]:
                clashes = sum(1 for member in register_members[reg]
                              if member in adversaries[var_id])
                return (clashes, len(register_members[reg]), reg)

            chosen = min(free, key=adjacency_cost)
        else:
            chosen = len(register_last_death)
            register_last_death.append(-1)
            register_members.append([])
        assignment[var_id] = chosen
        register_last_death[chosen] = lifetime.death
        register_members[chosen].append(var_id)
    return assignment


def run_advan(
    graph: DataFlowGraph,
    k: int | None = None,
    cost_model: CostModel = PAPER_COST_MODEL,
) -> BistDesign:
    """Synthesize a BIST data path with the ADVAN heuristic.

    Parameters
    ----------
    graph:
        Scheduled and module-bound DFG (the same input ADVBIST takes).
    k:
        Number of test sessions; defaults to the number of modules (the
        maximal-session configuration reported in Table 3).
    """
    start = time.perf_counter()
    modules = graph.module_ids
    sessions = assign_sessions(modules, k if k is not None else len(modules))

    assignment = advan_register_binding(graph)
    datapath = Datapath.from_bindings(graph, assignment, name=f"{graph.name}_advan")

    plan = greedy_test_assignment(
        datapath,
        sessions,
        ADVAN_POLICY,
        constant_tpg_ports=constant_ports_of(graph),
    )
    return finish_design(
        "ADVAN", graph, datapath, plan, cost_model,
        solve_seconds=time.perf_counter() - start,
        notes={"register_binding": "left-edge, self-adjacency avoiding"},
    )
