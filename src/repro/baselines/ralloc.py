"""RALLOC — Avra's register-conflict-graph allocation for self-testable
data paths (ITC 1991).

Avra's method augments the ordinary lifetime conflict graph with *test
conflicts*: the input and output variables of an operation are declared in
conflict so that no register becomes self-adjacent (which would require a
CBILBO).  The augmented graph is then coloured; because the extra edges can
push the chromatic number above the maximal horizontal crossing, RALLOC
sometimes needs **one more register** than the minimum — exactly what the
paper observes for fir6, iir3 and wavelet6 in Table 3.

For the test-register selection RALLOC concentrates the test function in a
small number of registers reconfigured as BILBOs (Table 3 shows mostly one
TPG plus two or three BILBOs), which this reimplementation reproduces with a
strongly reuse-oriented greedy policy.
"""

from __future__ import annotations

import time

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.datapath import Datapath
from ..dfg.graph import DataFlowGraph
from ..dfg.analysis import self_adjacency_candidates
from ..hls.register_binding import coloring_binding
from ..core.result import BistDesign
from .common import (
    TestAssignmentPolicy,
    assign_sessions,
    constant_ports_of,
    finish_design,
    greedy_test_assignment,
)

#: RALLOC's selection preferences: strong reuse of already-chosen test
#: registers (which is what creates BILBOs), CBILBO still avoided because the
#: conflict-graph colouring has already removed self-adjacency.
RALLOC_POLICY = TestAssignmentPolicy(
    reuse_bonus=25.0,
    bilbo_penalty=5.0,
    cbilbo_penalty=500.0,
    fanout_penalty=0.05,
)


def ralloc_register_binding(graph: DataFlowGraph,
                            primary_input_policy: str = "at_first_use") -> dict[int, int]:
    """Colour the lifetime conflict graph augmented with self-adjacency edges."""
    extra_conflicts = self_adjacency_candidates(graph)
    binding = coloring_binding(
        graph,
        extra_conflicts=extra_conflicts,
        primary_input_policy=primary_input_policy,
    )
    return binding.assignment


def run_ralloc(
    graph: DataFlowGraph,
    k: int | None = None,
    cost_model: CostModel = PAPER_COST_MODEL,
) -> BistDesign:
    """Synthesize a BIST data path with the RALLOC (Avra) heuristic."""
    start = time.perf_counter()
    modules = graph.module_ids
    sessions = assign_sessions(modules, k if k is not None else len(modules))

    assignment = ralloc_register_binding(graph)
    datapath = Datapath.from_bindings(graph, assignment, name=f"{graph.name}_ralloc")

    plan = greedy_test_assignment(
        datapath,
        sessions,
        RALLOC_POLICY,
        constant_tpg_ports=constant_ports_of(graph),
    )
    extra_registers = len(datapath.register_ids)
    return finish_design(
        "RALLOC", graph, datapath, plan, cost_model,
        solve_seconds=time.perf_counter() - start,
        notes={
            "register_binding": "conflict-graph colouring with self-adjacency edges",
            "registers_used": extra_registers,
        },
    )
