"""Shared machinery of the heuristic baseline BIST synthesis systems.

The three baselines the paper compares against (ADVAN, RALLOC, BITS) all
follow the same two-phase recipe — first bind registers conventionally, then
pick test registers greedily — and differ in the register binding they start
from and in the *preferences* their greedy test-register selection applies.
:func:`greedy_test_assignment` implements that greedy selection once, driven
by a :class:`TestAssignmentPolicy`, so each baseline module only encodes its
published decision rules.

All baselines obey the same hard rules as ADVBIST (checked afterwards by
:func:`repro.datapath.verify.verify_bist_plan`): test registers are
reconfigured system registers, no test-only paths are added, every module
gets one SR, every port one TPG, and sharing restrictions per sub-test
session hold.  What they lack is ADVBIST's *concurrent* optimisation — their
register assignment is frozen before any test decision is made — which is
exactly why the ILP beats them on area overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.bist import TestPlan
from ..datapath.components import TestRegisterKind
from ..datapath.datapath import Datapath
from ..dfg.graph import DataFlowGraph
from ..core.constants import analyse_constant_ports
from ..core.result import BistDesign


class BaselineError(RuntimeError):
    """Raised when a heuristic baseline cannot complete a test plan."""


@dataclass(frozen=True)
class TestAssignmentPolicy:
    """Scoring weights of the greedy test-register selection.

    Lower scores are preferred.  All weights are additive penalties:

    Attributes
    ----------
    reuse_bonus:
        Subtracted when the candidate register is already a test register
        (sharing-oriented methods like BITS/RALLOC set this high; ADVAN sets
        it to zero to keep TPG and SR sets small and disjoint).
    bilbo_penalty:
        Added when picking the candidate would turn it into a BILBO
        (TPG in one session, SR in another).
    cbilbo_penalty:
        Added when picking the candidate would turn it into a CBILBO
        (TPG and SR in the same sub-test session).
    fanout_penalty:
        Per existing connection of the candidate register, discouraging
        loading heavily used registers (a mild proxy for mux growth).
    """

    reuse_bonus: float = 0.0
    bilbo_penalty: float = 10.0
    cbilbo_penalty: float = 100.0
    fanout_penalty: float = 0.1


def assign_sessions(modules: list[int], k: int) -> dict[int, int]:
    """Partition modules into k sub-test sessions (round robin, 1-based)."""
    if k < 1:
        raise BaselineError(f"cannot schedule tests into {k} sessions")
    return {module: (index % k) + 1 for index, module in enumerate(sorted(modules))}


def greedy_test_assignment(
    datapath: Datapath,
    module_session: dict[int, int],
    policy: TestAssignmentPolicy,
    constant_tpg_ports: list[tuple[int, int]] | None = None,
) -> TestPlan:
    """Greedily pick SRs and TPGs for a fixed data path and session partition.

    Signature registers are chosen first (module by module), then TPGs
    (port by port), mirroring the SR-first order of the ADVAN method that the
    other baselines also follow in spirit.  Candidate registers are scored by
    the policy and the cheapest is taken.
    """
    constant_ports = set(constant_tpg_ports or [])
    num_sessions = max(module_session.values(), default=1)
    plan = TestPlan(
        num_sessions=num_sessions,
        module_session=dict(module_session),
        constant_tpg_ports=sorted(constant_ports),
    )

    # --- helper state ----------------------------------------------------
    def roles_of(reg: int) -> tuple[set[int], set[int]]:
        return plan.tpg_sessions_of_register(reg), plan.sr_sessions_of_register(reg)

    def connection_count(reg: int) -> int:
        incoming = len(datapath.modules_driving_register(reg))
        outgoing = sum(
            1 for wire in datapath.register_wires if wire.register == reg
        )
        return incoming + outgoing

    def score(reg: int, session: int, as_sr: bool) -> float:
        tpg_sessions, sr_sessions = roles_of(reg)
        is_test_register = bool(tpg_sessions or sr_sessions)
        value = policy.fanout_penalty * connection_count(reg)
        if is_test_register:
            value -= policy.reuse_bonus
        if as_sr:
            would_cbilbo = session in tpg_sessions
            would_bilbo = bool(tpg_sessions) and not would_cbilbo
        else:
            would_cbilbo = session in sr_sessions
            would_bilbo = bool(sr_sessions) and not would_cbilbo
        if would_cbilbo:
            value += policy.cbilbo_penalty
        elif would_bilbo:
            value += policy.bilbo_penalty
        return value

    # --- signature registers ---------------------------------------------
    for module in sorted(module_session):
        session = module_session[module]
        taken = {
            plan.sr_of_module[other]
            for other, other_session in module_session.items()
            if other_session == session and other in plan.sr_of_module
        }
        candidates = [
            reg for reg in datapath.register_ids
            if datapath.has_module_to_register_wire(module, reg) and reg not in taken
        ]
        if not candidates:
            raise BaselineError(
                f"module {module} has no available signature register in session {session}"
            )
        best = min(candidates, key=lambda reg: (score(reg, session, as_sr=True), reg))
        plan.sr_of_module[module] = best

    # --- test pattern generators ------------------------------------------
    for module_obj in datapath.modules:
        module = module_obj.module_id
        session = module_session[module]
        used_for_this_module: set[int] = set()
        for port in module_obj.input_ports:
            if (module, port) in constant_ports:
                continue
            candidates = [
                reg for reg in datapath.registers_driving_port(module, port)
                if reg not in used_for_this_module
            ]
            if not candidates:
                raise BaselineError(
                    f"module {module} port {port} has no reachable TPG register"
                )
            best = min(candidates, key=lambda reg: (score(reg, session, as_sr=False), reg))
            plan.tpg_of_port[(module, port)] = best
            used_for_this_module.add(best)

    return plan


def finish_design(
    method: str,
    graph: DataFlowGraph,
    datapath: Datapath,
    plan: TestPlan,
    cost_model: CostModel = PAPER_COST_MODEL,
    solve_seconds: float = 0.0,
    notes: dict | None = None,
) -> BistDesign:
    """Wrap a heuristic result into a verified :class:`BistDesign`."""
    design = BistDesign(
        method=method,
        circuit=graph.name,
        k=plan.num_sessions,
        datapath=datapath,
        plan=plan,
        cost_model=cost_model,
        optimal=False,
        solve_seconds=solve_seconds,
        notes=notes or {},
    )
    report = design.verify()
    if not report.ok:
        raise BaselineError(
            f"{method} produced an invalid BIST plan: " + "; ".join(report.problems)
        )
    return design


def constant_ports_of(graph: DataFlowGraph) -> list[tuple[int, int]]:
    """Constant-only module ports (shared with the core's analysis)."""
    return list(analyse_constant_ports(graph).constant_only_ports)


def kind_histogram(design: BistDesign) -> dict[str, int]:
    """Readable register-kind histogram of a design (for reports and tests)."""
    counts = design.kind_counts()
    return {kind.name: counts.get(kind, 0) for kind in TestRegisterKind}
