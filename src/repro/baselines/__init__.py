"""Heuristic baseline BIST synthesis systems compared against ADVBIST.

* :func:`run_advan` — the authors' earlier test-session-oriented method [6];
* :func:`run_ralloc` — Avra's register-conflict-graph allocation [3];
* :func:`run_bits` — Parulkar et al.'s test-register-sharing method [4].

Each returns the same :class:`repro.core.result.BistDesign` type as ADVBIST so
that the Table 3 comparison handles all four systems uniformly.
"""

from .common import (
    BaselineError,
    TestAssignmentPolicy,
    assign_sessions,
    greedy_test_assignment,
    kind_histogram,
)
from .advan import ADVAN_POLICY, advan_register_binding, run_advan
from .ralloc import RALLOC_POLICY, ralloc_register_binding, run_ralloc
from .bits import BITS_POLICY, run_bits

#: The baseline methods in the column order of Table 3 — the single source of
#: truth for method names, shared by the sweep engine and the reporting layer.
BASELINE_RUNNERS = {
    "ADVAN": run_advan,
    "RALLOC": run_ralloc,
    "BITS": run_bits,
}

__all__ = [
    "BASELINE_RUNNERS",
    "BaselineError",
    "TestAssignmentPolicy",
    "assign_sessions",
    "greedy_test_assignment",
    "kind_histogram",
    "ADVAN_POLICY",
    "advan_register_binding",
    "run_advan",
    "RALLOC_POLICY",
    "ralloc_register_binding",
    "run_ralloc",
    "BITS_POLICY",
    "run_bits",
]
