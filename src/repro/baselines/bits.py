"""BITS — Parulkar, Gupta and Breuer's low-BIST-overhead allocation (DAC 1995).

The BITS method keeps a conventional (minimum-register) allocation and then
*maximises the sharing of test registers*: the same register should serve as
the pattern generator or signature analyser of as many modules as possible so
that few registers need test reconfiguration at all.  Sharing across modules
tested in different sessions turns those registers into BILBOs (and in the
paper's dct4 result even a CBILBO), and the heavy concentration of test
traffic on a few registers tends to enlarge the multiplexers in front of
them — both visible in Table 3.

The reimplementation uses:

* a plain left-edge register binding (test-oblivious, as published), and
* the shared greedy selection with a maximal ``reuse_bonus`` and only mild
  BILBO/CBILBO penalties, i.e. sharing is valued above avoiding expensive
  register types — the defining trade-off of BITS.
"""

from __future__ import annotations

import time

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.datapath import Datapath
from ..dfg.graph import DataFlowGraph
from ..hls.register_binding import left_edge_binding
from ..core.result import BistDesign
from .common import (
    TestAssignmentPolicy,
    assign_sessions,
    constant_ports_of,
    finish_design,
    greedy_test_assignment,
)

#: BITS preferences: sharing dominates everything except outright CBILBO,
#: which is tolerated only when no sharing-preserving alternative exists.
BITS_POLICY = TestAssignmentPolicy(
    reuse_bonus=40.0,
    bilbo_penalty=8.0,
    cbilbo_penalty=60.0,
    fanout_penalty=0.02,
)


def run_bits(
    graph: DataFlowGraph,
    k: int | None = None,
    cost_model: CostModel = PAPER_COST_MODEL,
) -> BistDesign:
    """Synthesize a BIST data path with the BITS (Parulkar et al.) heuristic."""
    start = time.perf_counter()
    modules = graph.module_ids
    sessions = assign_sessions(modules, k if k is not None else len(modules))

    assignment = left_edge_binding(graph).assignment
    datapath = Datapath.from_bindings(graph, assignment, name=f"{graph.name}_bits")

    plan = greedy_test_assignment(
        datapath,
        sessions,
        BITS_POLICY,
        constant_tpg_ports=constant_ports_of(graph),
    )
    return finish_design(
        "BITS", graph, datapath, plan, cost_model,
        solve_seconds=time.perf_counter() - start,
        notes={"register_binding": "left-edge (test oblivious)"},
    )
