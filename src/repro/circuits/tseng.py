"""The ``tseng`` benchmark (Tseng / Siewiorek "facet" example).

``tseng`` is one of the two classic high-level-synthesis benchmarks the paper
uses ("widely adopted for benchmarking high-level BIST synthesis").  The
exact scheduled DFG the authors obtained is not published, so this module
reconstructs the well-known facet structure — a small mixed arithmetic/logic
graph using an ALU, a multiplier and a logic unit — and schedules it with the
package's own list scheduler under a one-unit-per-class budget, which yields
three functional modules (and therefore up to three test sessions, matching
the "tseng (3)" entry of Table 3).
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: One ALU, one multiplier and one logic unit: three modules, as in Table 3.
RESOURCE_LIMITS = {"alu": 1, "mult": 1, "logic": 1}


def build_behavioral() -> DataFlowGraph:
    """The unscheduled facet-style DFG."""
    builder = DFGBuilder("tseng")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    d = builder.input("d")
    e = builder.input("e")
    f = builder.input("f")

    t1 = builder.op("add", a, b, name="t1")
    t2 = builder.op("mul", c, d, name="t2")
    t3 = builder.op("and", e, f, name="t3")
    t4 = builder.op("sub", t1, e, name="t4")
    t5 = builder.op("mul", t2, t1, name="t5")
    t6 = builder.op("or", t3, t2, name="t6")
    t7 = builder.op("add", t4, t6, name="t7")
    t8 = builder.op("mul", t5, t7, name="t8")
    builder.output(t8)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``tseng`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
