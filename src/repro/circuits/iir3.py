"""The ``iir3`` benchmark: a 3rd-order IIR filter (direct form II).

The recurrence is::

    w[n] = x[n] - a1*w[n-1] - a2*w[n-2] - a3*w[n-3]
    y[n] = b0*w[n] + b1*w[n-1] + b2*w[n-2] + b3*w[n-3]

The delayed state values ``w[n-1..3]`` and the filter coefficients enter as
primary inputs.  One multiplier pair and a single ALU handling the adds and
subtracts give three functional modules ("iir3 (3)" in Table 3); additions and
subtractions share the ALU class as they would share an add/sub unit.
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Two multipliers and one add/sub ALU: three modules, as in Table 3.
RESOURCE_LIMITS = {"mult": 2, "alu": 1}


def build_behavioral() -> DataFlowGraph:
    """The unscheduled 3rd-order IIR DFG."""
    builder = DFGBuilder("iir3")
    x = builder.input("x")
    w1 = builder.input("w1")
    w2 = builder.input("w2")
    w3 = builder.input("w3")
    a1 = builder.input("a1")
    a2 = builder.input("a2")
    a3 = builder.input("a3")
    b0 = builder.input("b0")
    b1 = builder.input("b1")
    b2 = builder.input("b2")
    b3 = builder.input("b3")

    # feedback path: w[n]
    fb1 = builder.op("mul", a1, w1, name="a1w1")
    fb2 = builder.op("mul", a2, w2, name="a2w2")
    fb3 = builder.op("mul", a3, w3, name="a3w3")
    d1 = builder.op("sub", x, fb1, name="d1")
    d2 = builder.op("sub", d1, fb2, name="d2")
    w0 = builder.op("sub", d2, fb3, name="w0")

    # feedforward path: y[n]
    ff0 = builder.op("mul", b0, w0, name="b0w0")
    ff1 = builder.op("mul", b1, w1, name="b1w1")
    ff2 = builder.op("mul", b2, w2, name="b2w2")
    ff3 = builder.op("mul", b3, w3, name="b3w3")
    s1 = builder.op("add", ff0, ff1, name="s1")
    s2 = builder.op("add", ff2, ff3, name="s2")
    y = builder.op("add", s1, s2, name="y")
    builder.output(w0)
    builder.output(y)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``iir3`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
