"""Benchmark circuits of the paper's evaluation (plus the Fig. 1 example)."""

from . import dct4, fig1, fir6, iir3, paulin, tseng, wavelet6
from .registry import CircuitSpec, get_circuit, get_spec, list_circuits

__all__ = [
    "CircuitSpec",
    "get_circuit",
    "get_spec",
    "list_circuits",
    "dct4",
    "fig1",
    "fir6",
    "iir3",
    "paulin",
    "tseng",
    "wavelet6",
]
