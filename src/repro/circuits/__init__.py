"""Benchmark circuits of the paper's evaluation (plus the Fig. 1 example)."""

from . import dct4, fig1, fir6, iir3, paulin, tseng, wavelet6
from .registry import (
    BUILTIN_CIRCUITS,
    CircuitSpec,
    get_circuit,
    get_spec,
    list_circuits,
    load_circuit,
    load_front,
    register_graph,
    unregister_circuit,
)

__all__ = [
    "BUILTIN_CIRCUITS",
    "CircuitSpec",
    "get_circuit",
    "get_spec",
    "list_circuits",
    "load_circuit",
    "load_front",
    "register_graph",
    "unregister_circuit",
    "dct4",
    "fig1",
    "fir6",
    "iir3",
    "paulin",
    "tseng",
    "wavelet6",
]
