"""The running example of the paper (Fig. 1).

A four-operation DFG (two additions, two multiplications) over eight
variables, scheduled into the control steps T = {0, 1, 2, 3} and bound to one
adder and one multiplier.  Its minimal data path has three registers — the
structure shown in Fig. 1(b) — and it is the circuit used by Figs. 2 and 3 to
illustrate the SR and TPG assignment constraints.
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Functional-unit budget used to schedule the example (one adder, one
#: multiplier, exactly as in Fig. 1(b)).
RESOURCE_LIMITS = {"alu": 1, "mult": 1}


def build_behavioral() -> DataFlowGraph:
    """The unscheduled DFG of Fig. 1(a)."""
    builder = DFGBuilder("fig1")
    v0 = builder.input("v0")
    v1 = builder.input("v1")
    v2 = builder.input("v2")
    v3 = builder.input("v3")
    v4 = builder.op("add", v0, v1, name="v4")    # operation 8 in the paper
    v5 = builder.op("add", v3, v4, name="v5")    # operation 9
    v6 = builder.op("mul", v4, v2, name="v6")    # operation 10
    v7 = builder.op("mul", v5, v6, name="v7")    # operation 11
    builder.output(v7)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound DFG (the input the ILP formulations take)."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
