"""The ``dct4`` benchmark: a 4-point discrete cosine transform.

The fast (butterfly) 4-point DCT factorisation is used::

    s0 = x0 + x3        d0 = x0 - x3
    s1 = x1 + x2        d1 = x1 - x2
    y0 = (s0 + s1) * c4
    y2 = (s0 - s1) * c4
    y1 = d0*c2 + d1*c6
    y3 = d0*c6 - d1*c2

The cosine coefficients enter as primary inputs.  Two multipliers, one adder
and one subtractor give four functional modules ("dct4 (4)" in Table 3); it
is the largest ILP instance of the suite, which is why the paper's Table 2
marks its entries as hitting the CPU-time limit.
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Two multipliers, one adder, one subtractor: four modules, as in Table 3.
RESOURCE_LIMITS = {"mult": 2, "alu": 1, "subtract": 1}


def build_behavioral() -> DataFlowGraph:
    """The unscheduled 4-point DCT DFG."""
    builder = DFGBuilder("dct4")
    x0 = builder.input("x0")
    x1 = builder.input("x1")
    x2 = builder.input("x2")
    x3 = builder.input("x3")
    c4 = builder.input("c4")
    c2 = builder.input("c2")
    c6 = builder.input("c6")

    s0 = builder.op("add", x0, x3, name="s0")
    s1 = builder.op("add", x1, x2, name="s1")
    d0 = builder.op("subtract", x0, x3, name="d0")
    d1 = builder.op("subtract", x1, x2, name="d1")

    e0 = builder.op("add", s0, s1, name="e0")
    e1 = builder.op("subtract", s0, s1, name="e1")
    y0 = builder.op("mul", e0, c4, name="y0")
    y2 = builder.op("mul", e1, c4, name="y2")

    m0 = builder.op("mul", d0, c2, name="d0c2")
    m1 = builder.op("mul", d1, c6, name="d1c6")
    m2 = builder.op("mul", d0, c6, name="d0c6")
    m3 = builder.op("mul", d1, c2, name="d1c2")
    y1 = builder.op("add", m0, m1, name="y1")
    y3 = builder.op("subtract", m2, m3, name="y3")

    builder.output(y0)
    builder.output(y1)
    builder.output(y2)
    builder.output(y3)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``dct4`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
