"""Registry of the circuits available to the synthesizers.

Every entry produces a scheduled, module-bound :class:`DataFlowGraph` ready
for the ADVBIST / baseline synthesizers.  The registry also records, for each
circuit, the maximal number of test sessions (its module count as listed in
parentheses in Table 3) so the benchmark harness can sweep the same k range
as the paper.

Beyond the seven static benchmark circuits, the registry is *open*: user
circuits can be registered at runtime — either from an in-memory graph
(:func:`register_graph`) or straight from a ``repro.dfg.textio`` JSON file
(:func:`load_circuit`, the substrate of ``repro synth``).  Behavioural
graphs are elaborated through the HLS front end on the way in, so a
registered circuit is always synthesizer-ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from functools import partial

from ..dfg.graph import DataFlowGraph, DFGError
from ..dfg import textio
from . import dct4, fig1, fir6, generated, iir3, paulin, tseng, wavelet6


@dataclass(frozen=True)
class CircuitSpec:
    """Metadata of one benchmark circuit."""

    name: str
    description: str
    builder: Callable[[], DataFlowGraph]
    behavioral_builder: Callable[[], DataFlowGraph]
    resource_limits: dict
    paper_max_sessions: int | None
    in_paper_table: bool

    def build(self) -> DataFlowGraph:
        """Build the scheduled, module-bound DFG."""
        return self.builder()

    def build_behavioral(self) -> DataFlowGraph:
        """Build the unscheduled behavioural DFG."""
        return self.behavioral_builder()


_REGISTRY: dict[str, CircuitSpec] = {
    "fig1": CircuitSpec(
        name="fig1",
        description="Running example of the paper (Fig. 1): 4 operations, 3 registers",
        builder=fig1.build,
        behavioral_builder=fig1.build_behavioral,
        resource_limits=dict(fig1.RESOURCE_LIMITS),
        paper_max_sessions=2,
        in_paper_table=False,
    ),
    "tseng": CircuitSpec(
        name="tseng",
        description="Tseng/facet benchmark (Table 3 row 'tseng (3)')",
        builder=tseng.build,
        behavioral_builder=tseng.build_behavioral,
        resource_limits=dict(tseng.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "paulin": CircuitSpec(
        name="paulin",
        description="Paulin/diffeq benchmark (Table 3 row 'paulin (4)')",
        builder=paulin.build,
        behavioral_builder=paulin.build_behavioral,
        resource_limits=dict(paulin.RESOURCE_LIMITS),
        paper_max_sessions=4,
        in_paper_table=True,
    ),
    "fir6": CircuitSpec(
        name="fir6",
        description="6th-order FIR filter (Table 3 row 'fir6 (3)')",
        builder=fir6.build,
        behavioral_builder=fir6.build_behavioral,
        resource_limits=dict(fir6.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "iir3": CircuitSpec(
        name="iir3",
        description="3rd-order IIR filter (Table 3 row 'iir3 (3)')",
        builder=iir3.build,
        behavioral_builder=iir3.build_behavioral,
        resource_limits=dict(iir3.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "dct4": CircuitSpec(
        name="dct4",
        description="4-point DCT (Table 3 row 'dct4 (4)')",
        builder=dct4.build,
        behavioral_builder=dct4.build_behavioral,
        resource_limits=dict(dct4.RESOURCE_LIMITS),
        paper_max_sessions=4,
        in_paper_table=True,
    ),
    "wavelet6": CircuitSpec(
        name="wavelet6",
        description="6-tap wavelet filter (Table 3 row 'wavelet6 (3)')",
        builder=wavelet6.build,
        behavioral_builder=wavelet6.build_behavioral,
        resource_limits=dict(wavelet6.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
}

# The frozen fuzz-generator regression workloads (100+ operations each) —
# deterministic draws of repro.dfg.generate, see repro.circuits.generated.
_REGISTRY.update({
    name: CircuitSpec(
        name=name,
        description=(f"generated regression workload "
                     f"({config.num_operations} operations, seed "
                     f"{config.seed}, sharing {config.sharing_pressure:g})"),
        builder=partial(generated.build, name),
        behavioral_builder=partial(generated.build_behavioral, name),
        resource_limits=generated.resource_limits(name),
        paper_max_sessions=None,
        in_paper_table=False,
    )
    for name, config in generated.CONFIGS.items()
})


#: Names of the built-in benchmark circuits (never unregistered).
BUILTIN_CIRCUITS = frozenset(_REGISTRY)


def list_circuits(paper_only: bool = False) -> list[str]:
    """Names of the available circuits (static benchmarks + registered)."""
    return [name for name, spec in _REGISTRY.items()
            if spec.in_paper_table or not paper_only]


def get_spec(name: str) -> CircuitSpec:
    """Full metadata of a registered circuit."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def get_circuit(name: str) -> DataFlowGraph:
    """Build the scheduled, module-bound DFG of a registered circuit."""
    return get_spec(name).build()


# ----------------------------------------------------------------------
# dynamic registration (user circuits)
# ----------------------------------------------------------------------
def register_graph(
    graph: DataFlowGraph,
    description: str = "",
    resource_limits: Mapping[str, int] | None = None,
    behavioral: DataFlowGraph | None = None,
    replace: bool = False,
) -> CircuitSpec:
    """Register an in-memory DFG as a named circuit.

    Behavioural graphs are elaborated (list scheduling + module binding)
    under ``resource_limits`` before registration, so :func:`get_circuit`
    always returns a synthesizer-ready graph.  The built-in benchmark
    entries cannot be overwritten, even with ``replace=True``.
    """
    from ..hls.frontend import elaborate  # lazy: circuits → hls → dfg cycle

    name = graph.name
    if not name:
        raise DFGError("cannot register a circuit with an empty name")
    if name in BUILTIN_CIRCUITS:
        raise ValueError(f"circuit name {name!r} is reserved by a built-in benchmark")
    if name in _REGISTRY and not replace:
        raise ValueError(f"circuit {name!r} is already registered (use replace=True)")

    behavioral = behavioral if behavioral is not None else graph
    if graph.is_scheduled and graph.is_module_bound:
        prepared = graph  # already synthesizer-ready; nothing to elaborate
    else:
        prepared = elaborate(graph, resource_limits=resource_limits).graph
    spec = CircuitSpec(
        name=name,
        description=description or f"user circuit ({len(prepared)} operations)",
        builder=lambda: prepared,
        behavioral_builder=lambda: behavioral,
        resource_limits=dict(resource_limits or {}),
        paper_max_sessions=None,
        in_paper_table=False,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_circuit(name: str) -> None:
    """Remove a dynamically registered circuit (built-ins are protected)."""
    if name in BUILTIN_CIRCUITS:
        raise ValueError(f"cannot unregister built-in circuit {name!r}")
    _REGISTRY.pop(name, None)


def circuit_dict_from_payload(data: Any) -> dict:
    """Extract the DFG dictionary from a loaded JSON payload.

    Accepts both a bare ``repro.dfg.textio`` dictionary and the wrapped
    ``{"graph": {...}, ...}`` envelope that ``repro fuzz`` writes for failing
    cases, so every artefact the tool emits is replayable as-is.
    """
    if isinstance(data, dict) and "operations" not in data and isinstance(data.get("graph"), dict):
        return data["graph"]
    if not isinstance(data, dict):
        raise DFGError(f"DFG JSON must be an object, got {type(data).__name__}")
    return data


def load_front(
    path: str | Path,
    resource_limits: Mapping[str, int] | None = None,
    register: bool = True,
    replace: bool = True,
):
    """Load a circuit file through the HLS front end; return the front-end result.

    The single load path shared by :func:`load_circuit` and ``repro synth``:
    read + parse the JSON (bad JSON and non-UTF-8 content surface as
    :class:`DFGError`; filesystem problems stay ``OSError``), unwrap fuzz
    envelopes, elaborate, and (by default) register the prepared graph.
    Returns the :class:`repro.hls.frontend.FrontEndResult`, whose ``graph``
    is scheduled and module-bound and whose summary says what the front end
    actually did.
    """
    import json

    from ..hls.frontend import elaborate  # lazy: circuits → hls → dfg cycle

    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise DFGError(f"{path}: not UTF-8 text: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DFGError(f"{path}: not valid JSON: {exc}") from exc
    graph = textio.from_dict(circuit_dict_from_payload(data))
    front = elaborate(graph, resource_limits=resource_limits)
    if register:
        # register_graph sees an already-prepared graph, so it does not
        # re-run the front end.
        register_graph(front.graph, description=f"loaded from {path.name}",
                       resource_limits=resource_limits, behavioral=graph,
                       replace=replace)
    return front


def load_circuit(
    path: str | Path,
    resource_limits: Mapping[str, int] | None = None,
    register: bool = True,
    replace: bool = True,
) -> DataFlowGraph:
    """Load a circuit from a ``repro.dfg.textio`` JSON file.

    The graph may be behavioural or pre-scheduled; it comes back scheduled
    and module-bound.  With ``register=True`` (the default) the circuit also
    lands in the registry under its JSON ``name``, so the rest of the session
    can refer to it like any benchmark.  Name clashes with built-in circuits
    are rejected rather than silently shadowed.
    """
    return load_front(path, resource_limits=resource_limits,
                      register=register, replace=replace).graph
