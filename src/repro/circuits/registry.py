"""Registry of the benchmark circuits used in the paper's evaluation.

Every entry produces a scheduled, module-bound :class:`DataFlowGraph` ready
for the ADVBIST / baseline synthesizers.  The registry also records, for each
circuit, the maximal number of test sessions (its module count as listed in
parentheses in Table 3) so the benchmark harness can sweep the same k range
as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..dfg.graph import DataFlowGraph
from . import dct4, fig1, fir6, iir3, paulin, tseng, wavelet6


@dataclass(frozen=True)
class CircuitSpec:
    """Metadata of one benchmark circuit."""

    name: str
    description: str
    builder: Callable[[], DataFlowGraph]
    behavioral_builder: Callable[[], DataFlowGraph]
    resource_limits: dict
    paper_max_sessions: int | None
    in_paper_table: bool

    def build(self) -> DataFlowGraph:
        """Build the scheduled, module-bound DFG."""
        return self.builder()

    def build_behavioral(self) -> DataFlowGraph:
        """Build the unscheduled behavioural DFG."""
        return self.behavioral_builder()


_REGISTRY: dict[str, CircuitSpec] = {
    "fig1": CircuitSpec(
        name="fig1",
        description="Running example of the paper (Fig. 1): 4 operations, 3 registers",
        builder=fig1.build,
        behavioral_builder=fig1.build_behavioral,
        resource_limits=dict(fig1.RESOURCE_LIMITS),
        paper_max_sessions=2,
        in_paper_table=False,
    ),
    "tseng": CircuitSpec(
        name="tseng",
        description="Tseng/facet benchmark (Table 3 row 'tseng (3)')",
        builder=tseng.build,
        behavioral_builder=tseng.build_behavioral,
        resource_limits=dict(tseng.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "paulin": CircuitSpec(
        name="paulin",
        description="Paulin/diffeq benchmark (Table 3 row 'paulin (4)')",
        builder=paulin.build,
        behavioral_builder=paulin.build_behavioral,
        resource_limits=dict(paulin.RESOURCE_LIMITS),
        paper_max_sessions=4,
        in_paper_table=True,
    ),
    "fir6": CircuitSpec(
        name="fir6",
        description="6th-order FIR filter (Table 3 row 'fir6 (3)')",
        builder=fir6.build,
        behavioral_builder=fir6.build_behavioral,
        resource_limits=dict(fir6.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "iir3": CircuitSpec(
        name="iir3",
        description="3rd-order IIR filter (Table 3 row 'iir3 (3)')",
        builder=iir3.build,
        behavioral_builder=iir3.build_behavioral,
        resource_limits=dict(iir3.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
    "dct4": CircuitSpec(
        name="dct4",
        description="4-point DCT (Table 3 row 'dct4 (4)')",
        builder=dct4.build,
        behavioral_builder=dct4.build_behavioral,
        resource_limits=dict(dct4.RESOURCE_LIMITS),
        paper_max_sessions=4,
        in_paper_table=True,
    ),
    "wavelet6": CircuitSpec(
        name="wavelet6",
        description="6-tap wavelet filter (Table 3 row 'wavelet6 (3)')",
        builder=wavelet6.build,
        behavioral_builder=wavelet6.build_behavioral,
        resource_limits=dict(wavelet6.RESOURCE_LIMITS),
        paper_max_sessions=3,
        in_paper_table=True,
    ),
}


def list_circuits(paper_only: bool = False) -> list[str]:
    """Names of the available benchmark circuits."""
    return [name for name, spec in _REGISTRY.items()
            if spec.in_paper_table or not paper_only]


def get_spec(name: str) -> CircuitSpec:
    """Full metadata of a benchmark circuit."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def get_circuit(name: str) -> DataFlowGraph:
    """Build the scheduled, module-bound DFG of a benchmark circuit."""
    return get_spec(name).build()
