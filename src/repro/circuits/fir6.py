"""The ``fir6`` benchmark: a 6th-order (6-tap) FIR filter.

``y[n] = sum_{i=0..5} c_i * x[n-i]``.  The paper synthesized this data flow
with HYPER; here the filter is written directly as a multiply/accumulate tree
(six products reduced by five additions).  The tap coefficients enter as
primary inputs (coefficient registers), not constants, so every multiplier
port can be driven from a register during test — the same assumption the
paper's low overhead numbers imply.  A budget of two multipliers and one
adder gives three functional modules, matching "fir6 (3)" in Table 3.
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Two multipliers and one adder: three modules, as in Table 3.
RESOURCE_LIMITS = {"mult": 2, "alu": 1}

#: Number of filter taps.
NUM_TAPS = 6


def build_behavioral() -> DataFlowGraph:
    """The unscheduled 6-tap FIR DFG."""
    builder = DFGBuilder("fir6")
    samples = [builder.input(f"x{i}") for i in range(NUM_TAPS)]
    coefficients = [builder.input(f"c{i}") for i in range(NUM_TAPS)]

    products = [
        builder.op("mul", samples[i], coefficients[i], name=f"p{i}")
        for i in range(NUM_TAPS)
    ]
    # Balanced adder tree: (p0+p1) + (p2+p3), then + (p4+p5).
    s01 = builder.op("add", products[0], products[1], name="s01")
    s23 = builder.op("add", products[2], products[3], name="s23")
    s45 = builder.op("add", products[4], products[5], name="s45")
    s0123 = builder.op("add", s01, s23, name="s0123")
    y = builder.op("add", s0123, s45, name="y")
    builder.output(y)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``fir6`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
