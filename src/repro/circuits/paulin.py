"""The ``paulin`` benchmark (Paulin & Knight differential-equation solver).

The HAL "diffeq" example computes one Euler integration step of
``y'' + 3xy' + 3y = 0``::

    x1 = x + dx
    u1 = u - 3*x*(u*dx) - 3*y*dx
    y1 = y + u*dx

It is the second classic benchmark the paper uses.  Multiplications are bound
to two multipliers; the additions and subtractions are kept on separate adder
and subtractor units so the data path has four functional modules, matching
the "paulin (4)" maximal-session count of Table 3.
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Two multipliers, one adder, one subtractor: four modules, as in Table 3.
#: (``subtract`` is deliberately not mapped to the shared ALU class.)
RESOURCE_LIMITS = {"mult": 2, "alu": 1, "subtract": 1}


def build_behavioral() -> DataFlowGraph:
    """The unscheduled diffeq DFG."""
    builder = DFGBuilder("paulin")
    x = builder.input("x")
    y = builder.input("y")
    u = builder.input("u")
    dx = builder.input("dx")
    three = builder.input("three")   # the literal 3, supplied as a port

    m1 = builder.op("mul", three, x, name="3x")
    m2 = builder.op("mul", u, dx, name="u_dx")
    m3 = builder.op("mul", three, y, name="3y")
    m4 = builder.op("mul", m1, m2, name="3x_u_dx")
    m5 = builder.op("mul", dx, m3, name="3y_dx")
    s1 = builder.op("subtract", u, m4, name="u_minus")
    s2 = builder.op("subtract", s1, m5, name="u1")
    a1 = builder.op("add", x, dx, name="x1")
    a2 = builder.op("add", y, m2, name="y1")
    builder.output(s2)
    builder.output(a1)
    builder.output(a2)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``paulin`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
