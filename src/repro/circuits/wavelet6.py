"""The ``wavelet6`` benchmark: a 6-tap (Daubechies-3 style) wavelet filter.

One analysis step computes the low-pass output of a 6-tap filter over the
current window of samples::

    low  = sum_{i=0..5} h_i * x[n-i]

followed by the first two taps of the high-pass branch, which reuse the same
window (this keeps the graph at the register pressure the paper reports while
staying a realistic wavelet workload).  Coefficients are primary inputs.  Two
multipliers and one adder give three functional modules ("wavelet6 (3)" in
Table 3).
"""

from __future__ import annotations

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..hls.module_binding import bind_modules
from ..hls.scheduling import list_schedule

#: Two multipliers and one adder: three modules, as in Table 3.
RESOURCE_LIMITS = {"mult": 2, "alu": 1}

#: Number of filter taps of the low-pass branch.
NUM_TAPS = 6


def build_behavioral() -> DataFlowGraph:
    """The unscheduled 6-tap wavelet DFG."""
    builder = DFGBuilder("wavelet6")
    samples = [builder.input(f"x{i}") for i in range(NUM_TAPS)]
    low_coeffs = [builder.input(f"h{i}") for i in range(NUM_TAPS)]
    high_coeffs = [builder.input(f"g{i}") for i in range(2)]

    # low-pass branch: 6 products, balanced adder tree
    products = [
        builder.op("mul", samples[i], low_coeffs[i], name=f"lp{i}")
        for i in range(NUM_TAPS)
    ]
    s01 = builder.op("add", products[0], products[1], name="s01")
    s23 = builder.op("add", products[2], products[3], name="s23")
    s45 = builder.op("add", products[4], products[5], name="s45")
    s0123 = builder.op("add", s01, s23, name="s0123")
    low = builder.op("add", s0123, s45, name="low")

    # leading taps of the high-pass branch over the same window
    hp0 = builder.op("mul", samples[0], high_coeffs[0], name="hp0")
    hp1 = builder.op("mul", samples[1], high_coeffs[1], name="hp1")
    high_partial = builder.op("add", hp0, hp1, name="high_partial")

    builder.output(low)
    builder.output(high_partial)
    return builder.build()


def build() -> DataFlowGraph:
    """The scheduled, module-bound ``wavelet6`` DFG."""
    graph = build_behavioral()
    graph = list_schedule(graph, RESOURCE_LIMITS).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph
