"""Large generated regression circuits: ``gen100`` / ``gen120`` / ``gen140``.

The seven paper circuits top out at a dozen operations, so they never
stress the vectorised solver paths (bound propagation, cut separation,
presolve batching) the way a real datapath would.  These three circuits
are frozen draws of the :mod:`repro.dfg.generate` fuzz generator — 100 to
140 operations each, different sharing pressures — promoted to named
registry entries so sweeps, fuzz replays and benchmarks can refer to them
stably.  The generator is deterministic per config, so the graphs are
reproduced bit-identically from the configs below rather than stored.

They are *regression workloads*, not paper rows: ``in_paper_table`` stays
false and no Table 2/3 comparison includes them.
"""

from __future__ import annotations

from ..dfg.generate import (
    GeneratorConfig,
    generate_behavioral,
    generate_scheduled,
    resource_limits_for,
)
from ..dfg.graph import DataFlowGraph

#: The frozen generator configs.  Never change these: the whole point of a
#: named regression workload is that every checkout builds the same graph.
CONFIGS: dict[str, GeneratorConfig] = {
    "gen100": GeneratorConfig(num_operations=100, seed=11,
                              sharing_pressure=0.85, name="gen100"),
    "gen120": GeneratorConfig(num_operations=120, seed=23,
                              sharing_pressure=0.70, name="gen120"),
    "gen140": GeneratorConfig(num_operations=140, seed=37,
                              sharing_pressure=0.90, name="gen140"),
}


def build_behavioral(name: str) -> DataFlowGraph:
    """The unscheduled behavioural DFG of one generated circuit."""
    return generate_behavioral(CONFIGS[name])


def build(name: str) -> DataFlowGraph:
    """The scheduled, module-bound DFG of one generated circuit."""
    return generate_scheduled(CONFIGS[name])


def resource_limits(name: str) -> dict[str, int]:
    """The functional-unit budget the generator's elaboration used."""
    config = CONFIGS[name]
    return resource_limits_for(generate_behavioral(config),
                               config.sharing_pressure)
