"""Structural components of an RTL data path with BIST support.

These classes model the synthesis *output*: registers, functional modules,
the register↔module interconnect, the multiplexers implied by that
interconnect, and the test-register kinds a register can be reconfigured to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TestRegisterKind(enum.Enum):
    """How a system register is reconfigured for BIST (section 2.2).

    * ``NONE`` — plain system register, not used for test.
    * ``TPG`` — test pattern generator.
    * ``SR`` — (multiple-input) signature register.
    * ``BILBO`` — built-in logic block observer: acts as TPG in some sub-test
      sessions and as SR in others, never both at once.
    * ``CBILBO`` — concurrent BILBO: acts as TPG and SR in the *same*
      sub-test session (roughly doubles the flip-flop count).
    """

    NONE = "register"
    TPG = "tpg"
    SR = "sr"
    BILBO = "bilbo"
    CBILBO = "cbilbo"

    @property
    def generates_patterns(self) -> bool:
        """Whether this kind can drive module inputs during test."""
        return self in (TestRegisterKind.TPG, TestRegisterKind.BILBO, TestRegisterKind.CBILBO)

    @property
    def compacts_responses(self) -> bool:
        """Whether this kind can capture module outputs during test."""
        return self in (TestRegisterKind.SR, TestRegisterKind.BILBO, TestRegisterKind.CBILBO)


def classify_register(used_as_tpg: set[int], used_as_sr: set[int]) -> TestRegisterKind:
    """Derive the register kind from the sub-test sessions it works in.

    Parameters
    ----------
    used_as_tpg:
        Sub-test sessions in which the register generates patterns.
    used_as_sr:
        Sub-test sessions in which the register compacts signatures.
    """
    if not used_as_tpg and not used_as_sr:
        return TestRegisterKind.NONE
    if used_as_tpg and not used_as_sr:
        return TestRegisterKind.TPG
    if used_as_sr and not used_as_tpg:
        return TestRegisterKind.SR
    if used_as_tpg & used_as_sr:
        return TestRegisterKind.CBILBO
    return TestRegisterKind.BILBO


@dataclass(frozen=True)
class Register:
    """A system register and the DFG variables merged into it."""

    reg_id: int
    variables: tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self):
        if not self.name:
            object.__setattr__(self, "name", f"R{self.reg_id}")


@dataclass(frozen=True)
class FunctionalModule:
    """A functional module (adder, multiplier, ...) and its bound operations."""

    module_id: int
    module_class: str
    operations: tuple[int, ...] = ()
    num_ports: int = 2
    name: str = ""

    def __post_init__(self):
        if not self.name:
            object.__setattr__(self, "name", f"M{self.module_id}")

    @property
    def input_ports(self) -> range:
        return range(self.num_ports)


@dataclass(frozen=True)
class RegisterToPortWire:
    """An interconnection from a register to an input port of a module."""

    register: int
    module: int
    port: int


@dataclass(frozen=True)
class ModuleToRegisterWire:
    """An interconnection from a module's output to a register."""

    module: int
    register: int


@dataclass
class Multiplexer:
    """A multiplexer in front of a register or a module input port."""

    location: str            # "register" or "module_port"
    target: tuple            # (reg_id,) or (module_id, port)
    inputs: int

    @property
    def is_real(self) -> bool:
        """A steering multiplexer is only needed for two or more sources."""
        return self.inputs >= 2


@dataclass
class PortBinding:
    """Per-port operand routing chosen for a commutative operation.

    ``mapping[pseudo_port] = physical_port`` records the permutation selected
    by the ILP's ``s_{l*, l, o}`` variables (equation (3)).
    """

    operation: int
    mapping: dict[int, int] = field(default_factory=dict)
