"""The synthesized RTL data path.

A :class:`Datapath` is derived from a scheduled, module-bound DFG together
with a variable→register assignment (and, for commutative operations, the
chosen input-port permutation).  From these it derives exactly the structure
the paper's ILP reasons about:

* the register→module-port wires (the ``z_rml`` variables),
* the module→register wires (the ``z_mr`` variables),
* the multiplexer in front of every register and module port (the ``m_r`` and
  ``m_ml`` integers of equations (4)–(5)).

Because the wires are derived from DFG edges only, a :class:`Datapath` can
never contain the "adverse paths" that equations (1)–(3) exist to prevent;
the tests use this to cross-check ILP solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..dfg.graph import DataFlowGraph, DFGError
from .components import (
    FunctionalModule,
    ModuleToRegisterWire,
    Multiplexer,
    PortBinding,
    Register,
    RegisterToPortWire,
)


class DatapathError(ValueError):
    """Raised when a data path cannot be constructed consistently."""


@dataclass
class Datapath:
    """A register-transfer-level data path (registers, modules, interconnect)."""

    name: str
    graph: DataFlowGraph
    registers: list[Register]
    modules: list[FunctionalModule]
    register_of_variable: dict[int, int]
    register_wires: list[RegisterToPortWire] = field(default_factory=list)
    module_wires: list[ModuleToRegisterWire] = field(default_factory=list)
    port_bindings: dict[int, PortBinding] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bindings(
        cls,
        graph: DataFlowGraph,
        register_assignment: Mapping[int, int],
        port_permutations: Mapping[int, Mapping[int, int]] | None = None,
        name: str | None = None,
    ) -> "Datapath":
        """Build the data path implied by a register assignment.

        Parameters
        ----------
        graph:
            Scheduled and module-bound DFG.
        register_assignment:
            Mapping from variable id to register id.
        port_permutations:
            For commutative operations, an optional mapping
            ``op_id -> {pseudo_port: physical_port}`` describing how the
            operands were swapped; the identity permutation is assumed when
            absent.
        """
        if not graph.is_scheduled or not graph.is_module_bound:
            raise DatapathError("the DFG must be scheduled and module bound")
        missing = [v for v in graph.variable_ids if v not in register_assignment]
        if missing:
            raise DatapathError(f"register assignment misses variables {missing}")

        port_permutations = port_permutations or {}

        register_ids = sorted(set(register_assignment.values()))
        registers = []
        for reg_id in register_ids:
            members = tuple(sorted(v for v, r in register_assignment.items() if r == reg_id))
            registers.append(Register(reg_id=reg_id, variables=members))

        modules = []
        for module_id, ops in sorted(graph.module_operations().items()):
            num_ports = max(len(graph.operations[o].inputs) for o in ops)
            modules.append(
                FunctionalModule(
                    module_id=module_id,
                    module_class=graph.module_class_of(module_id),
                    operations=tuple(ops),
                    num_ports=num_ports,
                )
            )

        register_wires: set[RegisterToPortWire] = set()
        port_bindings: dict[int, PortBinding] = {}
        for op in graph.operations.values():
            permutation = dict(port_permutations.get(op.op_id, {}))
            if permutation:
                port_bindings[op.op_id] = PortBinding(op.op_id, permutation)
            for pseudo_port, operand in enumerate(op.inputs):
                if not isinstance(operand, int):
                    continue  # constants are wired outside the register file
                physical_port = permutation.get(pseudo_port, pseudo_port)
                if physical_port not in range(len(op.inputs)):
                    raise DatapathError(
                        f"operation {op.op_id}: pseudo port {pseudo_port} mapped to "
                        f"invalid physical port {physical_port}"
                    )
                register_wires.add(
                    RegisterToPortWire(
                        register=register_assignment[operand],
                        module=op.module,
                        port=physical_port,
                    )
                )

        module_wires: set[ModuleToRegisterWire] = set()
        for op_id, var_id in graph.output_edges:
            module_wires.add(
                ModuleToRegisterWire(
                    module=graph.operations[op_id].module,
                    register=register_assignment[var_id],
                )
            )

        return cls(
            name=name or graph.name,
            graph=graph,
            registers=registers,
            modules=modules,
            register_of_variable=dict(register_assignment),
            register_wires=sorted(register_wires, key=lambda w: (w.register, w.module, w.port)),
            module_wires=sorted(module_wires, key=lambda w: (w.module, w.register)),
            port_bindings=port_bindings,
        )

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def register_ids(self) -> list[int]:
        return [r.reg_id for r in self.registers]

    @property
    def module_ids(self) -> list[int]:
        return [m.module_id for m in self.modules]

    def module(self, module_id: int) -> FunctionalModule:
        for module in self.modules:
            if module.module_id == module_id:
                return module
        raise KeyError(f"no module with id {module_id}")

    def register(self, reg_id: int) -> Register:
        for reg in self.registers:
            if reg.reg_id == reg_id:
                return reg
        raise KeyError(f"no register with id {reg_id}")

    def registers_driving_port(self, module_id: int, port: int) -> list[int]:
        """Registers wired into an input port of a module."""
        return sorted({w.register for w in self.register_wires
                       if w.module == module_id and w.port == port})

    def modules_driving_register(self, reg_id: int) -> list[int]:
        """Modules whose outputs are wired into a register."""
        return sorted({w.module for w in self.module_wires if w.register == reg_id})

    def has_register_to_port_wire(self, reg_id: int, module_id: int, port: int) -> bool:
        return RegisterToPortWire(reg_id, module_id, port) in set(self.register_wires)

    def has_module_to_register_wire(self, module_id: int, reg_id: int) -> bool:
        return ModuleToRegisterWire(module_id, reg_id) in set(self.module_wires)

    # ------------------------------------------------------------------
    # multiplexers (equations (4) and (5))
    # ------------------------------------------------------------------
    def multiplexers(self) -> list[Multiplexer]:
        """All multiplexers implied by the interconnect (including trivial ones)."""
        muxes: list[Multiplexer] = []
        for reg in self.registers:
            sources = self.modules_driving_register(reg.reg_id)
            muxes.append(Multiplexer("register", (reg.reg_id,), len(sources)))
        for module in self.modules:
            for port in module.input_ports:
                sources = self.registers_driving_port(module.module_id, port)
                muxes.append(Multiplexer("module_port", (module.module_id, port), len(sources)))
        return muxes

    def mux_input_total(self) -> int:
        """Total number of multiplexer inputs (column ``M`` of Table 3)."""
        return sum(m.inputs for m in self.multiplexers() if m.is_real)

    def mux_size_histogram(self) -> dict[int, int]:
        """Histogram of real multiplexer sizes."""
        histogram: dict[int, int] = {}
        for mux in self.multiplexers():
            if mux.is_real:
                histogram[mux.inputs] = histogram.get(mux.inputs, 0) + 1
        return dict(sorted(histogram.items()))

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural consistency; raise :class:`DatapathError` if broken.

        Ensures every DFG transfer is implementable with the present wires and
        that no wire lacks a justifying DFG edge (no adverse paths).
        """
        register_set = set(self.register_ids)
        module_set = set(self.module_ids)
        for wire in self.register_wires:
            if wire.register not in register_set or wire.module not in module_set:
                raise DatapathError(f"wire {wire} references unknown components")
        for wire in self.module_wires:
            if wire.register not in register_set or wire.module not in module_set:
                raise DatapathError(f"wire {wire} references unknown components")

        # Every data transfer demanded by the DFG must have a wire.
        for op in self.graph.operations.values():
            permutation = self.port_bindings.get(op.op_id, PortBinding(op.op_id)).mapping
            for pseudo_port, operand in enumerate(op.inputs):
                if not isinstance(operand, int):
                    continue
                physical_port = permutation.get(pseudo_port, pseudo_port)
                reg = self.register_of_variable[operand]
                if not self.has_register_to_port_wire(reg, op.module, physical_port):
                    raise DatapathError(
                        f"missing wire: register {reg} -> module {op.module} port "
                        f"{physical_port} needed by operation {op.op_id}"
                    )
            out_reg = self.register_of_variable[op.output]
            if not self.has_module_to_register_wire(op.module, out_reg):
                raise DatapathError(
                    f"missing wire: module {op.module} -> register {out_reg} "
                    f"needed by operation {op.op_id}"
                )

        # No wire may exist without a justifying DFG edge (adverse path check).
        justified_rml = set()
        for op in self.graph.operations.values():
            permutation = self.port_bindings.get(op.op_id, PortBinding(op.op_id)).mapping
            for pseudo_port, operand in enumerate(op.inputs):
                if not isinstance(operand, int):
                    continue
                physical_port = permutation.get(pseudo_port, pseudo_port)
                justified_rml.add(
                    (self.register_of_variable[operand], op.module, physical_port)
                )
        for wire in self.register_wires:
            if (wire.register, wire.module, wire.port) not in justified_rml:
                raise DatapathError(f"adverse path: unjustified wire {wire}")

        justified_mr = {
            (op.module, self.register_of_variable[op.output])
            for op in self.graph.operations.values()
        }
        for wire in self.module_wires:
            if (wire.module, wire.register) not in justified_mr:
                raise DatapathError(f"adverse path: unjustified wire {wire}")

    def summary(self) -> dict:
        """Compact structural statistics used in reports."""
        return {
            "name": self.name,
            "registers": len(self.registers),
            "modules": len(self.modules),
            "register_wires": len(self.register_wires),
            "module_wires": len(self.module_wires),
            "mux_inputs": self.mux_input_total(),
        }
