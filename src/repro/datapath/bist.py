"""BIST test plans over a synthesized data path.

A :class:`TestPlan` records, for a k-test session, everything the parallel
BIST architecture needs:

* which sub-test session (1..k) tests each module,
* which register acts as the signature register (SR) of each module,
* which register acts as the test pattern generator (TPG) of each module
  input port, and
* which module input ports are driven by dedicated constant generators
  (section 3.3.4).

From these the plan derives each register's :class:`TestRegisterKind`
(TPG / SR / BILBO / CBILBO) exactly as section 2.2 prescribes: a register
used to generate and compact in the *same* sub-test session must be a
CBILBO, one doing both in *different* sessions a BILBO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import TestRegisterKind, classify_register
from .datapath import Datapath


class TestPlanError(ValueError):
    """Raised when a test plan is structurally malformed."""


@dataclass
class TestPlan:
    """A k-test-session BIST plan.

    Attributes
    ----------
    num_sessions:
        k, the number of sub-test sessions (1..N where N is the module count).
    module_session:
        Sub-test session (1-based) in which each module is tested.
    sr_of_module:
        Signature register chosen for each module.
    tpg_of_port:
        TPG register chosen for each ``(module, port)`` pair.
    constant_tpg_ports:
        Module input ports that have to be driven by a dedicated constant
        pattern generator because no register reaches them.
    """

    num_sessions: int
    module_session: dict[int, int] = field(default_factory=dict)
    sr_of_module: dict[int, int] = field(default_factory=dict)
    tpg_of_port: dict[tuple[int, int], int] = field(default_factory=dict)
    constant_tpg_ports: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self):
        if self.num_sessions < 1:
            raise TestPlanError(f"a test plan needs at least one session, got {self.num_sessions}")
        for module, session in self.module_session.items():
            if not 1 <= session <= self.num_sessions:
                raise TestPlanError(
                    f"module {module} assigned to session {session}, "
                    f"outside 1..{self.num_sessions}"
                )

    # ------------------------------------------------------------------
    # derived register roles
    # ------------------------------------------------------------------
    def tpg_sessions_of_register(self, reg_id: int) -> set[int]:
        """Sub-test sessions in which ``reg_id`` generates test patterns."""
        sessions = set()
        for (module, _port), reg in self.tpg_of_port.items():
            if reg == reg_id and module in self.module_session:
                sessions.add(self.module_session[module])
        return sessions

    def sr_sessions_of_register(self, reg_id: int) -> set[int]:
        """Sub-test sessions in which ``reg_id`` compacts signatures."""
        sessions = set()
        for module, reg in self.sr_of_module.items():
            if reg == reg_id and module in self.module_session:
                sessions.add(self.module_session[module])
        return sessions

    def register_kind(self, reg_id: int) -> TestRegisterKind:
        """Test-register kind this plan forces onto a register."""
        return classify_register(
            self.tpg_sessions_of_register(reg_id),
            self.sr_sessions_of_register(reg_id),
        )

    def register_kinds(self, datapath: Datapath) -> dict[int, TestRegisterKind]:
        """Kinds of all registers of a data path under this plan."""
        return {reg: self.register_kind(reg) for reg in datapath.register_ids}

    # ------------------------------------------------------------------
    # aggregate counts (columns T, S, B, C of Table 3)
    # ------------------------------------------------------------------
    def kind_counts(self, datapath: Datapath) -> dict[TestRegisterKind, int]:
        """Number of registers per kind."""
        counts = {kind: 0 for kind in TestRegisterKind}
        for kind in self.register_kinds(datapath).values():
            counts[kind] += 1
        return counts

    def modules_in_session(self, session: int) -> list[int]:
        """Modules tested concurrently in a given sub-test session."""
        return sorted(m for m, p in self.module_session.items() if p == session)

    def sessions_used(self) -> list[int]:
        """Sub-test sessions that actually test at least one module."""
        return sorted(set(self.module_session.values()))

    def summary(self) -> dict:
        """Compact description used by reports and tests."""
        return {
            "sessions": self.num_sessions,
            "modules": len(self.module_session),
            "srs": len(set(self.sr_of_module.values())),
            "tpgs": len(set(self.tpg_of_port.values())),
            "constant_ports": len(self.constant_tpg_ports),
        }
