"""RTL data-path structures, BIST test plans and testability verification."""

from .components import (
    FunctionalModule,
    ModuleToRegisterWire,
    Multiplexer,
    PortBinding,
    Register,
    RegisterToPortWire,
    TestRegisterKind,
    classify_register,
)
from .datapath import Datapath, DatapathError
from .bist import TestPlan, TestPlanError
from .verify import VerificationReport, verify_bist_plan

__all__ = [
    "FunctionalModule",
    "ModuleToRegisterWire",
    "Multiplexer",
    "PortBinding",
    "Register",
    "RegisterToPortWire",
    "TestRegisterKind",
    "classify_register",
    "Datapath",
    "DatapathError",
    "TestPlan",
    "TestPlanError",
    "VerificationReport",
    "verify_bist_plan",
]
