"""Testability verification of a (data path, test plan) pair.

The checks mirror the paper's constraints one for one, so that any solution
produced by the ADVBIST ILP — or by the heuristic baselines — can be verified
independently of the solver:

* every module is tested exactly once, in a session within 1..k  (eq. 7),
* the SR of a module is a register actually wired to the module's output
  (eq. 6),
* no register is the SR of two modules in the same sub-test session (eq. 8),
* every module input port has exactly one TPG, wired to that port (eq. 9/10),
* a module's TPGs and its SR operate in the module's session (eq. 11/12),
* no register is the TPG of two ports of the same module (eq. 13),
* ports driven only by constants are explicitly listed as constant-TPG ports
  (section 3.3.4),
* no extra test-only paths exist (delegated to ``Datapath.validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bist import TestPlan
from .datapath import Datapath


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_bist_plan`."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def verify_bist_plan(datapath: Datapath, plan: TestPlan) -> VerificationReport:
    """Check that ``plan`` is a valid parallel-BIST plan for ``datapath``."""
    problems: list[str] = []

    try:
        datapath.validate()
    except Exception as exc:  # DatapathError and anything structural
        problems.append(f"data path inconsistent: {exc}")

    module_ids = set(datapath.module_ids)
    register_ids = set(datapath.register_ids)

    # --- session assignment (eq. 7) -----------------------------------
    for module in sorted(module_ids):
        if module not in plan.module_session:
            problems.append(f"module {module} is never tested")
    for module, session in plan.module_session.items():
        if module not in module_ids:
            problems.append(f"test plan references unknown module {module}")
        if not 1 <= session <= plan.num_sessions:
            problems.append(
                f"module {module} tested in session {session} outside 1..{plan.num_sessions}"
            )

    # --- signature registers (eqs. 6-8) --------------------------------
    for module in sorted(module_ids):
        sr = plan.sr_of_module.get(module)
        if sr is None:
            problems.append(f"module {module} has no signature register")
            continue
        if sr not in register_ids:
            problems.append(f"module {module} uses unknown register {sr} as SR")
            continue
        if not datapath.has_module_to_register_wire(module, sr):
            problems.append(
                f"register {sr} is the SR of module {module} but has no wire from it"
            )
    for session in range(1, plan.num_sessions + 1):
        sr_usage: dict[int, list[int]] = {}
        for module in plan.modules_in_session(session):
            sr = plan.sr_of_module.get(module)
            if sr is not None:
                sr_usage.setdefault(sr, []).append(module)
        for sr, modules in sr_usage.items():
            if len(modules) > 1:
                problems.append(
                    f"register {sr} is the SR of modules {modules} in the same "
                    f"sub-test session {session}"
                )

    # --- test pattern generators (eqs. 9-13) ----------------------------
    for module_obj in datapath.modules:
        module = module_obj.module_id
        port_tpgs: dict[int, int] = {}
        for port in module_obj.input_ports:
            key = (module, port)
            tpg = plan.tpg_of_port.get(key)
            is_constant_port = key in set(plan.constant_tpg_ports)
            if tpg is None and not is_constant_port:
                problems.append(f"module {module} port {port} has neither a TPG nor a "
                                "constant generator")
                continue
            if tpg is not None and is_constant_port:
                problems.append(
                    f"module {module} port {port} has both a register TPG and a "
                    "constant generator"
                )
            if tpg is None:
                continue
            if tpg not in register_ids:
                problems.append(f"module {module} port {port} uses unknown register {tpg}")
                continue
            if not datapath.has_register_to_port_wire(tpg, module, port):
                problems.append(
                    f"register {tpg} is the TPG for module {module} port {port} "
                    "but has no wire to it"
                )
            port_tpgs[port] = tpg
        # eq. 13: one register must not feed two ports of the same module
        seen: dict[int, int] = {}
        for port, tpg in port_tpgs.items():
            if tpg in seen:
                problems.append(
                    f"register {tpg} is the TPG of both ports {seen[tpg]} and {port} "
                    f"of module {module}"
                )
            seen[tpg] = port

    # --- constant ports must really be constant-only (section 3.3.4) ----
    for module, port in plan.constant_tpg_ports:
        if module not in module_ids:
            problems.append(f"constant-TPG entry references unknown module {module}")
            continue
        if datapath.registers_driving_port(module, port):
            problems.append(
                f"module {module} port {port} is marked constant-only but registers "
                "are wired to it"
            )

    return VerificationReport(problems)
