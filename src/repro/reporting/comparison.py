"""The method-comparison harness behind Table 3 (and the extra-register study).

:func:`compare_methods` runs the reference ILP, ADVBIST and the three
heuristic baselines on one circuit and returns the rows of the corresponding
Table 3 block.  :func:`extra_register_penalty` quantifies the paper's closing
remark that "the addition of registers incurs large area overhead"
(the Table 4 the text refers to but does not print).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..baselines import BASELINE_RUNNERS
from ..cost.area import datapath_area
from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..core.engine import DesignCache, SweepEngine
from ..core.formulation import FormulationOptions
from ..core.result import BistDesign, ReferenceDesign, TaskReport
from ..core.synthesizer import AdvBistSynthesizer
from ..dfg.graph import DataFlowGraph

# BASELINE_RUNNERS is re-exported from repro.baselines (its historical home
# in this module predates the sweep engine, which also needs it).


@dataclass
class ComparisonResult:
    """All designs of one Table 3 block (one circuit)."""

    circuit: str
    k: int
    reference: ReferenceDesign
    designs: dict[str, BistDesign] = field(default_factory=dict)
    reports: list[TaskReport] = field(default_factory=list)

    @property
    def reference_area(self) -> float:
        return self.reference.area().total

    def overheads(self) -> dict[str, float]:
        """Area overhead (%) per method."""
        return {
            method: design.overhead_vs(self.reference_area)
            for method, design in self.designs.items()
        }

    def rows(self) -> list[dict]:
        """Rows of the Table 3 block (reference first, then each method)."""
        rows = [self.reference.table3_row()]
        for method in ["ADVBIST", "ADVAN", "RALLOC", "BITS"]:
            if method in self.designs:
                rows.append(self.designs[method].table3_row(self.reference_area))
        return rows

    def winner(self) -> str:
        """Method with the lowest area overhead."""
        overheads = self.overheads()
        return min(overheads, key=overheads.get)


def compare_methods(
    graph: DataFlowGraph,
    k: int | None = None,
    methods: Sequence[str] = ("ADVBIST", "ADVAN", "RALLOC", "BITS"),
    cost_model: CostModel = PAPER_COST_MODEL,
    options: FormulationOptions | None = None,
    backend: str | object = "auto",
    time_limit: float | None = None,
    jobs: int = 1,
    cache: DesignCache | bool | None = None,
) -> ComparisonResult:
    """Run the reference ILP plus the selected methods on one circuit.

    A thin wrapper over :meth:`repro.core.engine.SweepEngine.compare`: the
    reference solve, the ADVBIST solve and the heuristic baselines are
    materialised as one task grid, so they share the engine's executor
    (``jobs`` worker processes) and on-disk design cache.

    Parameters
    ----------
    graph:
        Scheduled and module-bound DFG.
    k:
        Number of test sessions; defaults to the number of modules, which is
        the maximal-session configuration Table 3 reports.
    methods:
        Any subset of ``{"ADVBIST", "ADVAN", "RALLOC", "BITS"}``.
    time_limit:
        Per-solve wall clock limit handed to the ILP backends (the paper used
        24 CPU hours; the benches use seconds).
    jobs:
        Worker processes for the independent solves (1 = serial).
    cache:
        Design cache (``True`` for the default location, ``None`` disables).
    """
    sessions = k if k is not None else len(graph.module_ids)
    engine = SweepEngine(
        backend=backend, time_limit=time_limit, cost_model=cost_model,
        options=options, jobs=jobs, cache=cache,
    )
    reference, designs, reports = engine.compare(graph, k=sessions, methods=methods)
    return ComparisonResult(circuit=graph.name, k=sessions, reference=reference,
                            designs=designs, reports=reports)


def extra_register_penalty(
    graph: DataFlowGraph,
    cost_model: CostModel = PAPER_COST_MODEL,
    extra: int = 1,
    backend: str | object = "auto",
    time_limit: float | None = None,
) -> dict:
    """Area cost of synthesizing with additional registers (the "Table 4" study).

    Solves the reference data-path ILP once with the minimum register count
    and once with ``extra`` more registers, and reports the resulting areas.
    Methods that add registers (RALLOC, BITS on some circuits) pay at least
    this penalty before any test-register cost.
    """
    base_options = FormulationOptions()
    synthesizer = AdvBistSynthesizer(graph, cost_model, base_options, backend, time_limit)
    base = synthesizer.synthesize_reference()
    base_breakdown = base.area()

    from ..core.reference import ReferenceFormulation  # local import to avoid cycle

    requested_registers = len(base.datapath.register_ids) + extra
    enlarged_options = FormulationOptions(num_registers=requested_registers)
    formulation = ReferenceFormulation(graph, cost_model, enlarged_options)
    result = formulation.solve(backend=backend, time_limit=time_limit)
    if result.design is None:
        raise RuntimeError("reference synthesis with extra registers failed")
    enlarged_breakdown = datapath_area(result.design.datapath, None, cost_model)
    # A register added to the data path costs its transistors even if the
    # optimiser routes no variable through it (it still exists in silicon).
    unused_registers = requested_registers - enlarged_breakdown.register_count
    enlarged_area = enlarged_breakdown.total + unused_registers * cost_model.w_reg

    return {
        "circuit": graph.name,
        "base_registers": base_breakdown.register_count,
        "base_area": base_breakdown.total,
        "extra_registers": extra,
        "enlarged_area": enlarged_area,
        "penalty": enlarged_area - base_breakdown.total,
        "penalty_percent": round(
            100.0 * (enlarged_area - base_breakdown.total) / base_breakdown.total, 1
        ),
    }
