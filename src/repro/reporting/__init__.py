"""Reporting: Table 1/2/3 renderers and the method-comparison harness."""

from .comparison import (
    BASELINE_RUNNERS,
    ComparisonResult,
    compare_methods,
    extra_register_penalty,
)
from .netlist import describe_design, describe_reference, design_to_dict
from .tables import (
    format_table,
    render_backends,
    render_fuzz_report,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "render_fuzz_report",
    "BASELINE_RUNNERS",
    "ComparisonResult",
    "compare_methods",
    "extra_register_penalty",
    "describe_design",
    "describe_reference",
    "design_to_dict",
    "format_table",
    "render_backends",
    "render_table1",
    "render_table2",
    "render_table3",
]
