"""Plain-text table rendering in the layout of the paper's tables."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.components import TestRegisterKind


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table1(cost_model: CostModel = PAPER_COST_MODEL) -> str:
    """Table 1: transistor counts of test registers and multiplexers."""
    register_rows = [{
        "Type": "#Trs",
        **{kind.name if kind is not TestRegisterKind.NONE else "Reg.":
           cost_model.register_cost(kind) for kind in TestRegisterKind},
    }]
    register_columns = ["Type", "Reg.", "TPG", "SR", "BILBO", "CBILBO"]
    mux_sizes = sorted(cost_model.mux_costs)
    mux_rows = [{"#MuxIn": "#Trs", **{str(n): cost_model.mux_cost(n) for n in mux_sizes}}]
    mux_columns = ["#MuxIn"] + [str(n) for n in mux_sizes]
    return "\n\n".join([
        format_table(register_rows, register_columns,
                     f"Table 1a. {cost_model.bit_width}-bit test registers (transistors)"),
        format_table(mux_rows, mux_columns,
                     f"Table 1b. {cost_model.bit_width}-bit multiplexers (transistors)"),
    ])


#: Solver-statistics columns appended to Table 2 in ``--stats`` mode
#: (populated from :class:`repro.ilp.SolveStats` via ``SweepEntry.table2_row``).
TABLE2_STATS_COLUMNS = ["backend", "nnz", "vars", "constrs", "nodes"]


def render_table2(rows: Iterable[Mapping], stats: bool = False) -> str:
    """Table 2: ADVBIST overhead and solve time per circuit per k.

    With ``stats=True`` the per-solve solver statistics (backend, matrix
    nonzeros, model dimensions, branch-and-bound nodes) are appended as
    extra columns.
    """
    columns = ["circuit", "k", "overhead_percent", "area", "optimal", "solve_seconds"]
    if stats:
        columns += TABLE2_STATS_COLUMNS
    return format_table(list(rows), columns,
                        "Table 2. ADVBIST area overhead (%) and solve time per k-test session")


def render_backends(rows: Iterable[Mapping]) -> str:
    """Capability table of the registered solver backends."""
    columns = ["backend", "aliases", "sparse", "time_limit", "warm_start", "description"]
    return format_table(list(rows), columns, "Registered ILP solver backends")


def render_fuzz_report(rows: Iterable[Mapping],
                       backends: Sequence[str] | None = None) -> str:
    """Parity table of a ``repro fuzz`` sweep: one row per random circuit.

    The per-backend objective columns default to whatever backends actually
    appear in the rows (every key that is not one of the fixed columns), so
    a custom backend set renders its objectives instead of blank cells.
    """
    rows = list(rows)
    head = ["circuit", "seed", "ops", "modules", "form", "k"]
    tail = ["parity", "wall_s"]
    if backends is None:
        backends = []
        for row in rows:
            for key in row:
                if key not in head and key not in tail and key not in backends:
                    backends.append(key)
    columns = head + list(backends) + tail
    return format_table(rows, columns,
                        "Fuzz report: ILP backend objective parity per random circuit")


def render_table3(rows: Iterable[Mapping], circuit: str = "") -> str:
    """Table 3: method comparison (R/T/S/B/C/M/Area/OH%) for one circuit."""
    columns = ["Method", "R", "T", "S", "B", "C", "M", "Area", "OH(%)"]
    title = "Table 3. High-level BIST synthesis comparison"
    if circuit:
        title += f" — {circuit}"
    return format_table(list(rows), columns, title)
