"""Structural netlist-style report of a synthesized (BIST) data path.

Downstream users of a BIST synthesis tool need more than an area number: they
need the actual structure to hand to RTL generation — which variables share
each register, which test-register type each register must be implemented as,
the register↔module wiring with multiplexer sizes, and the test schedule
(which modules are tested in which sub-test session, driven and observed by
which registers).  :func:`describe_design` renders exactly that as plain text,
and :func:`design_to_dict` provides the same information as a JSON-friendly
dictionary.
"""

from __future__ import annotations

from ..core.result import BistDesign, ReferenceDesign


def design_to_dict(design: BistDesign) -> dict:
    """A JSON-serialisable structural description of a BIST design."""
    datapath = design.datapath
    plan = design.plan
    kinds = plan.register_kinds(datapath)
    graph = datapath.graph

    registers = []
    for register in datapath.registers:
        registers.append({
            "id": register.reg_id,
            "kind": kinds[register.reg_id].name,
            "variables": [graph.variables[v].name for v in register.variables],
            "mux_inputs": len(datapath.modules_driving_register(register.reg_id)),
        })

    modules = []
    for module in datapath.modules:
        modules.append({
            "id": module.module_id,
            "class": module.module_class,
            "operations": list(module.operations),
            "port_sources": {
                port: datapath.registers_driving_port(module.module_id, port)
                for port in module.input_ports
            },
            "output_sinks": [
                wire.register for wire in datapath.module_wires
                if wire.module == module.module_id
            ],
        })

    sessions = []
    for session in range(1, plan.num_sessions + 1):
        tested = plan.modules_in_session(session)
        sessions.append({
            "session": session,
            "modules": tested,
            "signature_registers": {m: plan.sr_of_module[m] for m in tested
                                    if m in plan.sr_of_module},
            "pattern_generators": {
                f"M{m}.{port}": reg
                for (m, port), reg in plan.tpg_of_port.items()
                if m in tested
            },
        })

    return {
        "circuit": design.circuit,
        "method": design.method,
        "k": design.k,
        "area": design.area().total,
        "registers": registers,
        "modules": modules,
        "test_sessions": sessions,
        "constant_tpg_ports": list(plan.constant_tpg_ports),
    }


def describe_design(design: BistDesign) -> str:
    """Human-readable structural report of a BIST design."""
    data = design_to_dict(design)
    lines = [
        f"{data['method']} design of {data['circuit']!r} "
        f"({data['k']}-test session, {data['area']} transistors)",
        "",
        "Registers:",
    ]
    for register in data["registers"]:
        mux = (f", {register['mux_inputs']}-input mux"
               if register["mux_inputs"] >= 2 else "")
        lines.append(
            f"  R{register['id']:<2} {register['kind']:<7} "
            f"holds {', '.join(register['variables'])}{mux}"
        )
    lines.append("")
    lines.append("Modules:")
    for module in data["modules"]:
        lines.append(f"  M{module['id']} ({module['class']}) "
                     f"operations {module['operations']}")
        for port, sources in module["port_sources"].items():
            lines.append(f"    port {port} <- registers {sources}")
        lines.append(f"    output -> registers {module['output_sinks']}")
    lines.append("")
    lines.append("Test schedule:")
    for session in data["test_sessions"]:
        lines.append(f"  session {session['session']}: modules {session['modules']}")
        for module, register in session["signature_registers"].items():
            lines.append(f"    M{module} signature  -> R{register}")
        for port, register in session["pattern_generators"].items():
            lines.append(f"    {port} patterns <- R{register}")
    if data["constant_tpg_ports"]:
        lines.append("")
        lines.append(f"Constant-generator ports: {data['constant_tpg_ports']}")
    return "\n".join(lines)


def describe_reference(design: ReferenceDesign) -> str:
    """Human-readable structural report of a reference (non-BIST) data path."""
    datapath = design.datapath
    graph = datapath.graph
    lines = [
        f"Reference data path of {design.circuit!r} ({design.area().total} transistors)",
        "",
        "Registers:",
    ]
    for register in datapath.registers:
        names = ", ".join(graph.variables[v].name for v in register.variables)
        lines.append(f"  R{register.reg_id:<2} holds {names}")
    lines.append("")
    lines.append("Modules:")
    for module in datapath.modules:
        lines.append(f"  M{module.module_id} ({module.module_class}) "
                     f"operations {list(module.operations)}")
    return "\n".join(lines)
