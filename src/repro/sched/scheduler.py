"""The cross-request task scheduler: coalescing in front of the solvers.

:class:`TaskScheduler` sits between every job front end and the solver
stack.  Jobs hand it their full :class:`~repro.core.engine.SweepTask`
lists; the scheduler resolves each task by, in order:

1. **intra-request dedup** — identical tasks within one submission share
   a single computation (so a grid containing duplicates never re-solves
   them, even with caching disabled);
2. **cache probe** — the attached two-tier :class:`~repro.sched.cache.DesignCache`;
3. **in-flight coalescing** — if another request is already computing the
   key, this one waits for that single computation's
   :class:`~repro.core.engine.TaskOutcome` instead of starting its own
   (single-flight: stampedes on a cold key are structurally impossible);
4. **execution** — remaining misses go to the caller-supplied runner
   (the engine's chain builder + executor + compound batcher), and the
   results fan out to every coalesced waiter and into the cache.

One scheduler is shared per :class:`repro.api.Session` (and therefore per
``repro serve`` daemon), which is what makes the dedup *cross-request*:
N concurrent near-identical jobs perform the unique solves once.
Identity is :func:`repro.sched.cache.task_key` — the same content hash
that keys the design cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..obs.metrics import record_scheduler
from .cache import DesignCache, SingleFlight, task_key


def cacheable(task, outcome) -> bool:
    """Whether an outcome may enter the design cache (or fan out via it).

    Only proven-optimal ILP designs are stored: an optimum is independent of
    the time limit that produced it, so the cache key can (deliberately) omit
    ``time_limit``.  A feasible-but-unproven design from a short limit must
    not shadow a later run with a bigger budget.  Heuristic baselines are
    deterministic and always cacheable.
    """
    if task.kind == "baseline":
        return True
    return bool(getattr(outcome.design, "optimal", False))


@dataclass
class SchedulerStats:
    """Counters of one scheduler's lifetime (cumulative, thread-safe via
    the owning scheduler's lock).

    ``submitted`` counts every task handed to :meth:`TaskScheduler.execute`;
    ``executed`` counts the tasks that actually reached a solver runner —
    the difference is work the scheduler absorbed (``cache_hits`` +
    ``deduped`` intra-request duplicates + ``coalesced`` joins of another
    request's in-flight computation).
    """

    submitted: int = 0
    cache_hits: int = 0
    deduped: int = 0
    coalesced: int = 0
    executed: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "coalesced": self.coalesced,
            "executed": self.executed,
        }


#: Runner signature: ``runner(miss_indices, partial_outcomes)`` returns one
#: outcome per miss index (aligned).  The full partial outcome list is
#: passed so the engine can seed warm-start hints from cache hits.
Runner = Callable[[Sequence[int], Sequence[object]], Sequence[object]]


class TaskScheduler:
    """Coalesce, cache and dispatch task lists across concurrent requests.

    Thread-safe: any number of threads may call :meth:`execute`
    concurrently (the :class:`repro.api.Session` shares one scheduler
    across all of its jobs).  When a ``cache`` is attached, its
    :class:`~repro.sched.cache.SingleFlight` registry carries the
    in-flight table so the cache's ``info()`` reports the waits; without a
    cache the scheduler falls back to a private registry — in-flight
    coalescing works even with caching disabled.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights = SingleFlight()
        self.stats = SchedulerStats()
        #: Optional :class:`repro.obs.trace.Tracer`; when attached, every
        #: finished task produces one trace event (jobs in == events out).
        self.tracer = None

    def _count(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)
        record_scheduler(field, amount)

    def stats_snapshot(self) -> dict:
        with self._lock:
            return self.stats.as_dict()

    def execute(self, tasks: Sequence, runner: Runner,
                cache: DesignCache | None = None) -> list:
        """Resolve every task, returning outcomes in task order.

        ``runner`` is only invoked for the tasks this request must compute
        itself (cache misses it leads); its failures propagate to this
        caller *and* to every request coalesced onto those keys.
        """
        flights = cache.flights if cache is not None else self._flights
        n = len(tasks)
        outcomes: list = [None] * n
        keys: list[str | None] = [None] * n
        misses: list[int] = []            # leader + unkeyable indices
        leader_for: dict[str, int] = {}   # key -> leading index (this request)
        followers: list[tuple[int, str]] = []
        waiters: list[tuple[int, object]] = []
        self._count("submitted", n)

        for i, task in enumerate(tasks):
            keys[i] = key = task_key(task)
            if key is None:
                misses.append(i)  # object backends: never deduplicated
                continue
            if key in leader_for:
                followers.append((i, key))
                self._count("deduped")
                continue
            if cache is not None:
                hit = cache.get(key)
                if hit is not None:
                    outcomes[i] = hit
                    self._count("cache_hits")
                    continue
            role, flight = flights.claim(key)
            if role == "waiter":
                waiters.append((i, flight))
                self._count("coalesced")
                continue
            if cache is not None:
                # Double-check: a previous leader may have fulfilled (and
                # cached) between our probe miss and the claim.  Release the
                # claim by publishing the hit to any waiters that raced in.
                hit = cache.get(key)
                if hit is not None:
                    flights.fulfill(key, hit)
                    outcomes[i] = hit
                    self._count("cache_hits")
                    continue
            leader_for[key] = i
            misses.append(i)

        pending = dict(leader_for)  # keys this request still owes an answer
        try:
            if misses:
                solved = list(runner(misses, outcomes))
                if len(solved) != len(misses):
                    raise RuntimeError(
                        f"scheduler runner returned {len(solved)} outcomes "
                        f"for {len(misses)} tasks")
                self._count("executed", len(misses))
                for i, outcome in zip(misses, solved):
                    outcomes[i] = outcome
                    key = keys[i]
                    if key is None:
                        continue
                    if cache is not None and cacheable(tasks[i], outcome):
                        cache.put(key, outcome)
                    flights.fulfill(key, outcome)
                    pending.pop(key, None)
        except BaseException as exc:
            for key in pending:
                flights.fail(key, exc)
            raise

        for i, key in followers:
            outcomes[i] = replace(outcomes[leader_for[key]], coalesced=True)
        for i, flight in waiters:
            outcomes[i] = replace(flights.wait(flight), coalesced=True)
        tracer = self.tracer
        if tracer is not None:
            for task, outcome, key in zip(tasks, outcomes, keys):
                stats = outcome.stats
                tracer.record(
                    task_key=key or "",
                    circuit=getattr(task, "circuit", "?"),
                    kind=task.kind,
                    k=task.k if task.k is not None else 0,
                    backend=(getattr(stats, "backend", None)
                             or str(task.backend)),
                    status=("cached" if outcome.cached
                            else "coalesced" if outcome.coalesced
                            else "executed"),
                    wall_seconds=outcome.wall_seconds,
                    cached=outcome.cached,
                    coalesced=outcome.coalesced,
                    presolve=getattr(stats, "presolve", None))
        return outcomes
