"""The cross-request scheduling layer: dedup, two-tier caching, batching.

Carved out of the execution path so every front end — the CLI, the
:class:`repro.api.Session`, the ``repro serve`` daemon and the benchmark
harness — shares one :class:`TaskScheduler` per session:

* :mod:`repro.sched.cache` — the two-tier :class:`DesignCache` (in-memory
  LRU in front of the on-disk store) with per-key :class:`SingleFlight`
  locks, keyed by the content hash :func:`task_key`;
* :mod:`repro.sched.scheduler` — :class:`TaskScheduler`, which
  deduplicates identical tasks within and *across* concurrent requests
  (in-flight coalescing with fan-out of the single outcome to all
  waiters);
* :mod:`repro.sched.batching` — compound batched solving: independent
  pending ILPs packed into one block-diagonal model solved in a single
  backend call (:func:`solve_task_batch`).
"""

from .cache import DesignCache, MemoryTier, SingleFlight, task_key
from .scheduler import SchedulerStats, TaskScheduler, cacheable
from .batching import batchable_chain, solve_task_batch

__all__ = [
    "DesignCache",
    "MemoryTier",
    "SchedulerStats",
    "SingleFlight",
    "TaskScheduler",
    "batchable_chain",
    "cacheable",
    "solve_task_batch",
    "task_key",
]
