"""The two-tier design cache: an in-memory LRU in front of the disk store.

This module is the storage half of :mod:`repro.sched`.  It carries the
content-addressed :class:`DesignCache` (historically defined in
:mod:`repro.core.engine`, which still re-exports it) extended with:

* a **memory tier** — a thread-safe :class:`MemoryTier` LRU consulted
  before the on-disk pickle store, so a warm session serves repeated keys
  without touching the filesystem;
* a **single-flight registry** — :class:`SingleFlight` hands exactly one
  caller per missing key the *leader* role while concurrent callers wait
  for that one computation, making cache stampedes structurally
  impossible (the :class:`repro.sched.scheduler.TaskScheduler` drives it);
* the module-level :func:`task_key` identity function, usable without a
  cache instance — the scheduler keys in-flight coalescing on it even
  when caching is disabled.

Keys deliberately omit ``time_limit``: only proven-optimal ILP designs
(and deterministic heuristic baselines) are stored, and an optimum does
not depend on the time budget that found it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Mapping

from ..cost.transistors import CostModel
from ..dfg.textio import to_dict as graph_to_dict
from ..ilp.backends import resolve_backend_name
from ..obs.metrics import record_cache, record_flight

#: Default capacity of the in-memory tier (entries, not bytes — outcomes
#: for the paper's circuits are a few kilobytes each).
DEFAULT_MEMORY_ENTRIES = 256


# ----------------------------------------------------------------------
# task identity
# ----------------------------------------------------------------------
def _cost_model_payload(cost_model: CostModel) -> dict:
    return {
        "bit_width": cost_model.bit_width,
        "reference_width": cost_model.reference_width,
        "register_costs": {kind.name: cost
                           for kind, cost in sorted(cost_model.register_costs.items(),
                                                    key=lambda item: item[0].name)},
        "mux_costs": {str(n): cost for n, cost in sorted(cost_model.mux_costs.items())},
        "mux_extrapolation_step": cost_model.mux_extrapolation_step,
        "constant_tpg_weight": cost_model.constant_tpg_weight,
    }


def _options_payload(options) -> dict:
    from ..core.formulation import FormulationOptions  # lazy: core imports sched

    options = options or FormulationOptions()
    fixed = options.fixed_register_assignment
    return {
        "num_registers": options.num_registers,
        "allow_commutative_swap": options.allow_commutative_swap,
        "symmetry_reduction": options.symmetry_reduction,
        "adverse_path_constraints": options.adverse_path_constraints,
        "fixed_register_assignment": (sorted(fixed.items())
                                      if isinstance(fixed, Mapping) else None),
        "primary_input_policy": options.primary_input_policy,
    }


def task_key(task) -> str | None:
    """Content hash identifying a :class:`~repro.core.engine.SweepTask`.

    The same function keys the disk store, the memory tier and the
    scheduler's in-flight coalescing: two tasks with equal keys are
    guaranteed to produce the same outcome.  Returns ``None`` for tasks
    with object backends (no stable identity — never deduplicated).
    """
    if not isinstance(task.backend, str):
        return None  # object backends have no stable identity
    payload = {
        "schema": 3,
        "graph": graph_to_dict(task.graph),
        "cost_model": _cost_model_payload(task.cost_model),
        "options": _options_payload(task.options),
        "kind": task.kind,
        "k": task.k,
        "method": task.method,
        # Heuristic baselines never touch the ILP backend or the
        # acceleration pipeline, so their cached results stay valid
        # across --backend / --presolve changes.
        "backend": (None if task.kind == "baseline"
                    else resolve_backend_name(task.backend)),
        "presolve": (False if task.kind == "baseline" else task.presolve),
        "cuts": (False if task.kind == "baseline" else task.cuts),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# the memory tier
# ----------------------------------------------------------------------
class MemoryTier:
    """A thread-safe LRU of recently served outcomes (the hot tier).

    ``capacity`` bounds the entry count; inserting beyond it evicts the
    least recently *used* key.  ``capacity <= 0`` disables the tier (every
    get is a miss), which keeps :class:`DesignCache` purely disk-backed.
    """

    def __init__(self, capacity: int = DEFAULT_MEMORY_ENTRIES):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                value = self._entries[key]
            else:
                self.misses += 1
                value = None
        record_cache("memory", "hit" if value is not None else "miss")
        return value

    def put(self, key: str, value) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


# ----------------------------------------------------------------------
# single-flight
# ----------------------------------------------------------------------
class _Flight:
    """One in-progress computation: an event plus its eventual result."""

    __slots__ = ("event", "outcome", "error")

    def __init__(self):
        self.event = threading.Event()
        self.outcome = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key computation registry: one leader computes, others wait.

    :meth:`claim` atomically either registers the caller as the key's
    *leader* (it must later :meth:`fulfill` or :meth:`fail` the key) or
    hands back the existing flight to :meth:`wait` on.  ``waits`` counts
    how many callers were spared a duplicate computation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self.waits = 0

    def claim(self, key: str) -> tuple[str, _Flight | None]:
        """``("leader", None)`` when the caller must compute ``key``;
        ``("waiter", flight)`` when someone else already is."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                self._flights[key] = _Flight()
                lead = True
            else:
                self.waits += 1
                lead = False
        if lead:
            record_flight(+1)  # queue-depth gauge: one more led computation
            return "leader", None
        return "waiter", flight

    def fulfill(self, key: str, outcome) -> None:
        """Publish the leader's result and release every waiter."""
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            record_flight(-1)
            flight.outcome = outcome
            flight.event.set()

    def fail(self, key: str, error: BaseException) -> None:
        """Propagate the leader's failure to every waiter."""
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            record_flight(-1)
            flight.error = error
            flight.event.set()

    @staticmethod
    def wait(flight: _Flight):
        """Block until the flight resolves; re-raise the leader's error."""
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.outcome


# ----------------------------------------------------------------------
# the two-tier design cache
# ----------------------------------------------------------------------
class DesignCache:
    """Content-addressed memoisation of solved designs, in two tiers.

    Keys are SHA-256 hashes over a canonical JSON description of everything
    that determines a task's outcome: the DFG (via :mod:`repro.dfg.textio`),
    the cost model, the formulation options, k, the task kind/method, the
    resolved backend name and the presolve/cuts toggles (see :func:`task_key`).
    Values are :class:`~repro.core.engine.TaskOutcome` objects — pickled in
    the on-disk tier, held live in the in-memory LRU tier consulted first.
    ``time_limit`` is intentionally not part of the key — the engine only
    stores proven-optimal designs (and deterministic baselines), and an
    optimum does not depend on the time budget that found it.

    The cache also owns a :class:`SingleFlight` registry (``flights``) the
    :class:`~repro.sched.scheduler.TaskScheduler` uses so concurrent
    requests for one missing key trigger exactly one computation.

    The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-advbist``.
    """

    def __init__(self, root: str | Path | None = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-advbist")
        self.root = Path(root).expanduser()
        self.memory = MemoryTier(memory_entries)
        self.flights = SingleFlight()
        self._counter_lock = threading.Lock()
        self.disk_hits = 0
        self.disk_misses = 0

    # -- keying --------------------------------------------------------
    _cost_model_payload = staticmethod(_cost_model_payload)
    _options_payload = staticmethod(_options_payload)

    def key_for(self, task) -> str | None:
        """Cache key of a task, or None when the task is not cacheable."""
        return task_key(task)

    # -- storage -------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _served(self, outcome):
        """A cache-hit copy: the stored outcome is shared (memory tier), so
        the served object must be a fresh instance with ``cached=True``."""
        return replace(outcome, cached=True)

    def _disk_probe(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.disk_hits += 1
            else:
                self.disk_misses += 1
        record_cache("disk", "hit" if hit else "miss")

    def get(self, key: str | None):
        if key is None:
            return None
        hot = self.memory.get(key)
        if hot is not None:
            return self._served(hot)
        path = self._path(key)
        if not path.exists():
            self._disk_probe(hit=False)
            return None
        try:
            with path.open("rb") as handle:
                outcome = pickle.load(handle)
            served = self._validated(outcome)
        except Exception:
            # Corrupt or stale (older-version) entries must read as misses,
            # never crash a sweep; pickle raises whatever the mangled byte
            # stream implies (UnpicklingError, ValueError, ImportError, ...).
            # Evict the bad file so the miss is paid once, not on every
            # subsequent sweep; the fresh solve then re-publishes the key.
            served = None
        if served is None:
            self._evict(path)
            self._disk_probe(hit=False)
            return None
        self._disk_probe(hit=True)
        self.memory.put(key, outcome)
        return served

    def _validated(self, outcome):
        from ..core.engine import TaskOutcome  # lazy: core imports sched

        if not isinstance(outcome, TaskOutcome):
            return None
        # replace() also rejects pre-refactor pickles missing newer fields.
        return self._served(outcome)

    @staticmethod
    def _evict(path: Path) -> None:
        """Best-effort removal of an unusable cache entry."""
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - racing unlink / read-only store
            pass

    def put(self, key: str | None, outcome) -> None:
        if key is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(outcome, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic publish; concurrent writers converge
        self.memory.put(key, outcome)

    def info(self) -> dict:
        """Summary of both tiers: the disk store plus the memory LRU.

        The top-level ``root`` / ``entries`` / ``bytes`` keys describe the
        on-disk tier, with ``disk_hits`` / ``disk_misses`` counting probes
        that fell through the memory LRU; ``memory`` adds the hot tier's
        entry count, hit/miss/eviction counters and the number of
        single-flight waits the cache's flight registry absorbed.
        """
        entries = 0
        size = 0
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                try:
                    size += path.stat().st_size
                except OSError:  # pragma: no cover - racing eviction
                    continue
                entries += 1
        with self._counter_lock:
            disk_hits, disk_misses = self.disk_hits, self.disk_misses
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": size,
            "disk_hits": disk_hits,
            "disk_misses": disk_misses,
            "memory": {**self.memory.info(),
                       "single_flight_waits": self.flights.waits},
        }

    def clear(self) -> int:
        """Delete every cached entry (both tiers); returns the number of
        disk entries removed.

        Also sweeps ``*.tmp.*`` leftovers from interrupted :meth:`put` calls
        (they are not counted — they were never published entries).
        """
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.root.glob("*/*.tmp.*"):
                path.unlink(missing_ok=True)
        self.memory.clear()
        return removed
