"""Compound batched task solving: many small ILPs, one backend call.

The DRMT "burst" idiom applied to the evaluation grid: the engine's cache
misses are mostly small independent ILPs (one reference or ADVBIST model
per task), and launching a backend per model wastes most of the wall on
per-call overhead.  :func:`solve_task_batch` packs a list of such tasks
into one block-diagonal compound model via
:func:`repro.ilp.model.solve_models`, solves it in a single backend call
and lifts the per-task designs and stats back exactly.

What may batch (:func:`batchable_chain`): singleton warm-start chains of
ILP tasks carrying no incumbent hint.  Heuristic baselines never touch a
backend, multi-task chains thread incumbents serially (hints do not
compose across independent blocks), and hinted singletons would lose
their cutoff — all of those keep the ordinary executor path.  Batching is
exact: per-task objectives, optimality proofs and decoded designs are
identical to the serial path.
"""

from __future__ import annotations

from typing import Sequence

from ..ilp.model import solve_models

#: Task kinds lowered to an ILP model (batchable); baselines are not.
_ILP_KINDS = ("reference", "advbist")


def batchable_chain(chain) -> bool:
    """Whether a :class:`~repro.core.engine.TaskChain` may join a batch.

    True exactly for singleton, hint-free ILP chains: the compound solve
    is hint-free and unordered, so anything relying on chain order or
    incumbent threading must stay on the executor path.
    """
    return (len(chain.tasks) == 1
            and chain.hints[0] is None
            and chain.tasks[0].kind in _ILP_KINDS)


def _formulation_for(task):
    from ..core.formulation import AdvBistFormulation
    from ..core.reference import ReferenceFormulation

    if task.kind == "reference":
        return ReferenceFormulation(task.graph, task.cost_model, task.options)
    if task.kind == "advbist":
        return AdvBistFormulation(task.graph, task.k, task.cost_model,
                                  task.options)
    from ..core.engine import EngineError

    raise EngineError(f"task {task.label()!r} is not batchable "
                      f"(kind {task.kind!r})")


def solve_task_batch(tasks: Sequence) -> list:
    """Solve ILP tasks as one compound backend call; one outcome per task.

    Every task must share the engine's backend / time limit / presolve
    configuration (the engine guarantees this — tasks are materialised
    with the configuration baked in).  Failure semantics match the serial
    :func:`~repro.core.engine._execute_task`: a task whose block came back
    without a usable design raises :class:`~repro.core.formulation.FormulationError`.
    """
    from ..core.engine import TaskOutcome  # lazy: core imports sched
    from ..core.formulation import FormulationError

    if not tasks:
        return []
    formulations = [_formulation_for(task) for task in tasks]
    first = tasks[0]
    solutions = solve_models([f.model for f in formulations],
                             backend=first.backend,
                             time_limit=first.time_limit,
                             presolve=first.presolve,
                             cuts=first.cuts)
    outcomes = []
    for task, formulation, solution in zip(tasks, formulations, solutions):
        design = (formulation.extract_design(solution)
                  if solution.status.has_solution else None)
        if design is None:
            raise FormulationError(
                f"batched synthesis of {task.label()!r} failed: "
                f"{solution.status.value}")
        outcomes.append(TaskOutcome(design=design, stats=solution.stats,
                                    wall_seconds=solution.solve_seconds))
    return outcomes
