"""Module (functional unit) binding for scheduled DFGs.

The paper assumes module assignment has already been performed and is kept
identical across all four compared synthesis systems.  This module provides
that shared assignment: every operation is bound to a functional module of its
class such that no module executes two operations in the same control step,
using the minimum number of modules (one per unit of peak concurrency).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.analysis import minimum_module_counts
from ..dfg.graph import DataFlowGraph, DFGError


@dataclass(frozen=True)
class ModuleInfo:
    """A functional module of the bound data path."""

    module_id: int
    module_class: str
    operations: tuple[int, ...]


@dataclass
class ModuleBinding:
    """Result of module binding: per-operation module ids plus module info."""

    binding: dict[int, int]
    modules: list[ModuleInfo]

    def apply(self, graph: DataFlowGraph) -> DataFlowGraph:
        """Return a copy of ``graph`` carrying this module binding."""
        return graph.with_module_binding(self.binding)

    @property
    def module_count(self) -> int:
        return len(self.modules)


def bind_modules(
    graph: DataFlowGraph,
    first_module_id: int | None = None,
    extra_modules: dict[str, int] | None = None,
) -> ModuleBinding:
    """Bind every operation of a scheduled DFG to a functional module.

    A round-robin left-edge style binding: operations of each class are
    processed in control-step order and placed on the lowest-numbered module
    of that class that is free in their step.  The number of modules per class
    defaults to the minimum (peak concurrency); ``extra_modules`` can add
    spare units per class for ablation studies.

    Parameters
    ----------
    graph:
        A scheduled DFG.
    first_module_id:
        Identifier of the first module.  The paper numbers modules after the
        registers (Fig. 1 uses registers 0..2 and modules 3..4); by default
        module ids start at 0 and the data-path layer renumbers as needed.
    extra_modules:
        Additional modules per class beyond the minimum.
    """
    if not graph.is_scheduled:
        raise DFGError("module binding requires a scheduled DFG")

    extra_modules = extra_modules or {}
    counts = minimum_module_counts(graph)
    for cls, extra in extra_modules.items():
        counts[cls] = counts.get(cls, 0) + int(extra)

    next_id = 0 if first_module_id is None else int(first_module_id)
    module_ids: dict[str, list[int]] = {}
    for cls in sorted(counts):
        module_ids[cls] = list(range(next_id, next_id + counts[cls]))
        next_id += counts[cls]

    busy: dict[int, set[int]] = {m: set() for ids in module_ids.values() for m in ids}
    binding: dict[int, int] = {}
    for cstep in graph.control_steps:
        for op_id in graph.operations_in_step(cstep):
            cls = graph.operations[op_id].module_class
            placed = False
            for module in module_ids.get(cls, []):
                if cstep not in busy[module]:
                    binding[op_id] = module
                    busy[module].add(cstep)
                    placed = True
                    break
            if not placed:
                raise DFGError(
                    f"no free module of class {cls!r} for operation {op_id} "
                    f"in control step {cstep}"
                )

    modules = []
    for cls in sorted(module_ids):
        for module in module_ids[cls]:
            ops = tuple(sorted(o for o, m in binding.items() if m == module))
            if ops:
                modules.append(ModuleInfo(module, cls, ops))
    # Drop modules that ended up unused (possible when extra_modules > needed).
    used_ids = {m.module_id for m in modules}
    binding = {o: m for o, m in binding.items() if m in used_ids}
    return ModuleBinding(binding=binding, modules=modules)
