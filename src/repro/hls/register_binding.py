"""Register binding (variable → register assignment) heuristics.

The ADVBIST core leaves register assignment to the ILP; these heuristics are
needed for three other purposes:

* producing the *fixed* register assignment used by the ablation study
  (``fixed register binding + BIST ILP`` versus the paper's fully concurrent
  formulation),
* seeding the baseline methods (ADVAN / RALLOC / BITS), which all start from
  a conventional register allocation, and
* providing a quick feasible assignment to validate cost accounting against.

Two classic algorithms are implemented:

* :func:`left_edge_binding` — the left-edge algorithm over variable lifetimes
  (optimal in register count for interval conflicts);
* :func:`coloring_binding` — greedy colouring of an arbitrary conflict graph,
  used when extra conflict edges (e.g. RALLOC's self-adjacency edges) make
  the problem non-interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..dfg.analysis import (
    PrimaryInputPolicy,
    incompatibility_graph,
    variable_lifetimes,
)
from ..dfg.graph import DataFlowGraph


@dataclass
class RegisterBinding:
    """A variable → register assignment.

    Attributes
    ----------
    assignment:
        Mapping from variable id to register id (0-based, dense).
    register_count:
        Number of registers used.
    """

    assignment: dict[int, int]
    register_count: int

    def registers(self) -> dict[int, list[int]]:
        """Map each register to the sorted list of variables it holds."""
        grouping: dict[int, list[int]] = {}
        for var_id, reg in self.assignment.items():
            grouping.setdefault(reg, []).append(var_id)
        return {reg: sorted(vars_) for reg, vars_ in sorted(grouping.items())}


def left_edge_binding(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> RegisterBinding:
    """Left-edge register allocation over variable lifetimes.

    Variables are sorted by birth boundary; each is placed in the
    lowest-numbered register whose latest death precedes the variable's
    birth.  For interval lifetimes this uses the minimum number of registers
    (the maximal horizontal crossing).
    """
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    order = sorted(lifetimes, key=lambda v: (lifetimes[v].birth, lifetimes[v].death, v))

    register_last_death: list[int] = []
    assignment: dict[int, int] = {}
    for var_id in order:
        lifetime = lifetimes[var_id]
        placed = False
        for reg, last_death in enumerate(register_last_death):
            if last_death < lifetime.birth:
                assignment[var_id] = reg
                register_last_death[reg] = lifetime.death
                placed = True
                break
        if not placed:
            assignment[var_id] = len(register_last_death)
            register_last_death.append(lifetime.death)
    return RegisterBinding(assignment=assignment, register_count=len(register_last_death))


def coloring_binding(
    graph: DataFlowGraph,
    extra_conflicts: list[tuple[int, int]] | None = None,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
    strategy: str = "saturation_largest_first",
) -> RegisterBinding:
    """Register allocation by greedy colouring of the conflict graph.

    Parameters
    ----------
    graph:
        Scheduled DFG.
    extra_conflicts:
        Additional variable pairs that must not share a register (e.g. the
        self-adjacency pairs used by RALLOC).  Self-loops are ignored.
    strategy:
        Colouring strategy passed to :func:`networkx.greedy_color` (DSATUR by
        default, which is what Avra's conflict-graph method effectively does).
    """
    conflict = incompatibility_graph(graph, primary_input_policy)
    for u, v in (extra_conflicts or []):
        if u != v and u in conflict and v in conflict:
            conflict.add_edge(u, v)
    coloring = nx.greedy_color(conflict, strategy=strategy)
    # Re-number colours densely and deterministically by first appearance.
    remap: dict[int, int] = {}
    assignment: dict[int, int] = {}
    for var_id in sorted(coloring):
        colour = coloring[var_id]
        if colour not in remap:
            remap[colour] = len(remap)
        assignment[var_id] = remap[colour]
    return RegisterBinding(assignment=assignment, register_count=len(remap))
