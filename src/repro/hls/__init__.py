"""High-level-synthesis substrate: scheduling, module binding, register binding.

This subpackage reconstructs the front-end the paper obtained from HYPER:
given a behavioural DFG it produces the scheduled, module-bound graphs the
BIST synthesis methods operate on, plus conventional register bindings used
by the baselines and ablations.
"""

from .scheduling import (
    ScheduleResult,
    alap_schedule,
    asap_schedule,
    force_directed_hint,
    list_schedule,
    mobility,
)
from .module_binding import ModuleBinding, ModuleInfo, bind_modules
from .register_binding import RegisterBinding, coloring_binding, left_edge_binding
from .frontend import FrontEndResult, elaborate

__all__ = [
    "ScheduleResult",
    "alap_schedule",
    "asap_schedule",
    "force_directed_hint",
    "list_schedule",
    "mobility",
    "ModuleBinding",
    "ModuleInfo",
    "bind_modules",
    "RegisterBinding",
    "coloring_binding",
    "left_edge_binding",
    "FrontEndResult",
    "elaborate",
]
