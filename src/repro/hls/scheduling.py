"""Operation scheduling for data flow graphs.

The paper assumes DFGs whose *scheduling and module assignment have been
completed* (section 2).  The original benchmarks were scheduled with HYPER,
which is not available, so this module provides the standard algorithms used
to reconstruct comparable schedules:

* :func:`asap_schedule` / :func:`alap_schedule` — unconstrained earliest /
  latest schedules and operation mobility;
* :func:`list_schedule` — resource-constrained list scheduling, the workhorse
  used by :mod:`repro.circuits` to produce the benchmark schedules;
* :func:`force_directed_hint` — a light-weight distribution-graph heuristic
  used as a tie-breaker to smooth register pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..dfg.graph import DataFlowGraph, DFGError


def _dependency_lists(graph: DataFlowGraph) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Return (predecessors, successors) between operations."""
    preds: dict[int, list[int]] = {o: [] for o in graph.operation_ids}
    succs: dict[int, list[int]] = {o: [] for o in graph.operation_ids}
    for op in graph.operations.values():
        for _port, var_id in op.variable_inputs:
            producer = graph.variables[var_id].producer
            if producer is not None:
                preds[op.op_id].append(producer)
                succs[producer].append(op.op_id)
    return preds, succs


def asap_schedule(graph: DataFlowGraph) -> dict[int, int]:
    """As-soon-as-possible schedule (single-cycle operations)."""
    preds, _succs = _dependency_lists(graph)
    schedule: dict[int, int] = {}
    remaining = set(graph.operation_ids)
    while remaining:
        progressed = False
        for op_id in sorted(remaining):
            if all(p in schedule for p in preds[op_id]):
                schedule[op_id] = (
                    max((schedule[p] + 1 for p in preds[op_id]), default=0)
                )
                remaining.discard(op_id)
                progressed = True
        if not progressed:
            raise DFGError("cannot schedule DFG: dependency cycle detected")
    return schedule


def alap_schedule(graph: DataFlowGraph, latency: int | None = None) -> dict[int, int]:
    """As-late-as-possible schedule for a given latency (default: ASAP length)."""
    asap = asap_schedule(graph)
    if latency is None:
        latency = max(asap.values(), default=-1) + 1
    min_latency = max(asap.values(), default=-1) + 1
    if latency < min_latency:
        raise DFGError(f"latency {latency} below critical path {min_latency}")

    _preds, succs = _dependency_lists(graph)
    schedule: dict[int, int] = {}
    remaining = set(graph.operation_ids)
    while remaining:
        progressed = False
        for op_id in sorted(remaining, reverse=True):
            if all(s in schedule for s in succs[op_id]):
                schedule[op_id] = min(
                    (schedule[s] - 1 for s in succs[op_id]), default=latency - 1
                )
                remaining.discard(op_id)
                progressed = True
        if not progressed:
            raise DFGError("cannot schedule DFG: dependency cycle detected")
    return schedule


def mobility(graph: DataFlowGraph, latency: int | None = None) -> dict[int, int]:
    """Scheduling freedom (ALAP minus ASAP step) of every operation."""
    asap = asap_schedule(graph)
    alap = alap_schedule(graph, latency)
    return {o: alap[o] - asap[o] for o in graph.operation_ids}


@dataclass
class ScheduleResult:
    """Outcome of resource-constrained scheduling."""

    schedule: dict[int, int]
    latency: int
    resource_limits: dict[str, int]

    def apply(self, graph: DataFlowGraph) -> DataFlowGraph:
        """Return a copy of ``graph`` carrying this schedule."""
        return graph.with_schedule(self.schedule)


def list_schedule(
    graph: DataFlowGraph,
    resource_limits: Mapping[str, int],
    max_latency: int | None = None,
) -> ScheduleResult:
    """Resource-constrained list scheduling.

    Operations are scheduled control step by control step.  At each step the
    ready operations are ranked by decreasing criticality (smallest mobility
    first, then longest path to a sink) and greedily packed into the available
    functional units of their class.

    Parameters
    ----------
    graph:
        Unscheduled (or to-be-rescheduled) DFG.
    resource_limits:
        Maximum number of concurrently usable modules per functional class,
        e.g. ``{"alu": 1, "mult": 2}``.  Classes missing from the mapping are
        unconstrained.
    max_latency:
        Optional safety bound; scheduling failing to finish within it raises.
    """
    preds, succs = _dependency_lists(graph)
    asap = asap_schedule(graph)
    critical_length = _path_to_sink(graph, succs)

    unscheduled = set(graph.operation_ids)
    schedule: dict[int, int] = {}
    cstep = 0
    limit = max_latency if max_latency is not None else 4 * (len(graph.operation_ids) + 1)

    while unscheduled:
        if cstep > limit:
            raise DFGError(
                f"list scheduling exceeded the latency bound of {limit} control steps"
            )
        ready = [
            op_id for op_id in sorted(unscheduled)
            if all(p in schedule and schedule[p] < cstep for p in preds[op_id])
        ]
        ready.sort(key=lambda o: (-critical_length[o], asap[o], o))
        used: dict[str, int] = {}
        for op_id in ready:
            cls = graph.operations[op_id].module_class
            cap = resource_limits.get(cls)
            if cap is not None and used.get(cls, 0) >= cap:
                continue
            schedule[op_id] = cstep
            used[cls] = used.get(cls, 0) + 1
            unscheduled.discard(op_id)
        cstep += 1

    latency = max(schedule.values(), default=-1) + 1
    return ScheduleResult(schedule=schedule, latency=latency,
                          resource_limits=dict(resource_limits))


def force_directed_hint(graph: DataFlowGraph, latency: int | None = None) -> dict[int, float]:
    """Average distribution-graph pressure per operation (tie-break heuristic).

    For each operation we compute the average, over its mobility window, of
    the expected number of same-class operations competing for the same
    control step.  Lower is better: operations in crowded windows are more
    urgent.  This is a simplified force-directed-scheduling force term.
    """
    asap = asap_schedule(graph)
    alap = alap_schedule(graph, latency)
    horizon = max(alap.values(), default=-1) + 1

    # probability-weighted distribution graph per class
    distribution: dict[str, list[float]] = {}
    for op_id in graph.operation_ids:
        cls = graph.operations[op_id].module_class
        window = range(asap[op_id], alap[op_id] + 1)
        weight = 1.0 / len(window)
        row = distribution.setdefault(cls, [0.0] * horizon)
        for step in window:
            row[step] += weight

    pressure: dict[int, float] = {}
    for op_id in graph.operation_ids:
        cls = graph.operations[op_id].module_class
        window = range(asap[op_id], alap[op_id] + 1)
        row = distribution[cls]
        pressure[op_id] = sum(row[step] for step in window) / len(window)
    return pressure


def _path_to_sink(graph: DataFlowGraph, succs: dict[int, list[int]]) -> dict[int, int]:
    """Length of the longest dependency path from each operation to any sink."""
    length: dict[int, int] = {}

    order = list(reversed(_topological_order(graph, succs)))
    for op_id in order:
        if not succs[op_id]:
            length[op_id] = 0
        else:
            length[op_id] = 1 + max(length[s] for s in succs[op_id])
    return length


def _topological_order(graph: DataFlowGraph, succs: dict[int, list[int]]) -> list[int]:
    indegree = {o: 0 for o in graph.operation_ids}
    for op_id, nexts in succs.items():
        for nxt in nexts:
            indegree[nxt] += 1
    frontier = sorted(o for o, deg in indegree.items() if deg == 0)
    order: list[int] = []
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for nxt in succs[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                frontier.append(nxt)
        frontier.sort()
    if len(order) != len(graph.operation_ids):
        raise DFGError("topological order failed: dependency cycle detected")
    return order
