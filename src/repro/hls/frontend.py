"""The HLS front end: behavioural DFG → synthesizer-ready DFG in one call.

The BIST synthesizers (ADVBIST, the reference ILP, the three baselines) all
require a *scheduled and module-bound* DFG.  The seven benchmark circuits
arrive in that state from their builders; user circuits loaded from JSON
(``repro synth``) and fuzzer-generated circuits may arrive behavioural.
:func:`elaborate` closes the gap:

* an unscheduled graph is list-scheduled under the given functional-unit
  budget (:func:`repro.hls.scheduling.list_schedule`);
* an unbound graph gets the shared minimum module binding
  (:func:`repro.hls.module_binding.bind_modules`);
* a left-edge register binding is computed as a front-end summary (the ILPs
  re-derive register assignment themselves; the heuristic count is the
  conventional-allocation yardstick shown to the user).

Graphs that are already scheduled/bound pass through untouched, so the
function is idempotent and safe to call on registry circuits too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..dfg.graph import DataFlowGraph, DFGError
from .module_binding import ModuleBinding, bind_modules
from .register_binding import RegisterBinding, left_edge_binding
from .scheduling import ScheduleResult, list_schedule


@dataclass
class FrontEndResult:
    """Outcome of :func:`elaborate`: the prepared graph plus what was done."""

    graph: DataFlowGraph
    schedule: ScheduleResult | None = None
    module_binding: ModuleBinding | None = None
    register_binding: RegisterBinding | None = None

    @property
    def scheduled_here(self) -> bool:
        return self.schedule is not None

    @property
    def bound_here(self) -> bool:
        return self.module_binding is not None

    def summary(self) -> dict:
        """Compact front-end report (used by ``repro synth``)."""
        graph = self.graph
        return {
            "circuit": graph.name,
            "operations": len(graph),
            "control_steps": len(graph.control_steps),
            "modules": len(graph.module_ids),
            "left_edge_registers": (self.register_binding.register_count
                                    if self.register_binding else None),
            "scheduled_here": self.scheduled_here,
            "bound_here": self.bound_here,
        }


def elaborate(
    graph: DataFlowGraph,
    resource_limits: Mapping[str, int] | None = None,
    max_latency: int | None = None,
) -> FrontEndResult:
    """Run the front-end pipeline on ``graph`` as far as it needs.

    Parameters
    ----------
    graph:
        Behavioural, partially prepared, or fully prepared DFG.
    resource_limits:
        Functional-unit budget per module class for list scheduling (classes
        missing from the mapping are unconstrained).  Only consulted when the
        graph still needs scheduling.
    max_latency:
        Optional latency bound handed to the list scheduler.

    Raises
    ------
    DFGError
        If the graph is empty or structurally invalid.
    """
    if not len(graph):
        raise DFGError(f"circuit {graph.name!r} has no operations")
    graph.validate()

    schedule: ScheduleResult | None = None
    if not graph.is_scheduled:
        schedule = list_schedule(graph, dict(resource_limits or {}),
                                 max_latency=max_latency)
        graph = schedule.apply(graph)

    module_binding: ModuleBinding | None = None
    if not graph.is_module_bound:
        module_binding = bind_modules(graph)
        graph = module_binding.apply(graph)

    register_binding = left_edge_binding(graph)
    return FrontEndResult(
        graph=graph,
        schedule=schedule,
        module_binding=module_binding,
        register_binding=register_binding,
    )
