"""The presolve pipeline: rewrite a lowered :class:`MatrixForm` before solving.

ADVBIST models arrive at the backends with structure the formulations cannot
help emitting: symmetry-reduction pins (``x == 1`` equality rows), forced
zero-wire rows (``z == 0``), and clique constraints that repeat or dominate
one another across clock boundaries.  :func:`presolve_form` runs a small
fixpoint loop of exact reductions over the CSR lowering:

* **variable fixing** — singleton equality rows (the pin assignments of
  section 3.5 and the ``fixed_register_assignment`` ablation) and *forcing*
  inequality rows whose minimum activity already equals the right-hand side
  fix variables outright; fixed columns are substituted out of the matrices
  and their objective contribution folded into the offset;
* **bound tightening** — singleton inequality rows become variable bounds,
  and integer bounds are rounded to the nearest enclosed integers;
* **duplicate/dominated row elimination** — inequality rows equal up to a
  positive scale keep only the tightest right-hand side, and equality rows
  equal up to any nonzero scale collapse (conflicting copies prove
  infeasibility).

Every reduction is *exact*: the returned :class:`PresolvedModel` lifts a
solution of the reduced model back to the original variable space with the
identical objective value, so presolve can never change a reported table —
only how fast it is produced.  Per-pass counts are recorded in
:class:`PresolveStats` and surface in ``SolveStats.presolve``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np
from scipy import sparse

from ..ilp.model import MatrixForm
from ..ilp.solution import Solution, SolveStats, SolveStatus

_TOL = 1e-9
#: Decimal places used when hashing normalised row coefficients.
_ROW_KEY_DECIMALS = 9
#: Hard cap on fixpoint rounds; real models converge in a handful.
_MAX_ROUNDS = 25


class PresolveError(ValueError):
    """Raised for inputs the presolver cannot meaningfully process."""


@dataclass
class PassStats:
    """Effect of one presolve pass in one fixpoint round."""

    name: str
    round: int
    fixed_variables: int = 0
    tightened_bounds: int = 0
    removed_rows: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.fixed_variables or self.tightened_bounds or self.removed_rows)

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "round": self.round,
            "fixed_variables": self.fixed_variables,
            "tightened_bounds": self.tightened_bounds,
            "removed_rows": self.removed_rows,
        }


@dataclass
class PresolveStats:
    """Aggregate presolve effect: model shrinkage plus the per-pass trail."""

    original_variables: int = 0
    original_rows: int = 0
    reduced_variables: int = 0
    reduced_rows: int = 0
    rounds: int = 0
    wall_seconds: float = 0.0
    passes: list[PassStats] = field(default_factory=list)

    @property
    def fixed_variables(self) -> int:
        return sum(p.fixed_variables for p in self.passes)

    @property
    def tightened_bounds(self) -> int:
        return sum(p.tightened_bounds for p in self.passes)

    @property
    def removed_rows(self) -> int:
        return sum(p.removed_rows for p in self.passes)

    def as_dict(self) -> dict:
        return {
            "original_variables": self.original_variables,
            "original_rows": self.original_rows,
            "reduced_variables": self.reduced_variables,
            "reduced_rows": self.reduced_rows,
            "fixed_variables": self.fixed_variables,
            "tightened_bounds": self.tightened_bounds,
            "removed_rows": self.removed_rows,
            "rounds": self.rounds,
            "wall_seconds": round(self.wall_seconds, 6),
            "passes": [p.as_dict() for p in self.passes if p.changed],
        }


@dataclass
class PresolvedModel:
    """A reduced model plus everything needed to lift solutions back.

    Attributes
    ----------
    original:
        The :class:`MatrixForm` handed to :func:`presolve_form`.
    reduced:
        The reduced form (``None`` when presolve proved infeasibility or
        fixed every variable).  Its ``offset`` already folds in the objective
        contribution of the fixed variables, so a backend's objective value
        on the reduced form *is* the original objective value.
    fixed:
        Original column index → fixed value.
    kept:
        Reduced column index → original column index.
    stats:
        Per-pass :class:`PresolveStats`.
    infeasible:
        Presolve proved the original model has no feasible point.
    """

    original: MatrixForm
    reduced: MatrixForm | None
    fixed: dict[int, float]
    kept: list[int]
    stats: PresolveStats
    infeasible: bool = False

    @property
    def solved(self) -> bool:
        """Presolve fixed every variable (nothing left for a backend)."""
        return not self.infeasible and not self.kept

    # -- lift-back ------------------------------------------------------
    def lift_values(self, reduced_x: Iterable[float]) -> np.ndarray:
        """Full-space variable vector for a reduced-space assignment."""
        full = np.empty(len(self.original.variables), dtype=float)
        for reduced_index, original_index in enumerate(self.kept):
            full[original_index] = reduced_x[reduced_index]
        for original_index, value in self.fixed.items():
            full[original_index] = value
        return full

    def lift_solution(self, solution: Solution) -> Solution:
        """Re-key a reduced-model :class:`Solution` onto the original variables.

        The objective carries over untouched (the reduced offset already
        accounts for the fixed variables); only the ``values`` mapping is
        rebuilt in the original variable space.
        """
        if not solution.status.has_solution:
            return solution
        reduced_x = [solution.values.get(var, 0.0)
                     for var in (self.reduced.variables if self.reduced is not None else [])]
        full = self.lift_values(reduced_x)
        values = {}
        for var in self.original.variables:
            value = float(full[var.index])
            if self.original.integrality[var.index]:
                value = float(round(value))
            values[var] = value
        solution.values = values
        return solution

    def fixed_solution(self) -> Solution:
        """The (optimal) solution of a model presolve solved outright."""
        if not self.solved:
            raise PresolveError("fixed_solution() requires a fully presolved model")
        values = {}
        objective = float(self.original.offset)
        for var in self.original.variables:
            value = float(self.fixed[var.index])
            if self.original.integrality[var.index]:
                value = float(round(value))
            values[var] = value
            objective += float(self.original.c[var.index]) * value
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            message="presolve fixed every variable",
            stats=SolveStats(backend="presolve"),
        )

    def infeasible_solution(self) -> Solution:
        """The solution object reported when presolve proved infeasibility."""
        if not self.infeasible:
            raise PresolveError("infeasible_solution() requires a proven-infeasible model")
        return Solution(
            status=SolveStatus.INFEASIBLE,
            message="presolve proved infeasibility",
            stats=SolveStats(backend="presolve"),
        )


# ----------------------------------------------------------------------
# the working state of one presolve run
# ----------------------------------------------------------------------
class _Work:
    """Mutable matrices/bounds being reduced, plus the original→current maps."""

    def __init__(self, form: MatrixForm):
        self.c = np.asarray(form.c, dtype=float).copy()
        self.A_ub = sparse.csr_matrix(form.A_ub, dtype=float, copy=True)
        self.b_ub = np.asarray(form.b_ub, dtype=float).copy()
        self.A_eq = sparse.csr_matrix(form.A_eq, dtype=float, copy=True)
        self.b_eq = np.asarray(form.b_eq, dtype=float).copy()
        self.lower = np.array([lo for lo, _ in form.bounds], dtype=float)
        self.upper = np.array([hi for _, hi in form.bounds], dtype=float)
        self.integrality = np.asarray(form.integrality).astype(bool).copy()
        self.offset = float(form.offset)
        self.col_map = list(range(len(form.variables)))  # current col -> original col
        self.fixed: dict[int, float] = {}                # original col -> value
        self.infeasible = False

    @property
    def num_cols(self) -> int:
        return len(self.col_map)

    @property
    def num_rows(self) -> int:
        return self.A_ub.shape[0] + self.A_eq.shape[0]

    # -- row / column surgery ------------------------------------------
    def drop_ub_rows(self, drop: set[int]) -> None:
        if drop:
            keep = [i for i in range(self.A_ub.shape[0]) if i not in drop]
            self.A_ub = self.A_ub[keep]
            self.b_ub = self.b_ub[keep]

    def drop_eq_rows(self, drop: set[int]) -> None:
        if drop:
            keep = [i for i in range(self.A_eq.shape[0]) if i not in drop]
            self.A_eq = self.A_eq[keep]
            self.b_eq = self.b_eq[keep]

    def substitute_fixed_columns(self) -> int:
        """Remove every column whose bounds have collapsed to a point."""
        fixed_mask = (self.upper - self.lower) <= _TOL
        if not fixed_mask.any():
            return 0
        values = np.where(fixed_mask, self.lower, 0.0)
        # Move the fixed columns' contribution to the right-hand sides and
        # the objective offset, then cut the columns out.
        if self.A_ub.shape[0]:
            self.b_ub = self.b_ub - (self.A_ub @ values)
        if self.A_eq.shape[0]:
            self.b_eq = self.b_eq - (self.A_eq @ values)
        self.offset += float(self.c @ values)
        for col in np.nonzero(fixed_mask)[0]:
            self.fixed[self.col_map[col]] = float(self.lower[col])
        keep_mask = ~fixed_mask
        keep_cols = np.nonzero(keep_mask)[0]
        if self.A_ub.shape[0]:
            self.A_ub = sparse.csr_matrix(self.A_ub[:, keep_cols])
        else:
            self.A_ub = sparse.csr_matrix((0, len(keep_cols)))
        if self.A_eq.shape[0]:
            self.A_eq = sparse.csr_matrix(self.A_eq[:, keep_cols])
        else:
            self.A_eq = sparse.csr_matrix((0, len(keep_cols)))
        self.c = self.c[keep_mask]
        self.lower = self.lower[keep_mask]
        self.upper = self.upper[keep_mask]
        self.integrality = self.integrality[keep_mask]
        self.col_map = [self.col_map[i] for i in keep_cols]
        return int(fixed_mask.sum())

    # -- row views ------------------------------------------------------
    @staticmethod
    def _row_nnz(matrix: sparse.csr_matrix) -> np.ndarray:
        return np.diff(matrix.indptr)

    @staticmethod
    def _row_entries(matrix: sparse.csr_matrix, row: int):
        start, end = matrix.indptr[row], matrix.indptr[row + 1]
        return matrix.indices[start:end], matrix.data[start:end]


# ----------------------------------------------------------------------
# the passes
# ----------------------------------------------------------------------
def _pass_fix_variables(work: _Work, stats: PassStats) -> None:
    """Fix variables forced by singleton equality rows and forcing rows."""
    # Singleton equality rows: a * x == b  =>  x = b / a.
    drop_eq: set[int] = set()
    nnz = work._row_nnz(work.A_eq)
    for row in np.nonzero(nnz == 1)[0]:
        cols, data = work._row_entries(work.A_eq, int(row))
        col, coeff = int(cols[0]), float(data[0])
        if abs(coeff) <= _TOL:
            continue
        value = float(work.b_eq[row]) / coeff
        if work.integrality[col] and abs(value - round(value)) > 1e-6:
            work.infeasible = True
            return
        if value < work.lower[col] - 1e-6 or value > work.upper[col] + 1e-6:
            work.infeasible = True
            return
        if work.integrality[col]:
            value = float(round(value))
        if work.upper[col] - work.lower[col] > _TOL:
            stats.fixed_variables += 1
        work.lower[col] = work.upper[col] = value
        drop_eq.add(int(row))
    work.drop_eq_rows(drop_eq)
    stats.removed_rows += len(drop_eq)

    # Forcing inequality rows: when the minimum activity of a row already
    # equals its right-hand side, every variable in the row must sit at the
    # bound achieving that minimum (coeff > 0 at its lower, coeff < 0 at its
    # upper).  This is what turns `z1 + z2 <= 0` into two fixings.
    #
    # Candidate detection is one vectorised pass over the CSR nonzeros — the
    # per-nonzero minimum contribution scattered into per-row sums with
    # ``np.bincount`` — and only the handful of flagged rows are then
    # re-examined one by one.  The re-examination uses the *current* bounds:
    # a fixing made by an earlier forcing row changes later rows'
    # activities, and a stale value could fix variables a row no longer
    # forces — or miss the infeasibility those fixings created.  Fixings
    # only ever raise a row's minimum activity, so the snapshot can only
    # under-flag (a row *becoming* forcing mid-pass is caught by the next
    # fixpoint round) while every flagged row is re-verified exactly.
    if not work.A_ub.shape[0]:
        return
    coo = work.A_ub.tocoo()
    with np.errstate(invalid="ignore"):
        contrib = np.where(coo.data > 0,
                           coo.data * work.lower[coo.col],
                           coo.data * work.upper[coo.col])
    minact = np.bincount(coo.row, weights=contrib, minlength=work.A_ub.shape[0])
    finite = np.isfinite(minact)
    if np.any(finite & (minact > work.b_ub + 1e-6)):
        work.infeasible = True
        return
    candidates = np.nonzero(finite & (np.abs(minact - work.b_ub) <= _TOL))[0]
    drop_ub: set[int] = set()
    for row in candidates:
        row = int(row)
        cols, data = work._row_entries(work.A_ub, row)
        if len(cols) == 0:
            continue
        with np.errstate(invalid="ignore"):
            terms = np.where(data > 0, data * work.lower[cols],
                             data * work.upper[cols])
        activity = float(np.sum(terms))
        if not np.isfinite(activity):
            continue
        if activity > work.b_ub[row] + 1e-6:
            work.infeasible = True
            return
        if abs(activity - work.b_ub[row]) <= _TOL:
            for col, coeff in zip(cols, data):
                col = int(col)
                target = work.lower[col] if coeff > 0 else work.upper[col]
                if work.upper[col] - work.lower[col] > _TOL:
                    stats.fixed_variables += 1
                work.lower[col] = work.upper[col] = float(target)
            drop_ub.add(row)
    work.drop_ub_rows(drop_ub)
    stats.removed_rows += len(drop_ub)


def _pass_tighten_bounds(work: _Work, stats: PassStats) -> None:
    """Absorb singleton inequality rows into bounds; round integer bounds."""
    drop_ub: set[int] = set()
    nnz = work._row_nnz(work.A_ub)
    for row in np.nonzero(nnz == 1)[0]:
        cols, data = work._row_entries(work.A_ub, int(row))
        col, coeff = int(cols[0]), float(data[0])
        if abs(coeff) <= _TOL:
            continue
        bound = float(work.b_ub[row]) / coeff
        if coeff > 0:  # x <= bound
            if bound < work.upper[col] - _TOL:
                work.upper[col] = bound
                stats.tightened_bounds += 1
        else:  # x >= bound
            if bound > work.lower[col] + _TOL:
                work.lower[col] = bound
                stats.tightened_bounds += 1
        drop_ub.add(int(row))
    work.drop_ub_rows(drop_ub)
    stats.removed_rows += len(drop_ub)

    integral = work.integrality
    rounded_upper = np.where(integral, np.floor(work.upper + 1e-6), work.upper)
    rounded_lower = np.where(integral, np.ceil(work.lower - 1e-6), work.lower)
    stats.tightened_bounds += int(
        np.sum((rounded_upper < work.upper - _TOL) | (rounded_lower > work.lower + _TOL))
    )
    work.upper = rounded_upper
    work.lower = rounded_lower
    if np.any(work.lower > work.upper + 1e-6):
        work.infeasible = True


def _pass_remove_redundant_rows(work: _Work, stats: PassStats) -> None:
    """Drop empty, duplicate and positively-scaled dominated rows."""
    # Inequality rows: normalise by the largest |coefficient| (a positive
    # scale preserves <=), then rows sharing a coefficient pattern keep only
    # the smallest normalised right-hand side.
    drop_ub: set[int] = set()
    best_rhs: dict[bytes, tuple[float, int]] = {}
    # Normalise every row in one vectorised sweep (per-row max |coefficient|
    # via ``np.maximum.reduceat``, one division, one rounding); the Python
    # loop below only slices precomputed arrays into hashable keys.
    A = work.A_ub
    nnz_ub = work._row_nnz(A)
    if A.shape[0]:
        starts = A.indptr[:-1]
        scales = np.ones(A.shape[0])
        occupied = nnz_ub > 0
        if A.indices.size:
            scales[occupied] = np.maximum.reduceat(
                np.abs(A.data), starts[occupied])
        normalised = np.round(A.data / np.repeat(scales, nnz_ub),
                              _ROW_KEY_DECIMALS)
        rhs_norm = work.b_ub / scales
    for row in range(work.A_ub.shape[0]):
        if nnz_ub[row] == 0:
            if work.b_ub[row] < -1e-6:
                work.infeasible = True
                return
            drop_ub.add(row)
            continue
        start, end = A.indptr[row], A.indptr[row + 1]
        key = (A.indices[start:end].tobytes()
               + normalised[start:end].tobytes())
        rhs = float(rhs_norm[row])
        seen = best_rhs.get(key)
        if seen is None:
            best_rhs[key] = (rhs, row)
        elif rhs < seen[0] - _TOL:
            drop_ub.add(seen[1])
            best_rhs[key] = (rhs, row)
        else:
            drop_ub.add(row)
    work.drop_ub_rows(drop_ub)
    stats.removed_rows += len(drop_ub)

    # Equality rows: normalise by the first coefficient (any nonzero scale
    # preserves ==); identical patterns with matching right-hand sides are
    # duplicates, with different right-hand sides they prove infeasibility.
    drop_eq: set[int] = set()
    seen_eq: dict[bytes, float] = {}
    E = work.A_eq
    nnz_eq = work._row_nnz(E)
    if E.shape[0]:
        eq_scales = np.ones(E.shape[0])
        eq_occupied = nnz_eq > 0
        if E.indices.size:
            eq_scales[eq_occupied] = E.data[E.indptr[:-1][eq_occupied]]
        eq_normalised = np.round(E.data / np.repeat(eq_scales, nnz_eq),
                                 _ROW_KEY_DECIMALS)
        eq_rhs_norm = work.b_eq / eq_scales
    for row in range(work.A_eq.shape[0]):
        if nnz_eq[row] == 0:
            if abs(work.b_eq[row]) > 1e-6:
                work.infeasible = True
                return
            drop_eq.add(row)
            continue
        start, end = E.indptr[row], E.indptr[row + 1]
        key = (E.indices[start:end].tobytes()
               + eq_normalised[start:end].tobytes())
        rhs = float(eq_rhs_norm[row])
        if key in seen_eq:
            if abs(seen_eq[key] - rhs) > 1e-6:
                work.infeasible = True
                return
            drop_eq.add(row)
        else:
            seen_eq[key] = rhs
    work.drop_eq_rows(drop_eq)
    stats.removed_rows += len(drop_eq)


_PASSES = (
    ("fix_variables", _pass_fix_variables),
    ("tighten_bounds", _pass_tighten_bounds),
    ("remove_redundant_rows", _pass_remove_redundant_rows),
)


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def presolve_form(form: MatrixForm) -> PresolvedModel:
    """Run the presolve fixpoint loop on one lowered model.

    The reduced :class:`MatrixForm` matches the input's storage (sparse in,
    sparse out; dense in, dense out) so any backend can consume it.
    """
    start = time.perf_counter()
    work = _Work(form)
    stats = PresolveStats(
        original_variables=len(form.variables),
        original_rows=work.num_rows,
    )

    for round_number in range(1, _MAX_ROUNDS + 1):
        round_changed = False
        for name, run_pass in _PASSES:
            pass_stats = PassStats(name=name, round=round_number)
            run_pass(work, pass_stats)
            if pass_stats.changed:
                stats.passes.append(pass_stats)
                round_changed = True
            if work.infeasible:
                stats.rounds = round_number
                stats.wall_seconds = time.perf_counter() - start
                return PresolvedModel(original=form, reduced=None, fixed=dict(work.fixed),
                                      kept=[], stats=stats, infeasible=True)
        if work.substitute_fixed_columns():
            round_changed = True
        stats.rounds = round_number
        if not round_changed:
            break

    # The round cap can end the loop right after a substitution emptied the
    # model: the leftover (now empty) rows were never feasibility-checked by
    # a following pass, so verify them before declaring the model solved.
    if not work.col_map and (
            np.any(work.b_ub < -1e-6) or np.any(np.abs(work.b_eq) > 1e-6)):
        work.infeasible = True
    if work.infeasible:
        stats.wall_seconds = time.perf_counter() - start
        return PresolvedModel(original=form, reduced=None, fixed=dict(work.fixed),
                              kept=[], stats=stats, infeasible=True)

    reduced = _reduced_form(form, work)
    stats.reduced_variables = work.num_cols
    stats.reduced_rows = work.num_rows
    stats.wall_seconds = time.perf_counter() - start
    return PresolvedModel(
        original=form,
        reduced=reduced,
        fixed=dict(work.fixed),
        kept=list(work.col_map),
        stats=stats,
    )


def _reduced_form(form: MatrixForm, work: _Work) -> MatrixForm | None:
    """Assemble the reduced MatrixForm (None when every variable was fixed)."""
    if not work.col_map:
        return None
    variables = [
        replace(form.variables[original], index=i,
                lower=float(work.lower[i]), upper=float(work.upper[i]))
        for i, original in enumerate(work.col_map)
    ]
    A_ub: sparse.csr_matrix | np.ndarray = work.A_ub
    A_eq: sparse.csr_matrix | np.ndarray = work.A_eq
    if not form.is_sparse:
        A_ub = A_ub.toarray()
        A_eq = A_eq.toarray()
    return MatrixForm(
        c=work.c,
        A_ub=A_ub,
        b_ub=work.b_ub,
        A_eq=A_eq,
        b_eq=work.b_eq,
        bounds=[(float(lo), float(hi)) for lo, hi in zip(work.lower, work.upper)],
        integrality=work.integrality.astype(int),
        variables=variables,
        offset=work.offset,
        tags=form.tags,
    )
