"""Win history powering the adaptive portfolio's backend prediction.

Racing every backend on one core is pure overhead: ``N`` arms contending for
the same CPU slow the eventual winner down ``~N``-fold.  The adaptive
portfolio instead predicts the winning arm per model *bucket* — the
power-of-two size class of ``(constraint rows, variables, sweep k)``,
specialised per circuit tag when one is stamped (:func:`bucket_keys`) — and
runs it alone, starting a single challenger only if the leader overruns its
expected wall time.

Three knowledge sources feed one :class:`WinHistory`:

* **committed priors** (``priors.json`` next to this module): calibration
  wins recorded on the paper circuits, regenerated with
  ``python -m repro.accel.history`` whenever the arms change;
* **live wins** recorded by every adaptive/racing solve in this process;
* **bench/obs ingestion** — :meth:`WinHistory.ingest` accepts the
  ``{"buckets": {...}}`` payload embedded in priors files and any external
  history dump (e.g. harvested from ``repro bench`` runs), merging the win
  counts and wall-time averages.

Prediction is deliberately conservative: a bucket with fewer than
``min_samples`` recorded wins predicts nothing, and callers must treat a
``None`` prediction (or a predicted arm that no longer exists) as "race
everything" — unknown territory falls back to the always-correct racing
portfolio, so a poisoned or stale history can cost time but never answers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock

from ..ilp.model import MatrixForm

_PRIORS_PATH = Path(__file__).with_name("priors.json")
_PRIORS_SCHEMA = 1


def bucket_of(form: MatrixForm) -> str:
    """The (rows, cols, k) size-class bucket of a lowering.

    Rows and columns are bucketed by bit length (power-of-two classes), so
    models of similar scale share a bucket; ``k`` comes from the
    formulation-stamped ``tags`` and is ``?`` when unknown (e.g. compound
    batched forms).
    """
    rows = int(form.A_ub.shape[0]) + int(form.A_eq.shape[0])
    cols = len(form.variables)
    k = (form.tags or {}).get("k", "?")
    return f"r{rows.bit_length()}c{cols.bit_length()}k{k}"


def bucket_keys(form: MatrixForm) -> tuple[str, ...]:
    """History keys for ``form``, most specific first.

    Two models can share a size class yet want different arms — presolved
    tseng and paulin both land in ``r10c10k3``, where plain HiGHS wins one
    and the warm-start arm the other — so a circuit-tagged key is consulted
    before the generic size bucket.  Wins are recorded under *every* key:
    the tagged entry gives repeat workloads an exact answer, the generic
    entry keeps covering circuits the history has never seen.
    """
    generic = bucket_of(form)
    circuit = (form.tags or {}).get("circuit")
    if circuit:
        return (f"{generic}@{circuit}", generic)
    return (generic,)


@dataclass
class ArmRecord:
    """Accumulated results of one backend inside one bucket."""

    wins: int = 0
    total_wall: float = 0.0

    @property
    def mean_wall(self) -> float:
        return self.total_wall / self.wins if self.wins else 0.0


@dataclass(frozen=True)
class Prediction:
    """The history's verdict for one bucket."""

    leader: str
    expected_wall: float
    challenger: str | None = None
    samples: int = 0


@dataclass
class WinHistory:
    """Per-bucket win counts and wall times with a conservative predictor."""

    min_samples: int = 2
    _buckets: dict[str, dict[str, ArmRecord]] = field(default_factory=dict)
    _lock: Lock = field(default_factory=Lock, repr=False)

    def record(self, bucket: str, backend: str, wall_seconds: float) -> None:
        """Record that ``backend`` won ``bucket`` in ``wall_seconds``."""
        with self._lock:
            arms = self._buckets.setdefault(bucket, {})
            arm = arms.setdefault(backend, ArmRecord())
            arm.wins += 1
            arm.total_wall += max(0.0, float(wall_seconds))

    def predict(self, bucket: str) -> Prediction | None:
        """The likely winner of ``bucket``, or ``None`` on thin history.

        The leader is the most-winning arm (mean wall time breaking ties);
        the challenger is the runner-up, when one exists.  Buckets with
        fewer than ``min_samples`` total wins predict nothing — the caller
        falls back to racing everything.
        """
        with self._lock:
            arms = self._buckets.get(bucket)
            if not arms:
                return None
            samples = sum(arm.wins for arm in arms.values())
            if samples < self.min_samples:
                return None
            ranked = sorted(arms.items(),
                            key=lambda item: (-item[1].wins, item[1].mean_wall))
            leader, record = ranked[0]
            challenger = ranked[1][0] if len(ranked) > 1 else None
            return Prediction(leader=leader, expected_wall=record.mean_wall,
                              challenger=challenger, samples=samples)

    # ------------------------------------------------------------------
    # persistence / ingestion
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        with self._lock:
            return {
                "schema": _PRIORS_SCHEMA,
                "buckets": {
                    bucket: {name: {"wins": arm.wins,
                                    "total_wall": round(arm.total_wall, 6)}
                             for name, arm in arms.items()}
                    for bucket, arms in self._buckets.items()
                },
            }

    def ingest(self, payload: dict) -> int:
        """Merge a ``{"buckets": ...}`` payload; returns records ingested.

        Malformed entries are skipped rather than raised — history is a
        performance hint, and a corrupt priors file must never break a
        solve.
        """
        ingested = 0
        buckets = payload.get("buckets")
        if not isinstance(buckets, dict):
            return 0
        for bucket, arms in buckets.items():
            if not isinstance(arms, dict):
                continue
            for backend, entry in arms.items():
                try:
                    wins = int(entry["wins"])
                    wall = float(entry.get("total_wall", 0.0))
                except (KeyError, TypeError, ValueError):
                    continue
                if wins <= 0:
                    continue
                with self._lock:
                    records = self._buckets.setdefault(str(bucket), {})
                    arm = records.setdefault(str(backend), ArmRecord())
                    arm.wins += wins
                    arm.total_wall += max(0.0, wall)
                ingested += wins
        return ingested

    def load_priors(self, path: Path | None = None) -> int:
        """Ingest the committed priors file (missing/corrupt ⇒ no-op)."""
        path = path or _PRIORS_PATH
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0
        return self.ingest(payload)


_GLOBAL: WinHistory | None = None
_GLOBAL_LOCK = Lock()


def get_history() -> WinHistory:
    """The process-wide history, with the committed priors pre-loaded."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = WinHistory()
            _GLOBAL.load_priors()
        return _GLOBAL


def reset_history(history: WinHistory | None = None) -> WinHistory:
    """Swap in a fresh (or supplied) history — the test/calibration hook."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = history if history is not None else WinHistory()
        return _GLOBAL


# ----------------------------------------------------------------------
# priors calibration (python -m repro.accel.history)
# ----------------------------------------------------------------------
def calibrate(arms: tuple[str, ...] = ("scipy", "scipy-cuts", "scipy-ws", "bnb"),
              circuits: tuple[str, ...] = ("fig1", "tseng", "paulin"),
              max_k: int = 3, time_limit: float = 30.0,
              weight: int = 2, presolve: bool = True,
              rounds: int = 2) -> WinHistory:
    """Run every arm serially per (circuit, k) and record the fastest.

    Serial timing (not racing) on purpose: on a single core a race measures
    contention, not solver speed.  Warm-start-capable arms receive the
    previous k's objective, mirroring how the sweep engine will call them.
    Each measured winner is recorded ``weight`` times (default: the
    predictor's ``min_samples``) so a committed prior is decisive on its
    own — the whole point of shipping priors is skipping the cold race.

    ``presolve=True`` times (and buckets) the *presolved* lowerings,
    because that is the form the adaptive backend sees on the accelerated
    path — presolve can shrink a model across a bucket boundary, and a
    prior for the raw bucket would then never be consulted.

    Each arm runs ``rounds`` times and is judged on its best wall —
    single-shot timings carry enough allocator/cache noise to crown the
    wrong winner.  Arms that failed, hit the limit, or came in over 3x
    the current best are not re-run: they cannot win, so repeat rounds
    only re-measure the contenders.
    """
    import time as _time

    from ..circuits import get_circuit
    from ..core.formulation import AdvBistFormulation
    from ..ilp.backends.registry import backend_info

    history = WinHistory()
    for name in circuits:
        hint: float | None = None
        for k in range(1, max_k + 1):
            graph = get_circuit(name)
            form = AdvBistFormulation(graph, k).model.to_matrix_form()
            if presolve:
                from .presolve import presolve_form
                reduced = presolve_form(form)
                if reduced.infeasible or reduced.solved:
                    continue  # nothing left for a backend to race on
                form = reduced.reduced
            keys = bucket_keys(form)
            walls: dict[str, float] = {}
            for round_index in range(max(1, rounds)):
                for arm in arms:
                    prior = walls.get(arm)
                    front = min(walls.values(), default=None)
                    if round_index and prior is None:
                        continue  # failed or limited out in round one
                    if round_index and front is not None and prior > 3.0 * front:
                        continue  # cannot win; don't pay for it again
                    info = backend_info(arm)
                    solver = info.create()
                    kwargs = {}
                    if hint is not None and info.supports_warm_start:
                        kwargs["incumbent_hint"] = hint
                    t0 = _time.perf_counter()
                    solution = solver.solve(form, time_limit=time_limit, **kwargs)
                    wall = _time.perf_counter() - t0
                    if solution.status.has_solution:
                        walls[arm] = wall if prior is None else min(wall, prior)
                    if (round_index == 0 and arm == arms[0]
                            and solution.objective is not None):
                        hint = solution.objective
            if walls:
                winner, wall = min(walls.items(), key=lambda item: item[1])
                for key in keys:
                    for _ in range(max(1, weight)):
                        history.record(key, winner, wall)
    return history


if __name__ == "__main__":  # pragma: no cover - calibration utility
    print(json.dumps(calibrate().as_dict(), indent=2, sort_keys=True))
