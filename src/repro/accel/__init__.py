"""Solver acceleration: presolve, cuts, portfolio backends, warm starts.

Cooperating pieces, all exact (they change wall-clock, never results):

* :mod:`repro.accel.presolve` — rewrites a lowered
  :class:`~repro.ilp.model.MatrixForm` before it reaches a backend (variable
  fixing, bound tightening, duplicate/dominated-row elimination) and lifts
  solutions of the reduced model back losslessly;
* :mod:`repro.accel.strategies` — the ``scipy-cuts`` (root cutting planes
  from :mod:`repro.ilp.cuts`) and ``scipy-ws`` (incumbent-hint objective
  cutoff with an exactness-preserving gap) strategy backends;
* :mod:`repro.accel.portfolio` — the ``portfolio`` registry backend racing
  backends with first-wins cancellation, and the ``adaptive`` backend that
  predicts the winner from :mod:`repro.accel.history` and runs it alone
  (plus one delayed challenger) instead of racing;
* warm-start plumbing — the branch and bound and ``scipy-ws`` accept an
  ``incumbent_hint`` objective cutoff, and
  :class:`repro.core.engine.SweepEngine` executes the ADVBIST tasks of a
  sweep in ascending ``k`` so each solve seeds the next one's incumbent (a
  design for ``k`` sessions embeds into the ``k + 1`` model, so its
  objective is a valid bound).

Enable presolve per solve (``Model.solve(presolve=True)``), per engine
(``SweepEngine(presolve=True)``), per job (``SweepJob(presolve=True)``) or
from the CLI (``repro sweep tseng --presolve``).
"""

from .history import WinHistory, bucket_keys, bucket_of, get_history, reset_history
from .portfolio import AdaptivePortfolioBackend, PortfolioBackend
from .presolve import (
    PassStats,
    PresolveError,
    PresolveStats,
    PresolvedModel,
    presolve_form,
)
from .strategies import ScipyCutsBackend, ScipyWarmStartBackend

__all__ = [
    "AdaptivePortfolioBackend",
    "PassStats",
    "PortfolioBackend",
    "PresolveError",
    "PresolveStats",
    "PresolvedModel",
    "ScipyCutsBackend",
    "ScipyWarmStartBackend",
    "WinHistory",
    "bucket_keys",
    "bucket_of",
    "get_history",
    "presolve_form",
    "reset_history",
]
