"""Solver acceleration: presolve, the racing portfolio backend, warm starts.

Three cooperating pieces, all exact (they change wall-clock, never results):

* :mod:`repro.accel.presolve` — rewrites a lowered
  :class:`~repro.ilp.model.MatrixForm` before it reaches a backend (variable
  fixing, bound tightening, duplicate/dominated-row elimination) and lifts
  solutions of the reduced model back losslessly;
* :mod:`repro.accel.portfolio` — the ``portfolio`` registry backend racing
  scipy/HiGHS against the pure-Python branch and bound with first-wins
  cancellation;
* warm-start plumbing — the branch and bound accepts an ``incumbent_hint``
  objective cutoff, and :class:`repro.core.engine.SweepEngine` executes the
  ADVBIST tasks of a sweep in ascending ``k`` so each solve seeds the next
  one's incumbent (a design for ``k`` sessions embeds into the ``k + 1``
  model, so its objective is a valid bound).

Enable presolve per solve (``Model.solve(presolve=True)``), per engine
(``SweepEngine(presolve=True)``), per job (``SweepJob(presolve=True)``) or
from the CLI (``repro sweep tseng --presolve``).
"""

from .portfolio import PortfolioBackend
from .presolve import (
    PassStats,
    PresolveError,
    PresolveStats,
    PresolvedModel,
    presolve_form,
)

__all__ = [
    "PassStats",
    "PortfolioBackend",
    "PresolveError",
    "PresolveStats",
    "PresolvedModel",
    "presolve_form",
]
