"""Strategy backends composing HiGHS with cuts and warm-start cutoffs.

Two additional registry backends, both exact wrappers around
:class:`~repro.ilp.backends.scipy_milp.ScipyMilpBackend`:

* ``scipy-cuts`` — runs the :mod:`repro.ilp.cuts` root cutting-plane loop
  (implication / clique / cover cuts over the ADVBIST packing structure)
  and hands the strengthened lowering to HiGHS.  Cuts only append valid
  rows, so the optimum is untouched; on formulations with weak aggregated
  OR rows the tightened root LP saves most of the branch-and-cut tree.
* ``scipy-ws`` — exploits a known-achievable ``incumbent_hint`` (the
  previous ``k``'s design in an ascending sweep) the way the branch and
  bound does: the hint becomes an explicit objective-cutoff row, and for
  integral objectives the MIP gap is loosened to just under one objective
  quantum — provably still exact (see :func:`repro.ilp.cuts.safe_hint_gap`)
  but the solver stops as soon as the bound is within one unit instead of
  grinding it fully closed.  A cutoff that turns out to be unachievable
  (the hint was wrong) triggers one clean re-solve without it, so a bad
  hint can cost time, never answers.

These are the non-trivial arms of the adaptive portfolio: which of plain
HiGHS, cuts, warm-start cutoff or the pure-Python branch and bound wins is
strongly (rows, cols, k)-dependent, which is exactly what
:class:`~repro.accel.portfolio.AdaptivePortfolioBackend` learns.
"""

from __future__ import annotations

import time

from ..ilp.cuts import objective_cutoff_form, root_cut_loop, safe_hint_gap
from ..ilp.model import MatrixForm
from ..ilp.solution import Solution, SolveStats, SolveStatus
from ..ilp.backends.registry import register_backend
from ..ilp.backends.scipy_milp import ScipyMilpBackend


def _remaining(time_limit: float | None, start: float) -> float | None:
    if time_limit is None:
        return None
    return max(0.01, time_limit - (time.perf_counter() - start))


@register_backend(
    "scipy-cuts",
    aliases=("highs-cuts",),
    supports_sparse=True,
    supports_time_limit=True,
    description="HiGHS on a root-cut-strengthened lowering (implication/clique/cover cuts)",
)
class ScipyCutsBackend:
    """HiGHS preceded by the root cutting-plane loop (exact)."""

    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6) -> Solution:
        start = time.perf_counter()
        strengthened, info = root_cut_loop(form)
        solution = ScipyMilpBackend().solve(
            strengthened, time_limit=_remaining(time_limit, start), mip_gap=mip_gap)
        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = self.name
        stats.cuts = info
        solution.stats = stats
        return solution


@register_backend(
    "scipy-ws",
    aliases=("highs-ws",),
    supports_sparse=True,
    supports_time_limit=True,
    supports_warm_start=True,
    description="HiGHS with an incumbent-hint objective cutoff and exactness-preserving gap",
)
class ScipyWarmStartBackend:
    """HiGHS exploiting a known-achievable incumbent hint (exact)."""

    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6, incumbent_hint: float | None = None) -> Solution:
        start = time.perf_counter()
        if incumbent_hint is None:
            solution = ScipyMilpBackend().solve(form, time_limit=time_limit,
                                                mip_gap=mip_gap)
            self._restamp(solution)
            return solution

        # Hints arrive offset-included (the sweep's previous objective);
        # the cutoff row lives in the offset-free matrix space.
        internal_hint = float(incumbent_hint) - form.offset
        constrained = objective_cutoff_form(form, internal_hint)
        gap = safe_hint_gap(form, internal_hint, mip_gap)
        solution = ScipyMilpBackend().solve(
            constrained, time_limit=_remaining(time_limit, start), mip_gap=gap)

        if solution.status is SolveStatus.INFEASIBLE:
            # Nothing at or below the hint exists: the hint was wrong (or the
            # model is genuinely infeasible — only a cutoff-free solve can
            # tell).  Re-solve without the cutoff on the remaining budget.
            solution = ScipyMilpBackend().solve(
                form, time_limit=_remaining(time_limit, start), mip_gap=mip_gap)
            solution.message = ("incumbent hint was unachievable; re-solved cold"
                                + (f"; {solution.message}" if solution.message else ""))
        self._restamp(solution)
        return solution

    def _restamp(self, solution: Solution) -> None:
        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = self.name
        solution.stats = stats
