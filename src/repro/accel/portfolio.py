"""The racing portfolio backend: run several solvers, keep the first winner.

The two bundled backends have complementary profiles — scipy/HiGHS is fast
on the large ADVBIST models, the pure-Python branch and bound often wins on
tiny models (no process-external solver start-up) and is the only backend
that exploits warm-start incumbents.  :class:`PortfolioBackend` races them
concurrently on the same :class:`MatrixForm`:

* each racer runs in its own daemon thread (HiGHS releases the GIL during
  the native solve, so the race genuinely overlaps);
* the first *conclusive* result (proven optimal, infeasible or unbounded)
  wins; the cooperative racers are cancelled through their ``stop_check``
  hook (scipy cannot be interrupted mid-solve — its orphaned thread is
  abandoned, bounded by the shared ``time_limit``, and at most
  ``_ORPHAN_LIMIT`` orphans may linger before the next race waits for the
  oldest, so chained quick wins cannot stack unbounded background solves);
* if no racer is conclusive (both hit a limit), the best incumbent wins;
* the winner's :class:`SolveStats` are merged with the losers': ``backend``
  records the winning racer, ``nodes`` sums every finished racer's search.

Registered as ``portfolio`` (alias ``race``) — ``repro sweep --backend
portfolio`` and ``Session(backend="portfolio")`` select it like any other
registry backend.  It advertises warm-start support and forwards incumbent
hints to every racer that can use them.
"""

from __future__ import annotations

import atexit
import threading
from queue import Queue

from ..ilp.model import MatrixForm
from ..ilp.solution import Solution, SolveStats, SolveStatus
from ..ilp.backends.registry import BackendRegistryError, backend_info, register_backend

#: Statuses that settle the race: nothing a slower racer returns can differ.
_CONCLUSIVE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)

#: Abandoned racer threads (scipy cannot be interrupted mid-solve) from
#: already-decided races.  Bounded below so a chain of quick wins cannot
#: stack an unbounded number of orphaned solves fighting the live race
#: for CPU.
_ORPHANS: list[threading.Thread] = []
_ORPHAN_LIMIT = 2
_ORPHAN_LOCK = threading.Lock()


def _park_orphans(threads: list[threading.Thread]) -> None:
    """Track still-running racers of a decided race; block if too many pile up."""
    with _ORPHAN_LOCK:
        _ORPHANS.extend(thread for thread in threads if thread.is_alive())
        _ORPHANS[:] = [thread for thread in _ORPHANS if thread.is_alive()]
        backlog = list(_ORPHANS)
    # Joining outside the lock: only the threads beyond the cap are waited
    # on (oldest first), so steady-state CPU contention stays bounded while
    # a single abandoned solve never delays the caller.
    for thread in backlog[:-_ORPHAN_LIMIT] if len(backlog) > _ORPHAN_LIMIT else []:
        thread.join()
    with _ORPHAN_LOCK:
        _ORPHANS[:] = [thread for thread in _ORPHANS if thread.is_alive()]


def _drain_orphans() -> None:
    """Join every lingering racer before the interpreter tears down.

    A daemon thread still inside HiGHS native code at interpreter shutdown
    aborts the whole process (`terminate called without an active
    exception`), so process exit must wait for the abandoned solves —
    cancelled cooperative racers finish within one node, and an abandoned
    scipy solve is bounded by its time limit.
    """
    with _ORPHAN_LOCK:
        backlog = list(_ORPHANS)
        _ORPHANS.clear()
    for thread in backlog:
        thread.join()


atexit.register(_drain_orphans)


@register_backend(
    "portfolio",
    aliases=("race",),
    supports_sparse=True,
    supports_time_limit=True,
    supports_warm_start=True,
    description="races scipy/HiGHS against branch and bound; first conclusive result wins",
)
class PortfolioBackend:
    """Race several registry backends on one model; first conclusive wins."""

    def __init__(self, racers: tuple[str, ...] = ("scipy", "bnb")):
        if len(racers) < 2:
            raise BackendRegistryError(
                f"a portfolio needs at least two racers, got {racers!r}")
        resolved = []
        for name in racers:
            info = backend_info(name)
            if info.cls is PortfolioBackend:
                raise BackendRegistryError("a portfolio cannot race itself")
            resolved.append(info.name)
        if len(set(resolved)) != len(resolved):
            raise BackendRegistryError(
                f"portfolio racers must be distinct backends, got {racers!r}")
        self.racers = tuple(resolved)

    # ------------------------------------------------------------------
    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6, incumbent_hint: float | None = None) -> Solution:
        stop = threading.Event()
        results: Queue[tuple[str, Solution | None, Exception | None]] = Queue()

        def race(name: str) -> None:
            try:
                solver = backend_info(name).create()
                # Cooperative cancellation: racers exposing a ``stop_check``
                # attribute (the branch and bound does) poll it and stop as
                # soon as the race is decided.
                if hasattr(solver, "stop_check"):
                    solver.stop_check = stop.is_set
                kwargs = {}
                if incumbent_hint is not None and getattr(solver, "supports_warm_start", False):
                    kwargs["incumbent_hint"] = incumbent_hint
                results.put((name, solver.solve(form, time_limit=time_limit,
                                                mip_gap=mip_gap, **kwargs), None))
            except Exception as exc:  # surfaced below, never swallowed
                results.put((name, None, exc))

        threads = [
            threading.Thread(target=race, args=(name,), daemon=True,
                             name=f"portfolio-{name}")
            for name in self.racers
        ]
        for thread in threads:
            thread.start()

        finished: list[tuple[str, Solution]] = []
        errors: list[tuple[str, Exception]] = []
        winner: tuple[str, Solution] | None = None
        for _ in range(len(threads)):
            name, solution, error = results.get()
            if error is not None:
                errors.append((name, error))
                continue
            finished.append((name, solution))
            if solution.status in _CONCLUSIVE:
                winner = (name, solution)
                break
        stop.set()  # cancel cooperative racers still running
        _park_orphans(threads)

        if winner is None:
            if not finished:
                # Every racer failed: re-raise the first failure rather than
                # inventing an ERROR solution nothing upstream expects.
                raise errors[0][1]
            winner = min(finished, key=_race_rank)
        return self._merge(winner, finished, errors)

    # ------------------------------------------------------------------
    def _merge(self, winner: tuple[str, Solution],
               finished: list[tuple[str, Solution]],
               errors: list[tuple[str, Exception]]) -> Solution:
        """The winning solution annotated with the merged race statistics."""
        name, solution = winner
        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = f"portfolio[{name}]"
        stats.nodes = sum(_nodes_of(result) for _, result in finished)
        solution.stats = stats
        solution.nodes = stats.nodes
        parts = [f"portfolio winner: {name}"]
        losers = [racer for racer in self.racers
                  if racer != name and racer not in {n for n, _ in finished}
                  and racer not in {n for n, _ in errors}]
        if losers:
            parts.append(f"cancelled: {', '.join(losers)}")
        if errors:
            parts.append("failed: " + ", ".join(
                f"{racer} ({type(exc).__name__})" for racer, exc in errors))
        if solution.message:
            parts.append(solution.message)
        solution.message = "; ".join(parts)
        return solution


def _race_rank(entry: tuple[str, Solution]) -> tuple:
    """Sort key among non-conclusive results: usable incumbents first, best
    objective first (all models reaching backends are minimisations)."""
    _, solution = entry
    has_solution = solution.status.has_solution and solution.objective is not None
    objective = solution.objective if has_solution else float("inf")
    return (0 if has_solution else 1, objective)


def _nodes_of(solution: Solution) -> int:
    if solution.stats is not None and solution.stats.nodes:
        return solution.stats.nodes
    return solution.nodes or 0
