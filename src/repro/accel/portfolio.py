"""The portfolio backends: race solvers, or predict the winner and run it alone.

The bundled backends have complementary profiles — scipy/HiGHS is fast on
the large ADVBIST models, the pure-Python branch and bound often wins on
tiny models (no process-external solver start-up), the cut/warm-start
strategy arms (:mod:`repro.accel.strategies`) win on specific shapes.  Two
composition backends pick among them:

* :class:`PortfolioBackend` (``portfolio`` / ``race``) races its racers
  concurrently on the same :class:`MatrixForm`:

  - each racer runs in its own daemon thread (HiGHS releases the GIL during
    the native solve, so the race genuinely overlaps);
  - the first *conclusive* result (proven optimal, infeasible or unbounded)
    wins; the cooperative racers are cancelled through their ``stop_check``
    hook (scipy cannot be interrupted mid-solve — its orphaned thread is
    abandoned, bounded by the shared ``time_limit``, or by
    ``_UNCANCELLABLE_FALLBACK_LIMIT`` when the caller passed no limit, so an
    orphan can never run forever; beyond ``_ORPHAN_LIMIT`` lingering orphans
    the next race briefly waits for the oldest, a *bounded* pause of
    ``_ORPHAN_JOIN_TIMEOUT`` seconds each, so chained quick wins cannot
    stack unbounded background solves yet a caller is never stalled for a
    full abandoned solve);
  - if no racer is conclusive (both hit a limit), the best incumbent wins;
  - the winner's :class:`SolveStats` are merged with the losers':
    ``backend`` records the winning racer, ``nodes`` sums every finished
    racer's search.

* :class:`AdaptivePortfolioBackend` (``adaptive``) consults the
  :mod:`repro.accel.history` win table for the model's circuit-tagged
  bucket first, then its generic (rows, cols, k) size bucket.  On a confident prediction it starts *only* the predicted
  arm — racing N solvers on one core slows the winner ~N-fold, so the best
  race is no race — and releases a single challenger only if the leader
  overruns its expected wall time.  Unknown buckets, thin history, or a
  predicted arm that no longer resolves (a poisoned history) all fall back
  to racing everything, so prediction can cost time but never answers.
  Every outcome is recorded back into the history, and the decision trail
  lands in ``SolveStats.portfolio``.

Both register as ordinary registry backends — ``repro sweep --backend
adaptive`` and ``Session(backend="adaptive")`` select them like any other.
Both advertise warm-start support and forward incumbent hints to every
racer that can use them.
"""

from __future__ import annotations

import atexit
import threading
import time
from queue import Empty, Queue

from ..ilp.model import MatrixForm
from ..ilp.solution import Solution, SolveStats, SolveStatus
from ..obs.metrics import record_portfolio_prediction, record_portfolio_win
from ..ilp.backends.registry import BackendRegistryError, backend_info, register_backend

#: Statuses that settle the race: nothing a slower racer returns can differ.
_CONCLUSIVE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)

#: Abandoned racer threads (scipy cannot be interrupted mid-solve) from
#: already-decided races.  Bounded below so a chain of quick wins cannot
#: stack an unbounded number of orphaned solves fighting the live race
#: for CPU.
#: Parked orphans as ``(thread, deadline)``: the monotonic instant by which
#: the abandoned solve's own time limit must have expired.
_ORPHANS: list[tuple[threading.Thread, float]] = []
_ORPHAN_LIMIT = 2
#: Per-orphan join budget when the backlog exceeds the cap: long enough for a
#: cancelled cooperative racer to wind down, short enough that a caller is
#: never stalled for anything like an abandoned solve's full time limit.
_ORPHAN_JOIN_TIMEOUT = 0.25
#: Finite solve cap imposed on racers without a ``stop_check`` hook when the
#: caller passed ``time_limit=None``: an uncancellable racer abandoned by a
#: decided race must never keep solving — or stall interpreter exit — forever.
_UNCANCELLABLE_FALLBACK_LIMIT = 300.0
#: Grace past an orphan's deadline before the exit drain gives up on it.
_ORPHAN_EXIT_GRACE = 10.0
_ORPHAN_LOCK = threading.Lock()


def _park_orphans(threads: list[threading.Thread], deadline: float) -> None:
    """Track still-running racers of a decided race.

    Orphans beyond ``_ORPHAN_LIMIT`` are joined oldest-first with a bounded
    per-thread timeout, so the caller's pause is capped at roughly
    ``_ORPHAN_JOIN_TIMEOUT`` seconds per excess orphan rather than a full
    abandoned solve's ``time_limit``.  Stragglers stay parked — each is
    bounded by its recorded ``deadline`` — and :func:`_drain_orphans` joins
    whatever is left at interpreter exit.
    """
    with _ORPHAN_LOCK:
        _ORPHANS.extend((thread, deadline) for thread in threads
                        if thread.is_alive())
        _ORPHANS[:] = [entry for entry in _ORPHANS if entry[0].is_alive()]
        backlog = [thread for thread, _ in _ORPHANS]
    # Joining outside the lock: only the threads beyond the cap are waited
    # on (oldest first), so steady-state CPU contention stays bounded while
    # a single abandoned solve never delays the caller.
    for thread in backlog[:-_ORPHAN_LIMIT] if len(backlog) > _ORPHAN_LIMIT else []:
        thread.join(timeout=_ORPHAN_JOIN_TIMEOUT)
    with _ORPHAN_LOCK:
        _ORPHANS[:] = [entry for entry in _ORPHANS if entry[0].is_alive()]


def _drain_orphans() -> None:
    """Join every lingering racer before the interpreter tears down.

    A daemon thread still inside HiGHS native code at interpreter shutdown
    aborts the whole process (`terminate called without an active
    exception`), so process exit waits for the abandoned solves — cancelled
    cooperative racers finish within one node, and an abandoned scipy solve
    is bounded by its recorded deadline (every uncancellable racer gets a
    finite time limit, see ``_UNCANCELLABLE_FALLBACK_LIMIT``).  Each join is
    capped at that deadline plus a grace period, so a stuck thread delays
    exit but can never hang it forever.
    """
    with _ORPHAN_LOCK:
        backlog = list(_ORPHANS)
        _ORPHANS.clear()
    for thread, deadline in backlog:
        thread.join(timeout=max(0.0, deadline - time.monotonic())
                    + _ORPHAN_EXIT_GRACE)


atexit.register(_drain_orphans)


#: One racer's report: ``(name, solution, error, wall_seconds)``.
_Outcome = tuple[str, Solution | None, Exception | None, float]


def _spawn_racer(name: str, form: MatrixForm, time_limit: float | None,
                 mip_gap: float, incumbent_hint: float | None,
                 stop: threading.Event, results: "Queue[_Outcome]") -> threading.Thread:
    """Start one racer thread; it always reports exactly one outcome."""

    def race() -> None:
        # The collection loop blocks on exactly one queue entry per racer,
        # so the put lives in a ``finally``: even a racer killed by a
        # non-Exception (SystemExit, KeyboardInterrupt) reports an outcome
        # instead of hanging the solve forever.
        started = time.perf_counter()
        outcome: _Outcome = (
            name, None,
            RuntimeError(f"racer {name!r} exited without reporting a result"), 0.0)
        try:
            solver = backend_info(name).create()
            # Cooperative cancellation: racers exposing a ``stop_check``
            # attribute (the branch and bound does) poll it and stop as
            # soon as the race is decided.  Racers without one cannot be
            # interrupted once abandoned, so they never run without a
            # finite time limit.
            racer_limit = time_limit
            if hasattr(solver, "stop_check"):
                solver.stop_check = stop.is_set
            elif racer_limit is None:
                racer_limit = _UNCANCELLABLE_FALLBACK_LIMIT
            kwargs = {}
            if incumbent_hint is not None and getattr(solver, "supports_warm_start", False):
                kwargs["incumbent_hint"] = incumbent_hint
            solution = solver.solve(form, time_limit=racer_limit,
                                    mip_gap=mip_gap, **kwargs)
            outcome = (name, solution, None, time.perf_counter() - started)
        except Exception as exc:  # surfaced below, never swallowed
            outcome = (name, None, exc, time.perf_counter() - started)
        finally:
            results.put(outcome)

    thread = threading.Thread(target=race, daemon=True, name=f"portfolio-{name}")
    thread.start()
    return thread


@register_backend(
    "portfolio",
    aliases=("race",),
    supports_sparse=True,
    supports_time_limit=True,
    supports_warm_start=True,
    description="races scipy/HiGHS against branch and bound; first conclusive result wins",
)
class PortfolioBackend:
    """Race several registry backends on one model; first conclusive wins."""

    def __init__(self, racers: tuple[str, ...] = ("scipy", "bnb")):
        if len(racers) < 2:
            raise BackendRegistryError(
                f"a portfolio needs at least two racers, got {racers!r}")
        resolved = []
        for name in racers:
            info = backend_info(name)
            if issubclass(info.cls, PortfolioBackend):
                raise BackendRegistryError("a portfolio cannot race itself")
            resolved.append(info.name)
        if len(set(resolved)) != len(resolved):
            raise BackendRegistryError(
                f"portfolio racers must be distinct backends, got {racers!r}")
        self.racers = tuple(resolved)

    # ------------------------------------------------------------------
    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6, incumbent_hint: float | None = None) -> Solution:
        stop = threading.Event()
        results: Queue[_Outcome] = Queue()
        # Instant by which every racer's own time limit has expired — the
        # orphan bookkeeping's bound on an abandoned solve.
        deadline = time.monotonic() + (
            time_limit if time_limit is not None else _UNCANCELLABLE_FALLBACK_LIMIT)
        threads = [_spawn_racer(name, form, time_limit, mip_gap, incumbent_hint,
                                stop, results)
                   for name in self.racers]

        finished: list[tuple[str, Solution]] = []
        errors: list[tuple[str, Exception]] = []
        winner: tuple[str, Solution] | None = None
        for _ in range(len(threads)):
            name, solution, error, _wall = results.get()
            if error is not None:
                errors.append((name, error))
                continue
            finished.append((name, solution))
            if solution.status in _CONCLUSIVE:
                winner = (name, solution)
                break
        stop.set()  # cancel cooperative racers still running
        _park_orphans(threads, deadline)

        if winner is None:
            if not finished:
                # Every racer failed: re-raise the first failure rather than
                # inventing an ERROR solution nothing upstream expects.
                raise errors[0][1]
            winner = min(finished, key=_race_rank)
        return self._merge(winner, finished, errors, started=self.racers)

    # ------------------------------------------------------------------
    def _merge(self, winner: tuple[str, Solution],
               finished: list[tuple[str, Solution]],
               errors: list[tuple[str, Exception]],
               started: tuple[str, ...] = ()) -> Solution:
        """The winning solution annotated with the merged race statistics."""
        name, solution = winner
        record_portfolio_win(name)
        stats = solution.stats if solution.stats is not None else SolveStats()
        stats.backend = f"{self.name}[{name}]"
        stats.nodes = sum(_nodes_of(result) for _, result in finished)
        solution.stats = stats
        solution.nodes = stats.nodes
        parts = [f"{self.name} winner: {name}"]
        losers = [racer for racer in started
                  if racer != name and racer not in {n for n, _ in finished}
                  and racer not in {n for n, _ in errors}]
        if losers:
            parts.append(f"cancelled: {', '.join(losers)}")
        if errors:
            parts.append("failed: " + ", ".join(
                f"{racer} ({type(exc).__name__})" for racer, exc in errors))
        if solution.message:
            parts.append(solution.message)
        solution.message = "; ".join(parts)
        return solution


@register_backend(
    "adaptive",
    aliases=("portfolio-adaptive",),
    supports_sparse=True,
    supports_time_limit=True,
    supports_warm_start=True,
    description="history-guided portfolio: predicted arm runs alone, challenger on overrun",
)
class AdaptivePortfolioBackend(PortfolioBackend):
    """Predict the winning arm from history; race only when unsure.

    ``arms`` are the candidate backends.  ``history`` defaults to the
    process-global :func:`repro.accel.history.get_history` (committed
    priors plus live wins).  The challenger delay is twice the predicted
    wall time, clamped to ``[min_challenger_delay, max_challenger_delay]``
    — a confident, accurate prediction therefore never starts a second
    solver at all.  The upper clamp is deliberately generous: it only
    exists to bound the wait when the history promises an absurd wall
    time, not to second-guess ordinary multi-second solves (a challenger
    released mid-solve *contends* with the leader on a single core, so a
    spurious release makes the solve slower, not safer).
    """

    #: Default arm set: plain HiGHS, the two strategy arms, branch and bound.
    DEFAULT_ARMS = ("scipy", "scipy-ws", "scipy-cuts", "bnb")

    def __init__(self, arms: tuple[str, ...] = DEFAULT_ARMS, history=None,
                 min_challenger_delay: float = 0.05,
                 max_challenger_delay: float = 60.0):
        super().__init__(racers=arms)
        self.history = history
        self.min_challenger_delay = float(min_challenger_delay)
        self.max_challenger_delay = float(max_challenger_delay)

    # ------------------------------------------------------------------
    def solve(self, form: MatrixForm, time_limit: float | None = None,
              mip_gap: float = 1e-6, incumbent_hint: float | None = None) -> Solution:
        from .history import bucket_keys, get_history  # lazy: history imports ilp

        history = self.history if self.history is not None else get_history()
        # Most-specific key first: a circuit-tagged entry beats the generic
        # size bucket (two circuits can share a size class yet want
        # different arms), which in turn covers circuits never seen before.
        keys = bucket_keys(form)
        bucket = keys[-1]
        prediction = None
        for key in keys:
            prediction = history.predict(key)
            if prediction is not None:
                bucket = key
                break

        leader: str | None = None
        if prediction is not None:
            # A poisoned or stale history may predict an arm that no longer
            # resolves or is not in this portfolio: treat it as no
            # prediction rather than dead-ending the solve.
            try:
                resolved = backend_info(prediction.leader).name
            except BackendRegistryError:
                resolved = None
            if resolved in self.racers:
                leader = resolved

        stop = threading.Event()
        results: Queue[_Outcome] = Queue()
        deadline = time.monotonic() + (
            time_limit if time_limit is not None else _UNCANCELLABLE_FALLBACK_LIMIT)

        def spawn(name: str) -> threading.Thread:
            return _spawn_racer(name, form, time_limit, mip_gap, incumbent_hint,
                                stop, results)

        mode = "solo" if leader is not None else "race"
        started: list[str] = [leader] if leader is not None else list(self.racers)
        threads = [spawn(name) for name in started]

        finished: list[tuple[str, Solution]] = []
        errors: list[tuple[str, Exception]] = []
        walls: dict[str, float] = {}
        winner: tuple[str, Solution] | None = None
        pending = len(threads)
        challenger_released = False
        while pending:
            timeout = None
            if mode == "solo" and not challenger_released and prediction is not None:
                timeout = min(self.max_challenger_delay,
                              max(self.min_challenger_delay,
                                  2.0 * prediction.expected_wall))
            try:
                name, solution, error, wall = results.get(timeout=timeout)
            except Empty:
                # The leader overran its budget: release one challenger and
                # keep collecting.  The history said the leader should have
                # finished by now, so a second opinion is worth one core.
                challenger_released = True
                mode = "challenger"
                challenger = self._pick_challenger(leader, prediction)
                if challenger is not None:
                    started.append(challenger)
                    threads.append(spawn(challenger))
                    pending += 1
                continue
            pending -= 1
            walls[name] = wall
            if error is not None:
                errors.append((name, error))
            else:
                finished.append((name, solution))
                if solution.status in _CONCLUSIVE:
                    winner = (name, solution)
                    break
            if pending == 0 and winner is None and not finished:
                # Everything started so far failed.  Escalate to the arms
                # not yet running (poisoned-history safety: a bad leader
                # prediction must never dead-end the solve).
                remaining = [arm for arm in self.racers if arm not in started]
                if remaining:
                    mode = "race"
                    started.extend(remaining)
                    fresh = [spawn(arm) for arm in remaining]
                    threads.extend(fresh)
                    pending += len(fresh)
        stop.set()
        _park_orphans(threads, deadline)

        if winner is None:
            if not finished:
                raise errors[0][1]
            winner = min(finished, key=_race_rank)

        solution = self._merge(winner, finished, errors, started=tuple(started))
        winner_name = winner[0]
        winner_wall = walls.get(winner_name, 0.0)
        for key in keys:
            history.record(key, winner_name, winner_wall)
        record_portfolio_prediction(leader or "(none)", winner_name, mode)
        stats = solution.stats  # _merge always populates it
        stats.portfolio = {
            "bucket": bucket,
            "predicted": leader,
            "winner": winner_name,
            "mode": mode,
            "started": list(started),
            "samples": prediction.samples if prediction is not None else 0,
        }
        return solution

    # ------------------------------------------------------------------
    def _pick_challenger(self, leader: str | None, prediction) -> str | None:
        """The runner-up from history when valid, else the first other arm."""
        candidates = []
        if prediction is not None and prediction.challenger:
            candidates.append(prediction.challenger)
        candidates.extend(self.racers)
        for name in candidates:
            try:
                resolved = backend_info(name).name
            except BackendRegistryError:
                continue
            if resolved != leader and resolved in self.racers:
                return resolved
        return None


def _race_rank(entry: tuple[str, Solution]) -> tuple:
    """Sort key among non-conclusive results: usable incumbents first, best
    objective first (all models reaching backends are minimisations)."""
    _, solution = entry
    has_solution = solution.status.has_solution and solution.objective is not None
    objective = solution.objective if has_solution else float("inf")
    return (0 if has_solution else 1, objective)


def _nodes_of(solution: Solution) -> int:
    if solution.stats is not None and solution.stats.nodes:
        return solution.stats.nodes
    return solution.nodes or 0
