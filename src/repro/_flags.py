"""Shared argparse value parsers for the CLI's numeric and structured flags.

Every ``repro`` subcommand that accepts numbers (``--jobs``, ``--seed``,
``--k``, ``--count``, ``--time-limit``, ``repro bench --threshold``, ...)
validates them *at parse time* through the factories below, so a bad value
is a one-line argparse error instead of a traceback from deep inside the
executor or the task grid.  ``repro fuzz`` and ``repro bench`` share the
same ``--seed`` / ``--jobs`` parsers — there is exactly one definition of
what a valid seed or worker count looks like.

The factories return plain callables suitable for ``argparse``'s ``type=``:

    >>> parse_jobs = int_at_least(1, "--jobs")
    >>> parse_jobs("4")
    4
    >>> parse_jobs("zero")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --jobs must be an integer, got 'zero'
"""

from __future__ import annotations

import argparse


def int_at_least(minimum: int, flag_meaning: str):
    """Parser factory for an integer flag with an inclusive lower bound.

    >>> int_at_least(0, "--seed")("0")
    0
    >>> int_at_least(1, "--count")("0")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --count must be >= 1, got 0
    """

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be >= {minimum}, got {value}")
        return value

    return parse


def positive_float(flag_meaning: str, unit: str = "a number"):
    """Parser factory for a strictly positive float flag.

    >>> positive_float("--time-limit", "a number of seconds")("1.5")
    1.5
    >>> positive_float("--time-limit")("-3")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --time-limit must be positive, got -3.0
    """

    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be {unit}, got {text!r}")
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be positive, got {value}")
        return value

    return parse


def nonnegative_float(flag_meaning: str):
    """Parser factory for a float flag that may be zero.

    >>> nonnegative_float("--min-seconds")("0")
    0.0
    """

    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be a number, got {text!r}")
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"{flag_meaning} must be >= 0, got {value}")
        return value

    return parse


def speedup_threshold(text: str) -> float:
    """Parse a regression threshold like ``1.5x`` (or plain ``1.5``).

    The value is the slowdown *ratio* past which a timing counts as a
    regression, so it must be at least 1.

    >>> speedup_threshold("1.5x")
    1.5
    >>> speedup_threshold("2")
    2.0
    >>> speedup_threshold("0.5x")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --threshold must be >= 1 (a slowdown ratio), got 0.5
    """
    raw = text.strip().lower().removesuffix("x")
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--threshold must look like 1.5x or 1.5, got {text!r}")
    if value < 1.0:
        raise argparse.ArgumentTypeError(
            f"--threshold must be >= 1 (a slowdown ratio), got {value}")
    return value


def host_port(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint for ``repro serve --tcp``.

    The host part may be empty (bind all interfaces is spelled
    ``0.0.0.0:PORT`` explicitly; a bare ``:PORT`` means localhost) and
    port 0 asks the OS for an ephemeral port.

    >>> host_port("127.0.0.1:7333")
    ('127.0.0.1', 7333)
    >>> host_port(":0")
    ('127.0.0.1', 0)
    >>> host_port("7333")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --tcp must look like HOST:PORT, got '7333'
    """
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"--tcp must look like HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--tcp port must be an integer, got {port_text!r}")
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(
            f"--tcp port must be in [0, 65535], got {port}")
    return (host.strip() or "127.0.0.1", port)


def resource_limits(text: str) -> dict[str, int]:
    """Parse ``--resources alu=1,mult=2`` into a class → count mapping.

    >>> resource_limits("alu=1, mult=2")
    {'alu': 1, 'mult': 2}
    >>> resource_limits("alu")
    Traceback (most recent call last):
        ...
    argparse.ArgumentTypeError: --resources entries must look like CLASS=N, got 'alu'
    """
    limits: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        cls, sep, num = part.partition("=")
        if not sep or not cls.strip():
            raise argparse.ArgumentTypeError(
                f"--resources entries must look like CLASS=N, got {part!r}")
        try:
            count = int(num)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--resources count for {cls.strip()!r} must be an integer, got {num!r}")
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"--resources count for {cls.strip()!r} must be >= 1, got {count}")
        limits[cls.strip()] = count
    if not limits:
        raise argparse.ArgumentTypeError("--resources must name at least one CLASS=N")
    return limits
