"""Live observability: metrics, per-solve tracing, and drift detection.

The execution stack's choke points (scheduler, two-tier cache, ILP
solve, portfolio racer, TCP server, session envelopes) record into one
process-global :class:`~repro.obs.metrics.MetricsRegistry`; the scheduler
additionally streams finished tasks through an optional
:class:`~repro.obs.trace.Tracer`.  Exposition: the ``{"op": "metrics"}``
control op on both serve transports, ``repro obs dump`` for one-shot
snapshots, and ``repro bench history --drift`` for
:mod:`~repro.obs.drift` walk-off analysis against the committed
baseline.  See ``docs/observability.md`` for the metric catalogue.
"""

from .metrics import (MetricsRegistry, get_registry, set_registry,
                      use_registry)
from .trace import TraceEvent, Tracer

__all__ = [
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "get_registry",
    "set_registry",
    "use_registry",
]
