"""Structured per-solve trace events with a bounded ring and JSONL sink.

Where :mod:`repro.obs.metrics` aggregates, this module *enumerates*: the
scheduler hands every finished task to a :class:`Tracer`, which turns it
into one :class:`TraceEvent` — task key, circuit, formulation, ``k``,
resolved backend, presolve shrinkage, outcome and wall time.  Events land
in a thread-safe bounded ring (newest ``capacity`` kept) and, when a sink
path is configured (``Session(trace_file=...)`` or ``--trace-file`` on
the CLI), are appended as JSON lines.  The sink's first line is a header
carrying the bench schema-2 environment fingerprint, so a trace file is
self-describing the same way a ``BENCH_*.json`` report is.

``Tracer.record`` never raises: tracing must not be able to fail a solve,
so a sink that starts erroring (disk full, permission lost) is dropped
and the ring keeps running.

>>> from repro.obs.trace import Tracer
>>> tracer = Tracer(capacity=2)
>>> for k in (1, 2, 3):
...     tracer.record(task_key="deadbeef" * 8, circuit="fig1",
...                   kind="advbist", k=k, backend="bnb", status="ok",
...                   wall_seconds=0.01, cached=False, coalesced=False)
>>> [event.k for event in tracer.events()]  # ring kept the newest two
[2, 3]
>>> tracer.events()[-1].task_key  # keys are shortened for display
'deadbeefdead'
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Mapping

#: Characters of the 64-hex task key kept on events — enough to join
#: against cache paths while keeping traces skimmable.
KEY_DIGITS = 12

#: Presolve counters copied onto events (the full dict is on the stats).
_PRESOLVE_FIELDS = ("original_variables", "reduced_variables",
                    "removed_rows", "fixed_variables", "rounds")


@dataclass(frozen=True)
class TraceEvent:
    """One finished scheduler task, flattened for telemetry."""

    seq: int
    task_key: str
    circuit: str
    kind: str
    k: int
    backend: str
    status: str
    wall_seconds: float
    cached: bool
    coalesced: bool
    presolve: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-serialisable view (the JSONL sink's line shape)."""
        doc = {
            "seq": self.seq,
            "task_key": self.task_key,
            "circuit": self.circuit,
            "kind": self.kind,
            "k": self.k,
            "backend": self.backend,
            "status": self.status,
            "wall_seconds": round(self.wall_seconds, 9),
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.presolve:
            doc["presolve"] = dict(self.presolve)
        return doc


class Tracer:
    """Thread-safe bounded event ring with an optional JSONL sink."""

    def __init__(self, capacity: int = 256, sink: str | None = None):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._sink_path = sink
        self._sink: IO[str] | None = None
        if sink is not None:
            self._open_sink(sink)

    def _open_sink(self, path: str) -> None:
        try:
            handle = open(path, "a", encoding="utf-8")
            header = {"trace_schema": 1,
                      "environment": self._environment()}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
        except OSError:
            self._sink = None
            return
        self._sink = handle

    @staticmethod
    def _environment() -> dict:
        # lazy: repro.bench.schema pulls in platform probing we only need
        # when a sink is actually opened.
        from ..bench.schema import environment_fingerprint
        return environment_fingerprint()

    def record(self, *, task_key: str, circuit: str, kind: str, k: int,
               backend: str, status: str, wall_seconds: float,
               cached: bool, coalesced: bool,
               presolve: Mapping | None = None) -> None:
        """Append one event; never raises (a failing sink is dropped)."""
        summary = {}
        if presolve:
            summary = {name: presolve[name] for name in _PRESOLVE_FIELDS
                       if presolve.get(name) is not None}
        with self._lock:
            self._seq += 1
            event = TraceEvent(
                seq=self._seq,
                task_key=(task_key or "")[:KEY_DIGITS],
                circuit=circuit, kind=kind, k=k, backend=backend,
                status=status, wall_seconds=wall_seconds,
                cached=cached, coalesced=coalesced, presolve=summary)
            self._ring.append(event)
            sink = self._sink
        if sink is not None:
            try:
                sink.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
                sink.flush()
            except (OSError, ValueError):
                with self._lock:
                    self._sink = None

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> dict:
        """JSON-serialisable view of the ring (``repro obs dump`` shape)."""
        with self._lock:
            events = list(self._ring)
            recorded = self._seq
        return {"capacity": self.capacity,
                "recorded": recorded,
                "retained": len(events),
                "sink": self._sink_path if self._sink else None,
                "events": [event.as_dict() for event in events]}

    def close(self) -> None:
        """Flush and release the JSONL sink, if any."""
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass
