"""Live metrics: a thread-safe registry of counters, gauges and histograms.

This is the measurement substrate of :mod:`repro.obs`.  A
:class:`MetricsRegistry` holds named :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments, each fanned out over label values, and
renders them as Prometheus-style exposition text (:meth:`MetricsRegistry.render`)
or a JSON-serialisable snapshot (:meth:`MetricsRegistry.snapshot`).  No
third-party client library is involved — the text format is implemented
here directly so the daemon stays dependency-free.

One *process-global* registry (``get_registry()``) is the default sink:
the choke points instrumented across the stack — the scheduler, the
two-tier cache, ``Model.solve``, the portfolio backend, the TCP server —
all record into it through the ``record_*`` helpers at the bottom of this
module, so a :class:`repro.api.Session` and both serve transports expose
one coherent view of the process.  Tests (and `repro obs dump`) isolate
themselves with :func:`use_registry`.  Worker *processes* of a
``jobs > 1`` sweep record into their own interpreter's registry, which is
discarded with the worker — histograms describe the in-process execution
paths (the serve daemon runs jobs in threads, so daemon traffic is fully
covered).

Instrumentation can be disabled globally (``REPRO_METRICS=0`` in the
environment, or :meth:`MetricsRegistry.disable`): every ``record_*``
helper then returns before touching a lock, which is what the CI
overhead gate compares against.

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> jobs = registry.counter("demo_jobs_total", "jobs by kind", labels=("kind",))
>>> jobs.inc(kind="sweep"); jobs.inc(kind="sweep"); jobs.value(kind="sweep")
2.0
>>> wall = registry.histogram("demo_wall_seconds", "solve wall time",
...                           buckets=(0.1, 1.0), labels=("backend",))
>>> wall.observe(0.25, backend="bnb")
>>> print(registry.render())  # doctest: +NORMALIZE_WHITESPACE
# HELP demo_jobs_total jobs by kind
# TYPE demo_jobs_total counter
demo_jobs_total{kind="sweep"} 2
# HELP demo_wall_seconds solve wall time
# TYPE demo_wall_seconds histogram
demo_wall_seconds_bucket{backend="bnb",le="0.1"} 0
demo_wall_seconds_bucket{backend="bnb",le="1"} 1
demo_wall_seconds_bucket{backend="bnb",le="+Inf"} 1
demo_wall_seconds_sum{backend="bnb"} 0.25
demo_wall_seconds_count{backend="bnb"} 1
"""

from __future__ import annotations

import bisect
import os
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

#: Wall-clock buckets (seconds) shared by the solve/job/latency histograms:
#: sub-millisecond cache hits up to the 120 s default solver time limit.
WALL_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Fraction buckets for the presolve reduction-ratio histogram.
RATIO_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)

#: Environment switch: ``REPRO_METRICS=0`` (or ``false``/``off``/``no``)
#: starts the process-global registry disabled.
_ENV_FLAG = "REPRO_METRICS"

_DISABLED_VALUES = {"0", "false", "off", "no"}


class MetricsError(ValueError):
    """Raised for inconsistent metric declarations (name/type/label clashes)."""


def _format_value(value: float) -> str:
    """Integral samples render without a trailing ``.0`` (Prometheus idiom)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _label_suffix(names: tuple[str, ...], values: tuple[str, ...],
                  extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*zip(names, values), *extra]
    if not pairs:
        return ""
    return "{" + ",".join(f'{name}="{value}"' for name, value in pairs) + "}"


class _Metric:
    """Shared bookkeeping of one named instrument fanned out over labels."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _labels_key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Metric):
    """A monotonically increasing tally (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = self._labels_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current tally of one labelled series (0 when never incremented)."""
        key = self._labels_key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return float(sum(self._series.values()))

    def _rows(self) -> list[tuple[str, float]]:
        with self._lock:
            return [(_label_suffix(self.label_names, key), value)
                    for key, value in sorted(self._series.items())]


class Gauge(_Metric):
    """A value that can go up and down (open connections, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        key = self._labels_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = self._labels_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one labelled series (0 when never set)."""
        key = self._labels_key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    _rows = Counter._rows


class Histogram(_Metric):
    """Fixed-bucket distribution of observed samples (per label combination).

    Buckets are cumulative upper bounds in the Prometheus sense: rendering
    emits one ``_bucket{le="..."}`` row per bound plus ``+Inf``, a ``_sum``
    and a ``_count`` — enough to derive rates, means and quantile
    estimates downstream without storing samples.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = WALL_BUCKETS,
                 label_names: Sequence[str] = ()):
        super().__init__(name, help_text, label_names)
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise MetricsError(f"histogram {self.name!r} needs >= 1 bucket")
        self.buckets = ordered

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the labelled series."""
        key = self._labels_key(labels)
        index = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0, "count": 0}
            series["counts"][index] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def count(self, **labels) -> int:
        """Number of samples observed in one labelled series."""
        key = self._labels_key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(series["count"]) if series else 0

    def total_count(self) -> int:
        """Samples observed across every labelled series."""
        with self._lock:
            return sum(int(series["count"]) for series in self._series.values())

    def _snapshot_series(self) -> list[tuple[tuple[str, ...], dict]]:
        with self._lock:
            return [(key, {"counts": list(series["counts"]),
                           "sum": series["sum"], "count": series["count"]})
                    for key, series in sorted(self._series.items())]


class MetricsRegistry:
    """A named set of instruments with one coherent exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call declares the instrument, later calls return the same object (and
    a name reused with a different type or label set raises
    :class:`MetricsError` — the exposition would be ambiguous).
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self.enabled = enabled

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        """Turn the ``record_*`` fast-path back on."""
        self.enabled = True

    def disable(self) -> None:
        """No-op every ``record_*`` helper (the overhead-gate baseline)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (tests; live registries only ever grow)."""
        with self._lock:
            self._metrics.clear()

    # -- declaration ---------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                wanted = tuple(kwargs.get("label_names", ()))
                if existing.label_names != wanted:
                    raise MetricsError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {wanted}")
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text,
                                   label_names=tuple(labels))

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text,
                                   label_names=tuple(labels))

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float] = WALL_BUCKETS,
                  labels: Sequence[str] = ()) -> Histogram:
        """Get or create a :class:`Histogram` with fixed ``buckets``."""
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets, label_names=tuple(labels))

    def get(self, name: str) -> _Metric | None:
        """The registered instrument called ``name`` (``None`` if absent)."""
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda metric: metric.name))

    # -- exposition ----------------------------------------------------
    def render(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: list[str] = []
        for metric in self:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in metric._snapshot_series():
                    cumulative = 0
                    for bound, count in zip(metric.buckets, series["counts"]):
                        cumulative += count
                        suffix = _label_suffix(metric.label_names, key,
                                               (("le", f"{bound:g}"),))
                        lines.append(f"{metric.name}_bucket{suffix} {cumulative}")
                    suffix = _label_suffix(metric.label_names, key,
                                           (("le", "+Inf"),))
                    lines.append(f"{metric.name}_bucket{suffix} {series['count']}")
                    plain = _label_suffix(metric.label_names, key)
                    lines.append(f"{metric.name}_sum{plain} "
                                 f"{_format_value(series['sum'])}")
                    lines.append(f"{metric.name}_count{plain} {series['count']}")
            else:
                for suffix, value in metric._rows():
                    lines.append(f"{metric.name}{suffix} {_format_value(value)}")
        return "\n".join(lines)

    def snapshot(self) -> dict:
        """A JSON-serialisable dump (the ``repro obs dump --json`` shape).

        Histogram series carry per-bucket counts keyed by their upper
        bound plus ``sum`` / ``count`` / ``mean`` — the summary
        :mod:`repro.obs.drift` folds into its walk-off analysis.
        """
        metrics = []
        for metric in self:
            entry: dict = {"name": metric.name, "type": metric.kind,
                           "help": metric.help,
                           "labels": list(metric.label_names), "series": []}
            if isinstance(metric, Histogram):
                for key, series in metric._snapshot_series():
                    count = series["count"]
                    entry["series"].append({
                        "labels": dict(zip(metric.label_names, key)),
                        "buckets": {f"{bound:g}": count_
                                    for bound, count_ in
                                    zip(metric.buckets, series["counts"])},
                        "overflow": series["counts"][-1],
                        "sum": round(series["sum"], 9),
                        "count": count,
                        "mean": (round(series["sum"] / count, 9)
                                 if count else None),
                    })
            else:
                for suffix, value in metric._rows():  # suffix keys stay stable
                    entry["series"].append({"labels": suffix, "value": value})
            metrics.append(entry)
        return {"enabled": self.enabled, "metrics": metrics}


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "1").strip().lower() not in _DISABLED_VALUES


_REGISTRY = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    """The process-global registry every ``record_*`` helper writes to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scope the process-global registry to a block (test isolation).

    >>> from repro.obs.metrics import (MetricsRegistry, get_registry,
    ...                                record_scheduler, use_registry)
    >>> private = MetricsRegistry()
    >>> with use_registry(private):
    ...     record_scheduler("submitted", 3)
    ...     get_registry() is private
    True
    >>> private.get("repro_scheduler_tasks_total").value(event="submitted")
    3.0
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# instrumentation façade — the stack's choke points call these one-liners,
# so metric names, labels and buckets live here and nowhere else.
# ----------------------------------------------------------------------
def record_solve(backend: str, wall_seconds: float,
                 presolve: Mapping | None = None) -> None:
    """One logical ILP solve: wall time by backend, presolve shrinkage.

    Called by ``Model.solve`` / ``solve_models`` after stats are stamped,
    so the ``backend`` label carries the resolved name (a portfolio win
    shows up as ``portfolio[scipy]``).
    """
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.histogram(
        "repro_solve_wall_seconds",
        "ILP solve wall time by resolved backend",
        labels=("backend",)).observe(wall_seconds, backend=backend)
    if presolve:
        original = presolve.get("original_variables") or 0
        reduced = presolve.get("reduced_variables") or 0
        if original > 0:
            registry.histogram(
                "repro_presolve_reduction_ratio",
                "fraction of variables removed by the presolve pipeline",
                buckets=RATIO_BUCKETS).observe(1.0 - reduced / original)


def record_scheduler(event: str, amount: int = 1) -> None:
    """Mirror one :class:`~repro.sched.scheduler.SchedulerStats` tick."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_scheduler_tasks_total",
        "scheduler task dispositions (submitted/cache_hits/deduped/"
        "coalesced/executed)",
        labels=("event",)).inc(amount, event=event)


def record_flight(delta: int) -> None:
    """Adjust the in-flight leader gauge (the scheduler queue depth)."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.gauge(
        "repro_scheduler_inflight",
        "single-flight computations currently led (scheduler queue depth)",
    ).inc(delta)


def record_cache(tier: str, outcome: str) -> None:
    """One design-cache probe against ``tier`` (``memory``/``disk``)."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_cache_requests_total",
        "design-cache probes by tier and outcome",
        labels=("tier", "outcome")).inc(tier=tier, outcome=outcome)


def record_portfolio_win(backend: str) -> None:
    """The racer that settled one portfolio solve."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_portfolio_wins_total",
        "portfolio races settled, by winning racer",
        labels=("backend",)).inc(backend=backend)


def record_portfolio_prediction(predicted: str, winner: str,
                                mode: str) -> None:
    """One adaptive-portfolio decision: was the predicted arm the winner?"""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_portfolio_predictions_total",
        "adaptive portfolio predictions by mode and outcome",
        labels=("mode", "outcome")).inc(
            mode=mode, outcome="hit" if predicted == winner else "miss")


def record_job(kind: str, status: str, wall_seconds: float,
               cached: bool) -> None:
    """One :meth:`repro.api.Session.run` envelope."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_jobs_total", "session jobs by kind and envelope status",
        labels=("kind", "status")).inc(kind=kind, status=status)
    if cached:
        registry.counter(
            "repro_jobs_cached_total", "session jobs served fully from cache",
            labels=("kind",)).inc(kind=kind)
    registry.histogram(
        "repro_job_wall_seconds", "session job wall time by kind",
        labels=("kind",)).observe(wall_seconds, kind=kind)


def record_server(event: str, amount: int = 1) -> None:
    """One TCP-transport counter tick (connections, rejections, ...)."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.counter(
        "repro_server_events_total",
        "TCP transport events (connections_total/jobs_started/"
        "jobs_rejected/protocol_errors)",
        labels=("event",)).inc(amount, event=event)


def set_connections_open(count: int) -> None:
    """Publish the TCP daemon's open-connection gauge."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.gauge(
        "repro_server_connections_open",
        "currently open TCP serve connections").set(count)


def record_connection_job(wall_seconds: float) -> None:
    """Dispatch-to-completion latency of one TCP-submitted job."""
    registry = _REGISTRY
    if not registry.enabled:
        return
    registry.histogram(
        "repro_server_job_wall_seconds",
        "per-connection job latency (dispatch to completion)",
    ).observe(wall_seconds)
