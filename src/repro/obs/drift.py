"""Drift detection: flag distributions walking away from the baseline.

The ``repro bench compare`` gate answers one question — "is this single
run more than ``threshold`` times slower than the best prior?" — which
misses the slow-boil failure mode: a timing that creeps 10% per week
never trips a 1.5x gate yet doubles in two months.  This module looks at
a *series* of observations per timing key (chronologically ordered bench
reports, and/or live histogram summaries from
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) and compares the most
recent ``window`` values against a committed baseline:

* ``drifting`` — the geometric mean of the window's ratios exceeds
  ``drift_ratio`` **and** every ratio in the window is above 1.0 (the
  walk-off is consistent, not one noisy sample);
* ``improved`` — the mirror image (gmean below ``1/drift_ratio``, every
  ratio below 1.0);
* ``noise`` — the baseline is under the ``min_seconds`` floor, so ratios
  are scheduler jitter;
* ``new`` — the baseline never recorded this key;
* ``ok`` — everything else.

With a single report in the series the check degenerates to a plain
ratio test (a window of one), which still catches a step change.

>>> from repro.obs.drift import detect_drift
>>> baseline = {"cold/sweep:fig1": 1.0, "cold/sweep:fig2": 1.0}
>>> series = [("r1", {"cold/sweep:fig1": 1.3, "cold/sweep:fig2": 0.9}),
...           ("r2", {"cold/sweep:fig1": 1.4, "cold/sweep:fig2": 1.2}),
...           ("r3", {"cold/sweep:fig1": 1.5, "cold/sweep:fig2": 0.8})]
>>> report = detect_drift(baseline, series, drift_ratio=1.25, window=3)
>>> {row.unit: row.verdict for row in report.rows}
{'cold/sweep:fig1': 'drifting', 'cold/sweep:fig2': 'ok'}
>>> report.ok
False
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..bench.compare import DEFAULT_MIN_SECONDS, flatten_timings

#: Default consistent-walk-off ratio: gentler than the 1.5x step gate
#: because drift requires *every* window sample to lean the same way.
DEFAULT_DRIFT_RATIO = 1.25

#: Default number of most-recent observations examined per key.
DEFAULT_WINDOW = 3

#: Verdicts a drift row can carry.
DRIFT_VERDICTS = ("ok", "drifting", "improved", "noise", "new")


@dataclass(frozen=True)
class DriftRow:
    """One timing key's walk-off verdict."""

    unit: str
    baseline_seconds: float | None
    window: tuple[float, ...]        # most recent values, oldest first
    ratios: tuple[float, ...]        # window / baseline
    gmean_ratio: float | None
    verdict: str                     # one of DRIFT_VERDICTS

    def as_dict(self) -> dict:
        return {
            "unit": self.unit,
            "baseline_s": self.baseline_seconds,
            "window": list(self.window),
            "ratios": list(self.ratios),
            "gmean_ratio": self.gmean_ratio,
            "verdict": self.verdict,
        }


@dataclass
class DriftReport:
    """Outcome of a drift sweep over every observed timing key."""

    drift_ratio: float
    window: int
    min_seconds: float
    baseline_source: str
    sources: list[str] = field(default_factory=list)
    rows: list[DriftRow] = field(default_factory=list)

    @property
    def drifting(self) -> list[DriftRow]:
        return [row for row in self.rows if row.verdict == "drifting"]

    @property
    def ok(self) -> bool:
        """True when no key is consistently walking off — the CI gate."""
        return not self.drifting

    def as_dict(self) -> dict:
        return {
            "drift_ratio": self.drift_ratio,
            "window": self.window,
            "min_seconds": self.min_seconds,
            "baseline": self.baseline_source,
            "sources": list(self.sources),
            "ok": self.ok,
            "drifting": [row.unit for row in self.drifting],
            "rows": [row.as_dict() for row in self.rows],
        }


def series_from_reports(
        pairs: Sequence[tuple[str, Mapping]]) -> list[tuple[str, dict[str, float]]]:
    """Flatten (source, schema-2 report) pairs into per-key timing maps.

    Pairs must already be in chronological order (``repro bench history``
    passes them in argument order); each becomes one observation per key.
    """
    return [(str(source), flatten_timings(report)) for source, report in pairs]


def series_from_metrics(
        snapshots: Sequence[tuple[str, Mapping]]) -> list[tuple[str, dict[str, float]]]:
    """Turn registry snapshots into timing maps keyed ``metrics/<name><labels>``.

    Each histogram series contributes its *mean* sample (``sum/count``) —
    the summary a live daemon can ship without retaining raw samples.
    Counter/gauge instruments are skipped; drift over monotone counters
    is meaningless.

    >>> snap = {"metrics": [{"name": "repro_solve_wall_seconds",
    ...                      "type": "histogram",
    ...                      "series": [{"labels": {"backend": "bnb"},
    ...                                  "sum": 4.0, "count": 8}]}]}
    >>> series_from_metrics([("live", snap)])
    [('live', {'metrics/repro_solve_wall_seconds{backend=bnb}': 0.5})]
    """
    series = []
    for source, snapshot in snapshots:
        flat: dict[str, float] = {}
        for metric in snapshot.get("metrics", []):
            if metric.get("type") != "histogram":
                continue
            for entry in metric.get("series", []):
                count = entry.get("count") or 0
                if not count:
                    continue
                labels = entry.get("labels") or {}
                suffix = ""
                if isinstance(labels, Mapping) and labels:
                    inner = ",".join(f"{k}={v}"
                                     for k, v in sorted(labels.items()))
                    suffix = "{" + inner + "}"
                key = f"metrics/{metric['name']}{suffix}"
                flat[key] = float(entry["sum"]) / count
        series.append((str(source), flat))
    return series


def detect_drift(baseline: Mapping[str, float],
                 series: Sequence[tuple[str, Mapping[str, float]]],
                 drift_ratio: float = DEFAULT_DRIFT_RATIO,
                 window: int = DEFAULT_WINDOW,
                 min_seconds: float = DEFAULT_MIN_SECONDS,
                 baseline_source: str = "baseline") -> DriftReport:
    """Judge every key seen in ``series`` against ``baseline``.

    ``series`` pairs a source name with a flat ``{key: seconds}`` map,
    oldest first; only the last ``window`` observations per key are
    judged.  A key must appear in at least one series entry to produce a
    row — baseline keys nobody re-measured are silently ignored (they
    cannot have drifted).
    """
    if drift_ratio <= 1.0:
        raise ValueError("drift_ratio must be > 1.0")
    if window < 1:
        raise ValueError("window must be >= 1")
    report = DriftReport(drift_ratio=drift_ratio, window=window,
                         min_seconds=min_seconds,
                         baseline_source=baseline_source,
                         sources=[source for source, _ in series])
    observed: dict[str, list[float]] = {}
    for _, flat in series:
        for key, seconds in flat.items():
            observed.setdefault(key, []).append(float(seconds))
    for key in sorted(observed):
        recent = tuple(observed[key][-window:])
        base = baseline.get(key)
        if base is None:
            report.rows.append(DriftRow(
                unit=key, baseline_seconds=None, window=recent,
                ratios=(), gmean_ratio=None, verdict="new"))
            continue
        base = float(base)
        if base <= 0 or base < min_seconds:
            report.rows.append(DriftRow(
                unit=key, baseline_seconds=base, window=recent,
                ratios=(), gmean_ratio=None, verdict="noise"))
            continue
        ratios = tuple(value / base for value in recent)
        gmean = math.exp(sum(math.log(max(r, 1e-12)) for r in ratios)
                         / len(ratios))
        if gmean > drift_ratio and all(r > 1.0 for r in ratios):
            verdict = "drifting"
        elif gmean < 1.0 / drift_ratio and all(r < 1.0 for r in ratios):
            verdict = "improved"
        else:
            verdict = "ok"
        report.rows.append(DriftRow(
            unit=key, baseline_seconds=base, window=recent, ratios=ratios,
            gmean_ratio=round(gmean, 4), verdict=verdict))
    return report


def render_drift(report: DriftReport, verbose: bool = False) -> str:
    """The drift table ``repro bench history --drift`` prints.

    Non-verbose output shows only drifting/improved/new rows plus a
    summary line; ``verbose`` includes every judged key.
    """
    from ..reporting.tables import format_table

    interesting = ("drifting", "improved", "new")
    rows = [row for row in report.rows
            if verbose or row.verdict in interesting]
    rendered: list[str] = []
    if rows:
        rendered.append(format_table(
            [{
                "unit": row.unit,
                "baseline_s": ("-" if row.baseline_seconds is None
                               else f"{row.baseline_seconds:.3f}"),
                "window": " ".join(f"{value:.3f}" for value in row.window),
                "gmean": ("-" if row.gmean_ratio is None
                          else f"{row.gmean_ratio:.2f}x"),
                "verdict": (row.verdict.upper() if row.verdict == "drifting"
                            else row.verdict),
            } for row in rows],
            ["unit", "baseline_s", "window", "gmean", "verdict"],
            title=f"Drift vs {report.baseline_source} (ratio "
                  f"{report.drift_ratio:g}x over window {report.window})"))
    counts = {verdict: sum(1 for row in report.rows if row.verdict == verdict)
              for verdict in DRIFT_VERDICTS}
    summary = ", ".join(f"{count} {verdict}"
                        for verdict, count in counts.items() if count)
    rendered.append(f"judged {len(report.rows)} series over "
                    f"{len(report.sources)} observation set(s): "
                    f"{summary or 'nothing observed'}")
    if report.drifting:
        rendered.append(f"{len(report.drifting)} series walking off the "
                        f"{report.baseline_source} baseline")
    else:
        rendered.append("no drift")
    return "\n".join(rendered)
