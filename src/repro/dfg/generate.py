"""Seeded random data-flow-graph generation.

The paper's evaluation is frozen to seven hand-built circuits; this module
opens the pipeline to an unbounded corpus.  :func:`generate_behavioral`
produces a random *valid* behavioural DFG from a :class:`GeneratorConfig`
(operation count, operation kinds, sharing pressure, output density),
:func:`generate_scheduled` pushes it through the HLS front end (list
scheduling + module binding) so it is ready for the BIST synthesizers, and
:func:`generate_corpus` yields a reproducible stream of such circuits for
fuzzing (``repro fuzz``) and property-based tests.

Determinism contract: the same config (including ``seed``) always yields the
same graph, across processes and Python versions — the generator uses only
``random.Random`` (whose sequence is stable) and sorted iteration orders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator

from .builder import DFGBuilder
from .graph import DataFlowGraph


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random scheduled-DFG generator.

    Attributes
    ----------
    num_operations:
        Number of operations in the generated graph.
    kinds:
        Operation kinds to draw from (each maps to a functional-module class
        via :data:`repro.dfg.graph.DEFAULT_MODULE_CLASS`).
    num_inputs:
        Number of primary inputs; default scales with the operation count.
    sharing_pressure:
        In ``[0, 1]``: how tightly the functional-unit budget is squeezed
        during list scheduling.  ``1.0`` gives one module per class (maximal
        sharing, deep schedules); ``0.0`` gives one module per operation of
        the class (no sharing, wide schedules).
    output_density:
        Probability that an internally-consumed value is *also* tapped as a
        primary output.  Dangling values (no consumer) are always primary
        outputs — silicon computing a value nobody reads is not a circuit.
    constant_probability:
        Probability that an operand position is filled by a constant rather
        than a variable.
    seed:
        Seed of the private :class:`random.Random` stream.
    name:
        Graph name; empty derives ``rand_s<seed>_o<num_operations>``.
    """

    num_operations: int = 8
    kinds: tuple[str, ...] = ("add", "mul", "sub")
    num_inputs: int | None = None
    sharing_pressure: float = 0.75
    output_density: float = 0.25
    constant_probability: float = 0.15
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        if self.num_operations < 1:
            raise ValueError("num_operations must be >= 1")
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        if not 0.0 <= self.sharing_pressure <= 1.0:
            raise ValueError("sharing_pressure must be in [0, 1]")
        if not 0.0 <= self.output_density <= 1.0:
            raise ValueError("output_density must be in [0, 1]")
        if not 0.0 <= self.constant_probability < 1.0:
            raise ValueError("constant_probability must be in [0, 1)")

    @property
    def graph_name(self) -> str:
        return self.name or f"rand_s{self.seed}_o{self.num_operations}"


def generate_behavioral(config: GeneratorConfig | None = None, **overrides) -> DataFlowGraph:
    """Generate a random, valid, *unscheduled* behavioural DFG.

    Keyword overrides are applied on top of ``config`` (or the defaults), so
    ``generate_behavioral(seed=3, num_operations=12)`` reads naturally.
    """
    config = replace(config or GeneratorConfig(), **overrides)
    rng = random.Random(config.seed)

    builder = DFGBuilder(config.graph_name)
    num_inputs = (config.num_inputs if config.num_inputs is not None
                  else max(2, config.num_operations // 3 + 1))
    # Port 0 of every operation is a variable, so there are exactly
    # num_operations guaranteed variable slots; more inputs than that could
    # never all be consumed (the analysis layer rejects dangling inputs).
    num_inputs = min(num_inputs, config.num_operations)
    inputs = [builder.input(f"in{i}") for i in range(num_inputs)]
    available = list(inputs)

    produced = []
    consumed: set[int] = set()
    pending_inputs = list(inputs)  # primary inputs still awaiting a consumer

    def pick_variable():
        # Drain the unconsumed primary inputs first so none is left dangling.
        if pending_inputs:
            return pending_inputs.pop(rng.randrange(len(pending_inputs)))
        return rng.choice(available)

    for index in range(config.num_operations):
        kind = rng.choice(config.kinds)
        # Port 0 is always a variable so every operation hangs off the
        # dataflow; port 1 may be a constant.
        left = pick_variable()
        consumed.add(int(left))
        if rng.random() < config.constant_probability:
            right = builder.constant(float(rng.randint(1, 9)))
        else:
            right = pick_variable()
            consumed.add(int(right))
        out = builder.op(kind, left, right, name=f"t{index}")
        available.append(out)
        produced.append(out)

    for handle in produced:
        if int(handle) not in consumed or rng.random() < config.output_density:
            builder.output(handle)
    return builder.build()


def resource_limits_for(graph: DataFlowGraph, sharing_pressure: float) -> dict[str, int]:
    """Functional-unit budget per class implied by the sharing pressure.

    Linear interpolation between one module per operation of a class
    (``sharing_pressure = 0``) and a single module per class
    (``sharing_pressure = 1``).
    """
    limits: dict[str, int] = {}
    for cls, ops in sorted(graph.operation_kinds().items()):
        span = len(ops) - 1
        limits[cls] = max(1, len(ops) - round(sharing_pressure * span))
    return limits


def generate_scheduled(config: GeneratorConfig | None = None, **overrides) -> DataFlowGraph:
    """Generate a random *scheduled, module-bound* DFG (synthesizer-ready)."""
    from ..hls.frontend import elaborate  # lazy: dfg must not hard-import hls

    config = replace(config or GeneratorConfig(), **overrides)
    graph = generate_behavioral(config)
    limits = resource_limits_for(graph, config.sharing_pressure)
    return elaborate(graph, resource_limits=limits).graph


def generate_corpus(count: int, config: GeneratorConfig | None = None,
                    **overrides) -> Iterator[DataFlowGraph]:
    """Yield ``count`` scheduled random circuits with consecutive seeds.

    Circuit ``i`` uses ``config.seed + i``, so a failing case reported by the
    fuzzer as seed ``s`` is regenerated exactly by ``generate_scheduled(seed=s)``
    with the same remaining knobs.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    config = replace(config or GeneratorConfig(), **overrides)
    for i in range(count):
        yield generate_scheduled(replace(config, seed=config.seed + i, name=""))
