"""Fluent construction of data flow graphs.

:class:`DFGBuilder` is the public way to create DFGs by hand (the benchmark
circuits in :mod:`repro.circuits` are all written with it)::

    builder = DFGBuilder("example")
    a = builder.input("a")
    b = builder.input("b")
    s = builder.op("add", a, b, cstep=0)
    p = builder.op("mul", s, builder.constant(3), cstep=1)
    builder.output(p)
    graph = builder.build()

Operands may be variable handles returned by :meth:`DFGBuilder.input` /
:meth:`DFGBuilder.op`, :class:`Constant` objects, or plain numbers (which are
converted to constants).
"""

from __future__ import annotations

from .graph import Constant, DataFlowGraph, DfgVariable, DFGError, Operation


class VariableHandle(int):
    """A variable id with the builder attached, so handles read naturally."""

    def __new__(cls, value: int, name: str):
        handle = super().__new__(cls, value)
        handle._name = name
        return handle

    @property
    def var_name(self) -> str:
        return self._name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<var {self._name}#{int(self)}>"


class DFGBuilder:
    """Incrementally build a :class:`DataFlowGraph`."""

    def __init__(self, name: str):
        self.name = name
        self._operations: dict[int, Operation] = {}
        self._variables: dict[int, DfgVariable] = {}
        self._next_var = 0
        self._next_op = 0
        self._built = False

    # ------------------------------------------------------------------
    def input(self, name: str = "") -> VariableHandle:
        """Declare a primary input variable."""
        return self._new_variable(name or f"in{self._next_var}", producer=None)

    def constant(self, value: float, name: str = "") -> Constant:
        """Declare a constant operand (member of the DFG set ``C``)."""
        return Constant(float(value), name)

    def op(self, kind: str, *operands, cstep: int | None = None,
           commutative: bool | None = None, name: str = "") -> VariableHandle:
        """Add an operation and return a handle to its output variable.

        Parameters
        ----------
        kind:
            Operation kind (``"add"``, ``"mul"``, ``"sub"``, ...).
        operands:
            Input operands in port order: variable handles, constants, or
            plain numbers (converted to constants).
        cstep:
            Optional control step, for graphs built with a schedule already
            chosen; leave ``None`` to schedule later with :mod:`repro.hls`.
        commutative:
            Override the default commutativity inferred from ``kind``.
        """
        if not operands:
            raise DFGError(f"operation of kind {kind!r} needs at least one operand")
        inputs: list[int | Constant] = []
        for operand in operands:
            if isinstance(operand, Constant):
                inputs.append(operand)
            elif isinstance(operand, bool):
                raise DFGError("booleans are not valid DFG operands")
            elif isinstance(operand, int):
                if operand not in self._variables:
                    raise DFGError(f"unknown variable id {operand} used as operand")
                inputs.append(int(operand))
            elif isinstance(operand, float):
                inputs.append(Constant(operand))
            else:
                raise DFGError(f"unsupported operand type {type(operand)!r}")

        op_id = self._next_op
        self._next_op += 1
        out_name = name or f"t{op_id}"
        out = self._new_variable(out_name, producer=op_id)
        self._operations[op_id] = Operation(
            op_id=op_id,
            kind=kind,
            inputs=tuple(inputs),
            output=int(out),
            cstep=cstep,
            commutative=commutative,
        )
        return out

    def output(self, handle: int) -> None:
        """Mark a variable as a primary output of the data path."""
        if handle not in self._variables:
            raise DFGError(f"unknown variable id {handle} marked as output")
        var = self._variables[handle]
        self._variables[handle] = DfgVariable(
            var_id=var.var_id, name=var.name, producer=var.producer,
            is_primary_output=True,
        )

    def build(self) -> DataFlowGraph:
        """Finalise and validate the graph."""
        graph = DataFlowGraph(self.name, dict(self._operations), dict(self._variables))
        graph.validate()
        self._built = True
        return graph

    # ------------------------------------------------------------------
    def _new_variable(self, name: str, producer: int | None) -> VariableHandle:
        var_id = self._next_var
        self._next_var += 1
        self._variables[var_id] = DfgVariable(var_id=var_id, name=name, producer=producer)
        return VariableHandle(var_id, name)
