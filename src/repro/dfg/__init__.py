"""Data flow graphs: representation, construction, analysis and IO."""

from .graph import (
    COMMUTATIVE_KINDS,
    Constant,
    DataFlowGraph,
    DfgVariable,
    DFGError,
    Operation,
    operations_by_step,
)
from .builder import DFGBuilder, VariableHandle
from .analysis import (
    Lifetime,
    check_register_assignment,
    compatibility_graph,
    concurrent_operation_pairs,
    horizontal_crossings,
    incompatibility_graph,
    incompatible_variable_clique,
    minimum_module_counts,
    minimum_register_count,
    self_adjacency_candidates,
    variable_lifetimes,
)
from .generate import (
    GeneratorConfig,
    generate_behavioral,
    generate_corpus,
    generate_scheduled,
    resource_limits_for,
)
from . import textio

__all__ = [
    "GeneratorConfig",
    "generate_behavioral",
    "generate_corpus",
    "generate_scheduled",
    "resource_limits_for",
    "COMMUTATIVE_KINDS",
    "Constant",
    "DataFlowGraph",
    "DfgVariable",
    "DFGError",
    "Operation",
    "operations_by_step",
    "DFGBuilder",
    "VariableHandle",
    "Lifetime",
    "check_register_assignment",
    "compatibility_graph",
    "concurrent_operation_pairs",
    "horizontal_crossings",
    "incompatibility_graph",
    "incompatible_variable_clique",
    "minimum_module_counts",
    "minimum_register_count",
    "self_adjacency_candidates",
    "variable_lifetimes",
    "textio",
]
