"""Scheduled data flow graphs (DFGs).

The paper's ILP is stated over a *scheduled and module-bound* DFG described by
the sets (section 2.1):

* ``V_o`` — operations, ``V_v`` — variables,
* ``E_i`` — input edges, i.e. ordered triples ``(v, o, l)`` saying that
  variable ``v`` drives input port ``l`` of operation ``o``,
* ``E_o`` — output edges ``(o, v)``,
* ``T`` — control steps, ``C`` — constants.

:class:`DataFlowGraph` stores exactly this information (plus operation kinds
and commutativity, which the formulation needs for equation (3)).  Scheduling
may be left open (``cstep=None``) when a graph is first built; the HLS
substrate in :mod:`repro.hls` fills it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

#: Operation kinds whose two inputs may be swapped (used for equation (3)).
COMMUTATIVE_KINDS = frozenset({"add", "mul", "and", "or", "xor", "max", "min"})

#: Operation kinds that by default map onto the same functional module type.
DEFAULT_MODULE_CLASS = {
    "add": "alu",
    "sub": "alu",
    "and": "logic",
    "or": "logic",
    "xor": "logic",
    "not": "logic",
    "mul": "mult",
    "div": "div",
    "shl": "shift",
    "shr": "shift",
    "max": "alu",
    "min": "alu",
    "cmp": "alu",
}


class DFGError(ValueError):
    """Raised for structurally invalid data flow graphs."""


@dataclass(frozen=True)
class Constant:
    """A constant operand appearing in the DFG (member of the set ``C``)."""

    value: float
    name: str = ""

    def __post_init__(self):
        if not self.name:
            object.__setattr__(self, "name", f"const_{self.value:g}")


@dataclass(frozen=True)
class DfgVariable:
    """A variable of the DFG (member of ``V_v``).

    Attributes
    ----------
    var_id:
        Integer identifier, unique within the graph.
    name:
        Human-readable name.
    producer:
        Operation id producing this variable, or ``None`` for primary inputs.
    is_primary_output:
        Whether the variable leaves the data path (it then still needs a
        register at its final boundary, as in Fig. 1 of the paper).
    """

    var_id: int
    name: str
    producer: int | None = None
    is_primary_output: bool = False

    @property
    def is_primary_input(self) -> bool:
        return self.producer is None


@dataclass(frozen=True)
class Operation:
    """An operation of the DFG (member of ``V_o``).

    ``inputs`` lists, in port order, either variable ids (``int``) or
    :class:`Constant` operands.  ``cstep`` is the control step assigned by the
    scheduler (``None`` while unscheduled), ``module`` the functional module
    assigned by module binding (``None`` while unbound).
    """

    op_id: int
    kind: str
    inputs: tuple[int | Constant, ...]
    output: int
    cstep: int | None = None
    module: int | None = None
    commutative: bool | None = None

    def __post_init__(self):
        if self.commutative is None:
            object.__setattr__(
                self, "commutative",
                self.kind in COMMUTATIVE_KINDS and len(self.inputs) == 2,
            )

    @property
    def input_ports(self) -> range:
        """Port labels ``I(o)`` (0, 1, ... per the paper's convention)."""
        return range(len(self.inputs))

    @property
    def variable_inputs(self) -> list[tuple[int, int]]:
        """Pairs ``(port, variable_id)`` for the non-constant inputs."""
        return [(port, operand) for port, operand in enumerate(self.inputs)
                if isinstance(operand, int)]

    @property
    def constant_inputs(self) -> list[tuple[int, Constant]]:
        """Pairs ``(port, constant)`` for the constant inputs."""
        return [(port, operand) for port, operand in enumerate(self.inputs)
                if isinstance(operand, Constant)]

    @property
    def module_class(self) -> str:
        """Functional-module class this operation needs (adder, multiplier, ...)."""
        return DEFAULT_MODULE_CLASS.get(self.kind, self.kind)


@dataclass
class DataFlowGraph:
    """A (possibly scheduled and module-bound) data flow graph.

    The class is deliberately a passive container; all derived quantities
    (lifetimes, compatibility, crossings) live in :mod:`repro.dfg.analysis`.
    """

    name: str
    operations: dict[int, Operation] = field(default_factory=dict)
    variables: dict[int, DfgVariable] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # paper-notation accessors
    # ------------------------------------------------------------------
    @property
    def operation_ids(self) -> list[int]:
        """The set ``V_o`` as a sorted list."""
        return sorted(self.operations)

    @property
    def variable_ids(self) -> list[int]:
        """The set ``V_v`` as a sorted list."""
        return sorted(self.variables)

    @property
    def input_edges(self) -> list[tuple[int, int, int]]:
        """The set ``E_i`` of triples ``(v, o, l)`` over variable operands."""
        edges = []
        for op in self.operations.values():
            for port, var_id in op.variable_inputs:
                edges.append((var_id, op.op_id, port))
        return edges

    @property
    def output_edges(self) -> list[tuple[int, int]]:
        """The set ``E_o`` of pairs ``(o, v)``."""
        return [(op.op_id, op.output) for op in self.operations.values()]

    @property
    def constants(self) -> list[Constant]:
        """The set ``C`` of constants appearing on operation inputs."""
        seen: dict[str, Constant] = {}
        for op in self.operations.values():
            for _port, const in op.constant_inputs:
                seen.setdefault(const.name, const)
        return [seen[name] for name in sorted(seen)]

    @property
    def control_steps(self) -> list[int]:
        """The set ``T`` of control steps used by the schedule."""
        steps = {op.cstep for op in self.operations.values() if op.cstep is not None}
        if not steps:
            return []
        return list(range(0, max(steps) + 1))

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def is_scheduled(self) -> bool:
        """Whether every operation has a control step."""
        return bool(self.operations) and all(
            op.cstep is not None for op in self.operations.values()
        )

    @property
    def is_module_bound(self) -> bool:
        """Whether every operation has a functional module."""
        return bool(self.operations) and all(
            op.module is not None for op in self.operations.values()
        )

    @property
    def module_ids(self) -> list[int]:
        """The set ``M`` of modules used by the binding (sorted)."""
        return sorted({op.module for op in self.operations.values() if op.module is not None})

    def module_operations(self) -> dict[int, list[int]]:
        """Map each module id to the operations bound to it."""
        by_module: dict[int, list[int]] = {}
        for op in self.operations.values():
            if op.module is not None:
                by_module.setdefault(op.module, []).append(op.op_id)
        return {m: sorted(ops) for m, ops in by_module.items()}

    def module_input_ports(self, module: int) -> range:
        """Input ports ``I(m)`` of a module (max arity over its operations)."""
        ops = self.module_operations().get(module, [])
        if not ops:
            return range(0)
        return range(max(len(self.operations[o].inputs) for o in ops))

    def module_class_of(self, module: int) -> str:
        """Functional class (adder/multiplier/...) of a bound module."""
        ops = self.module_operations().get(module, [])
        if not ops:
            raise DFGError(f"module {module} has no operations bound to it")
        classes = {self.operations[o].module_class for o in ops}
        if len(classes) != 1:
            raise DFGError(f"module {module} mixes operation classes {sorted(classes)}")
        return classes.pop()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def consumers_of(self, var_id: int) -> list[tuple[int, int]]:
        """Operations (as ``(op_id, port)``) that read variable ``var_id``."""
        return [(o, l) for (v, o, l) in self.input_edges if v == var_id]

    def producer_of(self, var_id: int) -> int | None:
        """Operation producing ``var_id`` (None for primary inputs)."""
        return self.variables[var_id].producer

    def primary_inputs(self) -> list[int]:
        """Variables with no producer."""
        return [v for v in self.variable_ids if self.variables[v].is_primary_input]

    def primary_outputs(self) -> list[int]:
        """Variables flagged as leaving the data path."""
        return [v for v in self.variable_ids if self.variables[v].is_primary_output]

    def operations_in_step(self, cstep: int) -> list[int]:
        """Operations scheduled in the given control step."""
        return sorted(o for o, op in self.operations.items() if op.cstep == cstep)

    def operation_kinds(self) -> dict[str, list[int]]:
        """Group operation ids by module class."""
        groups: dict[str, list[int]] = {}
        for op in self.operations.values():
            groups.setdefault(op.module_class, []).append(op.op_id)
        return {k: sorted(v) for k, v in groups.items()}

    # ------------------------------------------------------------------
    # mutation helpers (return new graphs; the container itself is mutable
    # only through these, which keeps invariants in one place)
    # ------------------------------------------------------------------
    def with_schedule(self, schedule: Mapping[int, int]) -> "DataFlowGraph":
        """Return a copy with control steps assigned from ``schedule``."""
        missing = set(self.operations) - set(schedule)
        if missing:
            raise DFGError(f"schedule missing operations: {sorted(missing)}")
        new_ops = {
            op_id: replace(op, cstep=int(schedule[op_id]))
            for op_id, op in self.operations.items()
        }
        graph = DataFlowGraph(self.name, new_ops, dict(self.variables))
        graph.validate()
        return graph

    def with_module_binding(self, binding: Mapping[int, int]) -> "DataFlowGraph":
        """Return a copy with functional modules assigned from ``binding``."""
        missing = set(self.operations) - set(binding)
        if missing:
            raise DFGError(f"module binding missing operations: {sorted(missing)}")
        new_ops = {
            op_id: replace(op, module=int(binding[op_id]))
            for op_id, op in self.operations.items()
        }
        graph = DataFlowGraph(self.name, new_ops, dict(self.variables))
        graph.validate()
        return graph

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`DFGError` on violation."""
        for op_id, op in self.operations.items():
            if op.op_id != op_id:
                raise DFGError(f"operation key {op_id} does not match id {op.op_id}")
            if op.output not in self.variables:
                raise DFGError(f"operation {op_id} outputs unknown variable {op.output}")
            if self.variables[op.output].producer != op_id:
                raise DFGError(
                    f"variable {op.output} does not list operation {op_id} as producer"
                )
            if not op.inputs:
                raise DFGError(f"operation {op_id} has no inputs")
            for port, operand in enumerate(op.inputs):
                if isinstance(operand, int) and operand not in self.variables:
                    raise DFGError(
                        f"operation {op_id} reads unknown variable {operand} on port {port}"
                    )
        for var_id, var in self.variables.items():
            if var.var_id != var_id:
                raise DFGError(f"variable key {var_id} does not match id {var.var_id}")
            if var.producer is not None:
                if var.producer not in self.operations:
                    raise DFGError(f"variable {var_id} produced by unknown op {var.producer}")
                if self.operations[var.producer].output != var_id:
                    raise DFGError(
                        f"variable {var_id} claims producer {var.producer} "
                        "which outputs a different variable"
                    )
        self._validate_schedule()
        self._validate_module_binding()
        self._validate_acyclic()

    def _validate_schedule(self) -> None:
        for op in self.operations.values():
            if op.cstep is None:
                continue
            if op.cstep < 0:
                raise DFGError(f"operation {op.op_id} scheduled at negative step {op.cstep}")
            for _port, var_id in op.variable_inputs:
                producer = self.variables[var_id].producer
                if producer is None:
                    continue
                producer_step = self.operations[producer].cstep
                if producer_step is not None and producer_step >= op.cstep:
                    raise DFGError(
                        f"data dependency violated: op {producer} (step {producer_step}) "
                        f"feeds op {op.op_id} (step {op.cstep})"
                    )

    def _validate_module_binding(self) -> None:
        by_module = self.module_operations()
        for module, ops in by_module.items():
            classes = {self.operations[o].module_class for o in ops}
            if len(classes) > 1:
                raise DFGError(f"module {module} mixes classes {sorted(classes)}")
            steps = [self.operations[o].cstep for o in ops]
            if all(s is not None for s in steps) and len(steps) != len(set(steps)):
                raise DFGError(
                    f"module {module} executes two operations in the same control step"
                )

    def _validate_acyclic(self) -> None:
        # Kahn's algorithm over operation dependencies.
        consumers: dict[int, list[int]] = {o: [] for o in self.operations}
        indegree = {o: 0 for o in self.operations}
        for op in self.operations.values():
            for _port, var_id in op.variable_inputs:
                producer = self.variables[var_id].producer
                if producer is not None:
                    consumers[producer].append(op.op_id)
                    indegree[op.op_id] += 1
        frontier = [o for o, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            visited += 1
            for nxt in consumers[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        if visited != len(self.operations):
            raise DFGError("data flow graph contains a dependency cycle")

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations[o] for o in self.operation_ids)

    def __len__(self) -> int:
        return len(self.operations)

    def summary(self) -> dict:
        """Compact description used by reports and tests."""
        return {
            "name": self.name,
            "operations": len(self.operations),
            "variables": len(self.variables),
            "primary_inputs": len(self.primary_inputs()),
            "control_steps": len(self.control_steps),
            "modules": len(self.module_ids),
            "scheduled": self.is_scheduled,
            "module_bound": self.is_module_bound,
        }


def operations_by_step(graph: DataFlowGraph) -> dict[int, list[int]]:
    """Group scheduled operations by control step."""
    steps: dict[int, list[int]] = {}
    for op in graph.operations.values():
        if op.cstep is None:
            raise DFGError(f"operation {op.op_id} is not scheduled")
        steps.setdefault(op.cstep, []).append(op.op_id)
    return {t: sorted(ops) for t, ops in sorted(steps.items())}
