"""Lifetime and compatibility analysis of scheduled DFGs.

These are the quantities section 2 of the paper builds on:

* **variable lifetimes** — the clock boundaries at which a variable must be
  held in a register;
* **horizontal crossing** — the number of variables alive at a control-step
  boundary; its maximum is the minimum register count;
* **variable compatibility** — two variables whose lifetimes overlap are
  *incompatible* and must occupy different registers;
* **minimum module counts** — the maximum number of concurrently scheduled
  operations of each functional class;
* the **maximum clique of pairwise incompatible variables**, which the paper
  pins to registers a priori to cut the register-permutation symmetry
  (section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import networkx as nx

from .graph import DataFlowGraph, DFGError

PrimaryInputPolicy = Literal["at_first_use", "from_start"]


@dataclass(frozen=True)
class Lifetime:
    """Inclusive interval of clock boundaries during which a variable lives.

    Boundary ``b`` is the register snapshot taken between control step
    ``b - 1`` and control step ``b``; a variable consumed by an operation in
    step ``t`` must be present at boundary ``t``, and a variable produced in
    step ``t`` becomes available at boundary ``t + 1``.
    """

    birth: int
    death: int

    def __post_init__(self):
        if self.death < self.birth:
            raise DFGError(f"lifetime death {self.death} precedes birth {self.birth}")

    def overlaps(self, other: "Lifetime") -> bool:
        """Whether the two inclusive intervals share at least one boundary."""
        return self.birth <= other.death and other.birth <= self.death

    def boundaries(self) -> range:
        return range(self.birth, self.death + 1)

    @property
    def span(self) -> int:
        return self.death - self.birth + 1


def variable_lifetimes(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> dict[int, Lifetime]:
    """Compute the lifetime of every variable of a scheduled DFG.

    Parameters
    ----------
    graph:
        A fully scheduled DFG.
    primary_input_policy:
        ``"at_first_use"`` (default, matching the paper's Fig. 1 example)
        keeps a primary input in a register only from the boundary of its
        first consuming step; ``"from_start"`` keeps it from boundary 0.
    """
    if not graph.is_scheduled:
        raise DFGError("lifetimes require a fully scheduled DFG")

    lifetimes: dict[int, Lifetime] = {}
    for var_id in graph.variable_ids:
        var = graph.variables[var_id]
        consumer_steps = [graph.operations[o].cstep for o, _l in graph.consumers_of(var_id)]

        if var.is_primary_input:
            if not consumer_steps:
                raise DFGError(f"primary input {var_id} is never consumed")
            birth = 0 if primary_input_policy == "from_start" else min(consumer_steps)
            death = max(consumer_steps)
        else:
            producer_step = graph.operations[var.producer].cstep
            birth = producer_step + 1
            death = max(consumer_steps) if consumer_steps else birth
            if var.is_primary_output:
                death = max(death, birth)
        lifetimes[var_id] = Lifetime(birth, death)
    return lifetimes


def horizontal_crossings(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> dict[int, int]:
    """Number of live variables at every clock boundary."""
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    if not lifetimes:
        return {}
    last = max(lt.death for lt in lifetimes.values())
    crossings = {boundary: 0 for boundary in range(0, last + 1)}
    for lifetime in lifetimes.values():
        for boundary in lifetime.boundaries():
            crossings[boundary] += 1
    return crossings


def minimum_register_count(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> int:
    """Minimum number of registers = maximal horizontal crossing (section 2)."""
    crossings = horizontal_crossings(graph, primary_input_policy)
    return max(crossings.values(), default=0)


def minimum_module_counts(graph: DataFlowGraph) -> dict[str, int]:
    """Minimum number of modules per functional class (max concurrency)."""
    if not graph.is_scheduled:
        raise DFGError("module counts require a scheduled DFG")
    counts: dict[str, int] = {}
    for cstep in graph.control_steps:
        per_class: dict[str, int] = {}
        for op_id in graph.operations_in_step(cstep):
            cls = graph.operations[op_id].module_class
            per_class[cls] = per_class.get(cls, 0) + 1
        for cls, count in per_class.items():
            counts[cls] = max(counts.get(cls, 0), count)
    return counts


def incompatibility_graph(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> nx.Graph:
    """Graph with an edge between every pair of incompatible variables."""
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    conflict = nx.Graph()
    conflict.add_nodes_from(lifetimes)
    variables = sorted(lifetimes)
    for i, u in enumerate(variables):
        for v in variables[i + 1:]:
            if lifetimes[u].overlaps(lifetimes[v]):
                conflict.add_edge(u, v)
    return conflict


def compatibility_graph(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> nx.Graph:
    """Complement of :func:`incompatibility_graph`."""
    conflict = incompatibility_graph(graph, primary_input_policy)
    return nx.complement(conflict)


def incompatible_variable_clique(
    graph: DataFlowGraph,
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> list[int]:
    """A maximum set of pairwise-incompatible variables (section 3.5).

    Because incompatibility comes from interval overlap, the conflict graph is
    an interval graph and a maximum clique is simply the set of variables
    alive at the boundary of maximal horizontal crossing.  The returned list
    is sorted by variable id so the pinning is deterministic.
    """
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    crossings = horizontal_crossings(graph, primary_input_policy)
    if not crossings:
        return []
    best_boundary = max(crossings, key=lambda b: (crossings[b], -b))
    clique = [v for v, lt in lifetimes.items()
              if lt.birth <= best_boundary <= lt.death]
    return sorted(clique)


def concurrent_operation_pairs(graph: DataFlowGraph) -> list[tuple[int, int]]:
    """Pairs of operations scheduled in the same control step.

    Such pairs may not share a functional module; module binding and the
    formulation's optional operation-assignment constraints both use this.
    """
    pairs: list[tuple[int, int]] = []
    for cstep in graph.control_steps:
        ops = graph.operations_in_step(cstep)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                pairs.append((a, b))
    return pairs


def self_adjacency_candidates(graph: DataFlowGraph) -> list[tuple[int, int]]:
    """Variable pairs ``(input_var, output_var)`` of the same operation.

    If both end up in the same register, that register both feeds the module
    executing the operation and captures its result — a *self-adjacent*
    register, which in BIST must become a costly CBILBO.  Baseline methods
    (RALLOC in particular) add conflict edges for these pairs.
    """
    pairs: list[tuple[int, int]] = []
    for op in graph.operations.values():
        for _port, var_id in op.variable_inputs:
            pairs.append((var_id, op.output))
    return pairs


def check_register_assignment(
    graph: DataFlowGraph,
    assignment: dict[int, int],
    primary_input_policy: PrimaryInputPolicy = "at_first_use",
) -> list[str]:
    """Validate a variable→register assignment; return a list of violations."""
    problems: list[str] = []
    lifetimes = variable_lifetimes(graph, primary_input_policy)
    missing = [v for v in graph.variable_ids if v not in assignment]
    if missing:
        problems.append(f"variables without a register: {missing}")
    by_register: dict[int, list[int]] = {}
    for var_id, reg in assignment.items():
        by_register.setdefault(reg, []).append(var_id)
    for reg, members in sorted(by_register.items()):
        members = sorted(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if u in lifetimes and v in lifetimes and lifetimes[u].overlaps(lifetimes[v]):
                    problems.append(
                        f"register {reg} holds overlapping variables {u} and {v}"
                    )
    return problems
