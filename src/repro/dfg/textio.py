"""Serialisation of data flow graphs to and from plain dictionaries / JSON.

The format is intentionally simple and line-oriented so that DFGs can be
checked into a repository, diffed, and edited by hand::

    {
      "name": "example",
      "variables": [{"id": 0, "name": "a", "producer": null, "output": false}, ...],
      "operations": [
        {"id": 8, "kind": "add", "inputs": [0, 1], "output": 4,
         "cstep": 0, "module": 3, "commutative": true},
        {"id": 9, "kind": "mul", "inputs": [4, {"const": 3.0}], "output": 5, ...}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .graph import Constant, DataFlowGraph, DfgVariable, DFGError, Operation


def to_dict(graph: DataFlowGraph) -> dict[str, Any]:
    """Convert a DFG to a JSON-serialisable dictionary."""
    variables = [
        {
            "id": var.var_id,
            "name": var.name,
            "producer": var.producer,
            "output": var.is_primary_output,
        }
        for var in (graph.variables[v] for v in graph.variable_ids)
    ]
    operations = []
    for op in (graph.operations[o] for o in graph.operation_ids):
        inputs: list[Any] = []
        for operand in op.inputs:
            if isinstance(operand, Constant):
                inputs.append({"const": operand.value, "name": operand.name})
            else:
                inputs.append(operand)
        operations.append(
            {
                "id": op.op_id,
                "kind": op.kind,
                "inputs": inputs,
                "output": op.output,
                "cstep": op.cstep,
                "module": op.module,
                "commutative": op.commutative,
            }
        )
    return {"name": graph.name, "variables": variables, "operations": operations}


def from_dict(data: dict[str, Any]) -> DataFlowGraph:
    """Reconstruct a DFG from a dictionary produced by :func:`to_dict`."""
    try:
        variables = {
            int(v["id"]): DfgVariable(
                var_id=int(v["id"]),
                name=str(v.get("name", f"v{v['id']}")),
                producer=None if v.get("producer") is None else int(v["producer"]),
                is_primary_output=bool(v.get("output", False)),
            )
            for v in data["variables"]
        }
        operations = {}
        for o in data["operations"]:
            inputs: list[int | Constant] = []
            for operand in o["inputs"]:
                if isinstance(operand, dict):
                    inputs.append(Constant(float(operand["const"]), operand.get("name", "")))
                else:
                    inputs.append(int(operand))
            operations[int(o["id"])] = Operation(
                op_id=int(o["id"]),
                kind=str(o["kind"]),
                inputs=tuple(inputs),
                output=int(o["output"]),
                cstep=None if o.get("cstep") is None else int(o["cstep"]),
                module=None if o.get("module") is None else int(o["module"]),
                commutative=o.get("commutative"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise DFGError(f"malformed DFG dictionary: {exc}") from exc

    graph = DataFlowGraph(str(data.get("name", "unnamed")), operations, variables)
    graph.validate()
    return graph


def to_json(graph: DataFlowGraph, indent: int = 2) -> str:
    """Serialise a DFG to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent, sort_keys=True)


def from_json(text: str) -> DataFlowGraph:
    """Parse a DFG from a JSON string."""
    return from_dict(json.loads(text))


def save(graph: DataFlowGraph, path: str | Path) -> None:
    """Write a DFG to a JSON file."""
    Path(path).write_text(to_json(graph), encoding="utf-8")


def load(path: str | Path) -> DataFlowGraph:
    """Read a DFG from a JSON file."""
    return from_json(Path(path).read_text(encoding="utf-8"))
