"""The ADVBIST integer linear program (sections 3.1-3.5 of the paper).

:class:`AdvBistFormulation` turns a scheduled, module-bound DFG and a target
number of test sessions ``k`` into an ILP that *concurrently* decides

* the system register assignment (``x_vr``),
* the register↔module interconnect and the multiplexers it implies
  (``z_rml``, ``z_mr``, equations (1)–(5)),
* the input-port permutation of commutative operations (``s_{l*,l,o}``,
  equation (3)), and
* the BIST register assignment: signature registers (``s_mrp``, equations
  (6)–(8)), test pattern generators (``t_rmlp``, equations (9)–(13)) and the
  BILBO/CBILBO reconfiguration each register needs (equations (14)–(23)),

minimising the transistor-count objective of section 3.4.  Solving the model
for each ``k`` from 1 to the number of modules reproduces the paper's range
of designs trading test time against area.

The formulation keeps the paper's equation structure (including the auxiliary
``z_vroml`` variables of equations (1)–(3)) so that each constraint family in
the code can be read against the corresponding equation.  The operation→module
assignment is taken from the DFG's module binding, as in the paper's
experiments where all four compared systems share one module assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.bist import TestPlan
from ..datapath.datapath import Datapath
from ..dfg.analysis import (
    PrimaryInputPolicy,
    incompatible_variable_clique,
    minimum_register_count,
    variable_lifetimes,
)
from ..dfg.graph import DataFlowGraph, DFGError
from ..ilp.expr import LinExpr, Variable
from ..ilp.model import Model
from ..ilp.solution import Solution
from .constants import ConstantPortAnalysis, analyse_constant_ports
from .result import BistDesign


class FormulationError(ValueError):
    """Raised when the formulation cannot be built or a solution decoded."""


@dataclass(frozen=True)
class FormulationOptions:
    """Knobs of the ADVBIST formulation.

    Attributes
    ----------
    num_registers:
        Number of registers of the data path.  Defaults to the minimum
        (the maximal horizontal crossing), matching the paper's assumption
        that the register count is known a priori and never increased.
    allow_commutative_swap:
        Whether commutative operations may swap their operands (equation (3)).
        Disabled, every operation uses the identity port mapping.
    symmetry_reduction:
        Whether to pin a maximum clique of incompatible variables to fixed
        registers (section 3.5).
    adverse_path_constraints:
        Whether to emit the auxiliary-variable constraints of equations
        (1)–(3).  They are required for correctness of the BIST assignment
        (without them the solver could invent test-only wires); the switch
        exists for the ablation benchmark quantifying their effect.
    fixed_register_assignment:
        When given, the system register assignment is frozen to this mapping
        and only the BIST/interconnect decisions remain — the non-concurrent
        ablation of the paper's key idea.
    primary_input_policy:
        Lifetime convention for primary inputs (see :mod:`repro.dfg.analysis`).
    """

    num_registers: int | None = None
    allow_commutative_swap: bool = True
    symmetry_reduction: bool = True
    adverse_path_constraints: bool = True
    fixed_register_assignment: Mapping[int, int] | None = None
    primary_input_policy: PrimaryInputPolicy = "at_first_use"


@dataclass
class AdvBistSolveResult:
    """Raw solver outcome plus the decoded design (when feasible)."""

    solution: Solution
    design: BistDesign | None
    model_stats: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.design is not None


class AdvBistFormulation:
    """Builder and decoder of the ADVBIST ILP for one k-test session."""

    def __init__(
        self,
        graph: DataFlowGraph,
        k: int,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
    ):
        if not graph.is_scheduled or not graph.is_module_bound:
            raise FormulationError(
                "ADVBIST needs a scheduled and module-bound DFG "
                f"(got scheduled={graph.is_scheduled}, bound={graph.is_module_bound})"
            )
        if k < 1:
            raise FormulationError(f"the number of test sessions k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        self.cost_model = cost_model
        self.options = options or FormulationOptions()

        self.sessions = list(range(1, k + 1))
        self.modules = graph.module_ids
        self.module_ports = {m: list(graph.module_input_ports(m)) for m in self.modules}
        self.num_registers = (
            self.options.num_registers
            if self.options.num_registers is not None
            else minimum_register_count(graph, self.options.primary_input_policy)
        )
        if self.num_registers < minimum_register_count(graph, self.options.primary_input_policy):
            raise FormulationError(
                f"{self.num_registers} registers are fewer than the minimal "
                f"horizontal crossing of {minimum_register_count(graph)}"
            )
        self.registers = list(range(self.num_registers))
        self.constant_ports: ConstantPortAnalysis = analyse_constant_ports(graph)

        self.model = Model(name=f"advbist_{graph.name}_k{k}")
        # Size-class provenance for the adaptive portfolio's win buckets.
        self.model.tags = {"k": k, "circuit": graph.name}
        # variable families, keyed as in the paper
        self.x: dict[tuple[int, int], Variable] = {}
        self.s_perm: dict[tuple[int, int, int], Variable] = {}
        self.z_in: dict[tuple[int, int, int], Variable] = {}
        self.z_out: dict[tuple[int, int], Variable] = {}
        self.z_aux: dict[tuple[int, int, int, int, int], Variable] = {}
        self.s_mrp: dict[tuple[int, int, int], Variable] = {}
        self.t_rmlp: dict[tuple[int, int, int, int], Variable] = {}
        self.t_reg: dict[int, Variable] = {}
        self.s_reg: dict[int, Variable] = {}
        self.b_reg: dict[int, Variable] = {}
        self.c_reg: dict[int, Variable] = {}
        self.t_reg_p: dict[tuple[int, int], Variable] = {}
        self.s_reg_p: dict[tuple[int, int], Variable] = {}
        self.c_reg_p: dict[tuple[int, int], Variable] = {}
        self.mux_reg_size: dict[tuple[int, int], Variable] = {}
        self.mux_port_size: dict[tuple[int, int, int], Variable] = {}

        self._build()

    # ==================================================================
    # model construction
    # ==================================================================
    def _build(self) -> None:
        self._add_register_assignment()
        self._add_commutative_permutations()
        self._add_interconnect()
        self._add_mux_sizing()
        self._add_sr_assignment()
        self._add_tpg_assignment()
        self._add_bilbo_classification()
        self._add_objective()
        if self.options.symmetry_reduction and self.options.fixed_register_assignment is None:
            self._add_symmetry_reduction()

    # -- system register assignment (x_vr) ------------------------------
    def _add_register_assignment(self) -> None:
        graph = self.graph
        lifetimes = variable_lifetimes(graph, self.options.primary_input_policy)

        for v in graph.variable_ids:
            for r in self.registers:
                self.x[(v, r)] = self.model.add_binary(f"x_v{v}_r{r}")
            self.model.add_constr(
                LinExpr.sum(self.x[(v, r)] for r in self.registers) == 1.0,
                f"assign_v{v}",
            )

        # Incompatibility: at every clock boundary a register holds at most
        # one live variable (clique form of the pairwise constraints).
        last_boundary = max(lt.death for lt in lifetimes.values())
        for boundary in range(0, last_boundary + 1):
            live = [v for v, lt in lifetimes.items() if lt.birth <= boundary <= lt.death]
            if len(live) < 2:
                continue
            for r in self.registers:
                self.model.add_constr(
                    LinExpr.sum(self.x[(v, r)] for v in live) <= 1.0,
                    f"conflict_b{boundary}_r{r}",
                )

        fixed = self.options.fixed_register_assignment
        if fixed is not None:
            for v, r in fixed.items():
                if (v, r) not in self.x:
                    raise FormulationError(
                        f"fixed assignment maps variable {v} to register {r} "
                        f"outside 0..{self.num_registers - 1}"
                    )
                self.model.add_constr(self.x[(v, r)] + 0.0 == 1.0, f"fixed_v{v}_r{r}")

    # -- commutative input-port permutations (equation (3)) -------------
    def _swappable(self, op) -> bool:
        """Whether the ILP may permute this operation's input ports."""
        if not self.options.allow_commutative_swap:
            return False
        if not op.commutative or len(op.inputs) != 2:
            return False
        # Operations with constant operands keep the identity mapping so the
        # constant-port analysis of section 3.3.4 stays structural.
        return all(isinstance(operand, int) for operand in op.inputs)

    def _add_commutative_permutations(self) -> None:
        for op in self.graph.operations.values():
            if not self._swappable(op):
                continue
            ports = list(range(len(op.inputs)))
            for pseudo in ports:
                for phys in ports:
                    self.s_perm[(op.op_id, pseudo, phys)] = self.model.add_binary(
                        f"s_o{op.op_id}_p{pseudo}_l{phys}"
                    )
            for pseudo in ports:
                self.model.add_constr(
                    LinExpr.sum(self.s_perm[(op.op_id, pseudo, phys)] for phys in ports) == 1.0,
                    f"perm_row_o{op.op_id}_p{pseudo}",
                )
            for phys in ports:
                self.model.add_constr(
                    LinExpr.sum(self.s_perm[(op.op_id, pseudo, phys)] for pseudo in ports) == 1.0,
                    f"perm_col_o{op.op_id}_l{phys}",
                )

    # -- interconnect (equations (1)-(3) plus the functional requirement) -
    def _routing_cases(self) -> list[tuple[int, int, int, int, Variable | None]]:
        """Enumerate (v, o, pseudo_port, physical_port, permutation_var).

        Each case states that variable ``v`` on pseudo input port
        ``pseudo_port`` of operation ``o`` may arrive on physical port
        ``physical_port``; ``permutation_var`` is the ``s`` binary selecting
        that routing (``None`` when the routing is unconditional).
        """
        cases = []
        for op in self.graph.operations.values():
            for pseudo, operand in enumerate(op.inputs):
                if not isinstance(operand, int):
                    continue
                if self._swappable(op):
                    for phys in range(len(op.inputs)):
                        cases.append(
                            (operand, op.op_id, pseudo, phys,
                             self.s_perm[(op.op_id, pseudo, phys)])
                        )
                else:
                    cases.append((operand, op.op_id, pseudo, pseudo, None))
        return cases

    def _add_interconnect(self) -> None:
        graph = self.graph

        for m in self.modules:
            for l in self.module_ports[m]:
                for r in self.registers:
                    self.z_in[(r, m, l)] = self.model.add_binary(f"z_r{r}_m{m}_l{l}")
            for r in self.registers:
                self.z_out[(m, r)] = self.model.add_binary(f"z_m{m}_r{r}")

        cases = self._routing_cases()
        cases_by_port: dict[tuple[int, int], list] = {}
        for (v, o, pseudo, phys, perm_var) in cases:
            module = graph.operations[o].module
            cases_by_port.setdefault((module, phys), []).append((v, o, pseudo, phys, perm_var))

        # Functional requirement: the wire must exist when the routing is used.
        for (v, o, pseudo, phys, perm_var) in cases:
            module = graph.operations[o].module
            for r in self.registers:
                z = self.z_in[(r, module, phys)]
                if perm_var is None:
                    # z >= x_vr
                    self.model.add_constr(self.x[(v, r)] - z <= 0.0,
                                          f"need_r{r}_m{module}_l{phys}_v{v}_o{o}")
                else:
                    # z >= x_vr + s - 1
                    self.model.add_constr(self.x[(v, r)] + perm_var - z <= 1.0,
                                          f"need_r{r}_m{module}_l{phys}_v{v}_o{o}")

        # Adverse-path prevention, equations (1)-(3).
        if self.options.adverse_path_constraints:
            for m in self.modules:
                for l in self.module_ports[m]:
                    port_cases = cases_by_port.get((m, l), [])
                    for r in self.registers:
                        z = self.z_in[(r, m, l)]
                        if not port_cases:
                            self.model.add_constr(z + 0.0 == 0.0, f"nowire_r{r}_m{m}_l{l}")
                            continue
                        aux_vars = []
                        for (v, o, pseudo, phys, perm_var) in port_cases:
                            aux = self.model.add_binary(f"zaux_v{v}_r{r}_o{o}_l{phys}_p{pseudo}")
                            self.z_aux[(v, r, o, phys, pseudo)] = aux
                            # Equation (2)/(3) with x_om = 1 substituted.
                            self.model.add_constr(aux - self.x[(v, r)] <= 0.0,
                                                  f"aux_x_v{v}_r{r}_o{o}_l{phys}")
                            if perm_var is not None:
                                self.model.add_constr(aux - perm_var <= 0.0,
                                                      f"aux_s_v{v}_r{r}_o{o}_l{phys}")
                            aux_vars.append(aux)
                        # Equation (1): z = 1 requires at least one justifying aux.
                        self.model.add_constr(
                            LinExpr.sum(aux_vars) - z >= 0.0, f"justify_r{r}_m{m}_l{l}"
                        )

        # Module output wires: required by the output variable's register,
        # forbidden elsewhere ("in a similar manner", section 3.1).
        outputs_by_module: dict[int, list[int]] = {}
        for op in graph.operations.values():
            outputs_by_module.setdefault(op.module, []).append(op.output)
        for m in self.modules:
            outputs = outputs_by_module.get(m, [])
            for r in self.registers:
                z = self.z_out[(m, r)]
                for v in outputs:
                    self.model.add_constr(self.x[(v, r)] - z <= 0.0,
                                          f"need_out_m{m}_r{r}_v{v}")
                if self.options.adverse_path_constraints:
                    if outputs:
                        self.model.add_constr(
                            z - LinExpr.sum(self.x[(v, r)] for v in outputs) <= 0.0,
                            f"justify_out_m{m}_r{r}",
                        )
                    else:
                        self.model.add_constr(z + 0.0 == 0.0, f"noout_m{m}_r{r}")

    # -- multiplexer sizing (equations (4)-(5) plus the cost table) ------
    def _add_mux_sizing(self) -> None:
        # Register-input multiplexers: one source per module wired to it.
        for r in self.registers:
            sizes = range(0, len(self.modules) + 1)
            for size in sizes:
                self.mux_reg_size[(r, size)] = self.model.add_binary(f"muxr_r{r}_n{size}")
            self.model.add_constr(
                LinExpr.sum(self.mux_reg_size[(r, size)] for size in sizes) == 1.0,
                f"muxr_onehot_r{r}",
            )
            self.model.add_constr(
                LinExpr.sum(float(size) * self.mux_reg_size[(r, size)] for size in sizes)
                - LinExpr.sum(self.z_out[(m, r)] for m in self.modules) == 0.0,
                f"muxr_count_r{r}",
            )

        # Module-port multiplexers: one source per register wired to the port.
        for m in self.modules:
            for l in self.module_ports[m]:
                sizes = range(0, len(self.registers) + 1)
                for size in sizes:
                    self.mux_port_size[(m, l, size)] = self.model.add_binary(
                        f"muxp_m{m}_l{l}_n{size}"
                    )
                self.model.add_constr(
                    LinExpr.sum(self.mux_port_size[(m, l, size)] for size in sizes) == 1.0,
                    f"muxp_onehot_m{m}_l{l}",
                )
                self.model.add_constr(
                    LinExpr.sum(float(size) * self.mux_port_size[(m, l, size)] for size in sizes)
                    - LinExpr.sum(self.z_in[(r, m, l)] for r in self.registers) == 0.0,
                    f"muxp_count_m{m}_l{l}",
                )

    # -- signature register assignment (equations (6)-(8)) ---------------
    def _add_sr_assignment(self) -> None:
        for m in self.modules:
            for r in self.registers:
                for p in self.sessions:
                    self.s_mrp[(m, r, p)] = self.model.add_binary(f"sr_m{m}_r{r}_p{p}")
                # Equation (6): an SR needs a wire from the module.
                self.model.add_constr(
                    self.z_out[(m, r)]
                    - LinExpr.sum(self.s_mrp[(m, r, p)] for p in self.sessions) >= 0.0,
                    f"eq6_m{m}_r{r}",
                )
            # Equation (7): each module tested exactly once.
            self.model.add_constr(
                LinExpr.sum(self.s_mrp[(m, r, p)]
                            for r in self.registers for p in self.sessions) == 1.0,
                f"eq7_m{m}",
            )
        # Equation (8): an SR serves at most one module per sub-test session.
        for r in self.registers:
            for p in self.sessions:
                self.model.add_constr(
                    LinExpr.sum(self.s_mrp[(m, r, p)] for m in self.modules) <= 1.0,
                    f"eq8_r{r}_p{p}",
                )

    # -- TPG assignment (equations (9)-(13)) ------------------------------
    def _testable_ports(self, m: int) -> list[int]:
        """Module input ports that need a register TPG (non constant-only)."""
        constant_only = set(self.constant_ports.constant_only_ports)
        return [l for l in self.module_ports[m] if (m, l) not in constant_only]

    def _add_tpg_assignment(self) -> None:
        for m in self.modules:
            ports = self._testable_ports(m)
            for l in ports:
                for r in self.registers:
                    for p in self.sessions:
                        self.t_rmlp[(r, m, l, p)] = self.model.add_binary(
                            f"tpg_r{r}_m{m}_l{l}_p{p}"
                        )
                    # Equation (9): a TPG needs a wire to the port.
                    self.model.add_constr(
                        self.z_in[(r, m, l)]
                        - LinExpr.sum(self.t_rmlp[(r, m, l, p)] for p in self.sessions) >= 0.0,
                        f"eq9_r{r}_m{m}_l{l}",
                    )
                # Equation (10): exactly one TPG per port over the k-test session.
                self.model.add_constr(
                    LinExpr.sum(self.t_rmlp[(r, m, l, p)]
                                for r in self.registers for p in self.sessions) == 1.0,
                    f"eq10_m{m}_l{l}",
                )

            if not ports:
                continue
            anchor = ports[0]
            for p in self.sessions:
                anchor_sum = LinExpr.sum(
                    self.t_rmlp[(r, m, anchor, p)] for r in self.registers
                )
                # Equation (11): all ports of a module are driven in the same session.
                for l in ports[1:]:
                    self.model.add_constr(
                        anchor_sum
                        - LinExpr.sum(self.t_rmlp[(r, m, l, p)] for r in self.registers)
                        == 0.0,
                        f"eq11_m{m}_l{l}_p{p}",
                    )
                # Equation (12): the SR of the module works in that same session.
                self.model.add_constr(
                    LinExpr.sum(self.s_mrp[(m, r, p)] for r in self.registers)
                    - anchor_sum == 0.0,
                    f"eq12_m{m}_p{p}",
                )
                # Equation (13): one register may not feed two ports of one module.
                for r in self.registers:
                    if len(ports) >= 2:
                        self.model.add_constr(
                            LinExpr.sum(self.t_rmlp[(r, m, l, p)] for l in ports) <= 1.0,
                            f"eq13_r{r}_m{m}_p{p}",
                        )

    # -- BILBO / CBILBO classification (equations (14)-(23)) --------------
    def _add_bilbo_classification(self) -> None:
        for r in self.registers:
            tpg_uses = [var for (rr, _m, _l, _p), var in self.t_rmlp.items() if rr == r]
            sr_uses = [var for (_m, rr, _p), var in self.s_mrp.items() if rr == r]

            self.t_reg[r] = self.model.add_binary(f"treg_r{r}")
            self.s_reg[r] = self.model.add_binary(f"sreg_r{r}")
            self.b_reg[r] = self.model.add_binary(f"breg_r{r}")
            self.c_reg[r] = self.model.add_binary(f"creg_r{r}")

            # Equations (15)/(16): is the register ever a TPG / an SR?
            self.model.add_or_indicator(self.t_reg[r], tpg_uses, f"eq15_r{r}")
            self.model.add_or_indicator(self.s_reg[r], sr_uses, f"eq16_r{r}")
            # Equations (17)/(18): both roles => BILBO or CBILBO.
            self.model.add_and_indicator(self.b_reg[r], self.t_reg[r], self.s_reg[r],
                                         f"eq17_18_r{r}")

            session_conflicts = []
            for p in self.sessions:
                tpg_in_p = [var for (rr, _m, _l, pp), var in self.t_rmlp.items()
                            if rr == r and pp == p]
                sr_in_p = [var for (_m, rr, pp), var in self.s_mrp.items()
                           if rr == r and pp == p]
                self.t_reg_p[(r, p)] = self.model.add_binary(f"tregp_r{r}_p{p}")
                self.s_reg_p[(r, p)] = self.model.add_binary(f"sregp_r{r}_p{p}")
                self.c_reg_p[(r, p)] = self.model.add_binary(f"cregp_r{r}_p{p}")
                # Equations (19)/(20).
                self.model.add_or_indicator(self.t_reg_p[(r, p)], tpg_in_p, f"eq19_r{r}_p{p}")
                self.model.add_or_indicator(self.s_reg_p[(r, p)], sr_in_p, f"eq20_r{r}_p{p}")
                # Equations (21)/(22): both roles in the same session => CBILBO.
                self.model.add_and_indicator(self.c_reg_p[(r, p)], self.t_reg_p[(r, p)],
                                             self.s_reg_p[(r, p)], f"eq21_22_r{r}_p{p}")
                session_conflicts.append(self.c_reg_p[(r, p)])
            # Equation (23).
            self.model.add_or_indicator(self.c_reg[r], session_conflicts, f"eq23_r{r}")

    # -- objective (section 3.4) ------------------------------------------
    def _add_objective(self) -> None:
        cost = self.cost_model
        increments = cost.incremental_weights()

        objective = LinExpr({}, float(len(self.registers) * cost.w_reg))
        for r in self.registers:
            objective = objective + increments["tpg"] * self.t_reg[r]
            objective = objective + increments["sr"] * self.s_reg[r]
            objective = objective + increments["bilbo"] * self.b_reg[r]
            objective = objective + increments["cbilbo"] * self.c_reg[r]

        for (r, size), var in self.mux_reg_size.items():
            weight = cost.mux_cost(size)
            if weight:
                objective = objective + weight * var
        for (m, l, size), var in self.mux_port_size.items():
            weight = cost.mux_cost(size)
            if weight:
                objective = objective + weight * var

        # Section 3.3.4: constant-only ports need dedicated constant TPGs.
        objective = objective + float(
            cost.constant_tpg_weight * self.constant_ports.num_constant_tpgs
        )
        self.model.set_objective(objective)

    # -- symmetry reduction (section 3.5) -----------------------------------
    def _add_symmetry_reduction(self) -> None:
        clique = incompatible_variable_clique(self.graph, self.options.primary_input_policy)
        for register, variable in enumerate(clique[: len(self.registers)]):
            self.model.add_constr(
                self.x[(variable, register)] + 0.0 == 1.0,
                f"pin_v{variable}_r{register}",
            )

    # ==================================================================
    # solving and decoding
    # ==================================================================
    def solve(self, backend: str | object = "auto", time_limit: float | None = None,
              mip_gap: float = 1e-6, presolve: bool = False, cuts: bool = False,
              incumbent_hint: float | None = None) -> AdvBistSolveResult:
        """Solve the ILP and decode the resulting BIST design.

        ``presolve`` runs the :mod:`repro.accel.presolve` reductions first;
        ``cuts`` the :mod:`repro.ilp.cuts` root cutting-plane loop;
        ``incumbent_hint`` warm-starts backends that support it with a
        known-achievable objective (e.g. the previous ``k``'s design of a
        sweep).  All are exact — they change speed, never the design.
        """
        solution = self.model.solve(backend=backend, time_limit=time_limit,
                                    mip_gap=mip_gap, presolve=presolve, cuts=cuts,
                                    incumbent_hint=incumbent_hint)
        design = self.extract_design(solution) if solution.status.has_solution else None
        return AdvBistSolveResult(solution=solution, design=design,
                                  model_stats=self.model.stats())

    def extract_design(self, solution: Solution) -> BistDesign:
        """Decode a solver solution into a verified :class:`BistDesign`."""
        if not solution.status.has_solution:
            raise FormulationError("cannot extract a design from an infeasible solution")

        register_assignment = {}
        for v in self.graph.variable_ids:
            chosen = [r for r in self.registers if solution.is_one(self.x[(v, r)])]
            if len(chosen) != 1:
                raise FormulationError(
                    f"variable {v} assigned to {len(chosen)} registers in the solution"
                )
            register_assignment[v] = chosen[0]

        port_permutations: dict[int, dict[int, int]] = {}
        for (op_id, pseudo, phys), var in self.s_perm.items():
            if solution.is_one(var):
                port_permutations.setdefault(op_id, {})[pseudo] = phys

        datapath = Datapath.from_bindings(
            self.graph, register_assignment, port_permutations,
            name=f"{self.graph.name}_advbist_k{self.k}",
        )

        module_session: dict[int, int] = {}
        sr_of_module: dict[int, int] = {}
        for (m, r, p), var in self.s_mrp.items():
            if solution.is_one(var):
                if m in sr_of_module:
                    raise FormulationError(f"module {m} received two signature registers")
                sr_of_module[m] = r
                module_session[m] = p

        tpg_of_port: dict[tuple[int, int], int] = {}
        for (r, m, l, p), var in self.t_rmlp.items():
            if solution.is_one(var):
                key = (m, l)
                if key in tpg_of_port:
                    raise FormulationError(f"module {m} port {l} received two TPGs")
                tpg_of_port[key] = r

        plan = TestPlan(
            num_sessions=self.k,
            module_session=module_session,
            sr_of_module=sr_of_module,
            tpg_of_port=tpg_of_port,
            constant_tpg_ports=list(self.constant_ports.constant_only_ports),
        )

        design = BistDesign(
            method="ADVBIST",
            circuit=self.graph.name,
            k=self.k,
            datapath=datapath,
            plan=plan,
            cost_model=self.cost_model,
            optimal=solution.proven_optimal,
            solve_seconds=solution.solve_seconds,
            objective=solution.objective,
            stats=solution.stats,
        )

        report = design.verify()
        if not report.ok:
            raise FormulationError(
                "decoded ADVBIST design violates the BIST rules: " + "; ".join(report.problems)
            )
        return design
