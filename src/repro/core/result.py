"""Result objects produced by the synthesizers, baselines and sweep engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.area import AreaBreakdown, area_overhead, datapath_area
from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.bist import TestPlan
from ..datapath.components import TestRegisterKind
from ..datapath.datapath import Datapath
from ..datapath.verify import VerificationReport, verify_bist_plan
from ..ilp.solution import SolveStats


@dataclass
class BistDesign:
    """A synthesized BIST data path for one k-test session.

    This is the common result type of ADVBIST and of every baseline method,
    so that the Table 3 comparison treats them uniformly.
    """

    method: str
    circuit: str
    k: int
    datapath: Datapath
    plan: TestPlan
    cost_model: CostModel = PAPER_COST_MODEL
    optimal: bool = False
    solve_seconds: float = 0.0
    objective: float | None = None
    stats: SolveStats | None = None
    notes: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def area(self) -> AreaBreakdown:
        """Register + multiplexer area of the BIST design."""
        return datapath_area(self.datapath, self.plan, self.cost_model)

    def overhead_vs(self, reference_area: float) -> float:
        """Area overhead (%) against a reference (non-BIST) design area."""
        return area_overhead(self.area().total, reference_area)

    def verify(self) -> VerificationReport:
        """Re-check the design against the parallel-BIST rules."""
        return verify_bist_plan(self.datapath, self.plan)

    def kind_counts(self) -> dict[TestRegisterKind, int]:
        return self.plan.kind_counts(self.datapath)

    def table3_row(self, reference_area: float | None = None) -> dict:
        """One row of the Table 3 comparison."""
        row = {"Method": self.method, **self.area().counts_row()}
        if reference_area is not None:
            row["OH(%)"] = round(self.overhead_vs(reference_area), 1)
        return row

    def summary(self) -> dict:
        breakdown = self.area()
        return {
            "method": self.method,
            "circuit": self.circuit,
            "k": self.k,
            "area": breakdown.total,
            "mux_inputs": breakdown.mux_inputs,
            "registers": breakdown.register_count,
            "optimal": self.optimal,
            "solve_seconds": round(self.solve_seconds, 3),
        }


@dataclass
class ReferenceDesign:
    """The optimal non-BIST data path used as the area-overhead baseline."""

    circuit: str
    datapath: Datapath
    cost_model: CostModel = PAPER_COST_MODEL
    optimal: bool = False
    solve_seconds: float = 0.0
    objective: float | None = None
    stats: SolveStats | None = None

    def area(self) -> AreaBreakdown:
        return datapath_area(self.datapath, None, self.cost_model)

    def table3_row(self) -> dict:
        breakdown = self.area()
        return {
            "Method": "Ref.",
            "R": breakdown.register_count,
            "T": 0, "S": 0, "B": 0, "C": 0,
            "M": breakdown.mux_inputs,
            "Area": breakdown.total,
        }


@dataclass
class SweepEntry:
    """One (circuit, k) entry of the Table 2 sweep."""

    circuit: str
    k: int
    design: BistDesign
    reference_area: float

    @property
    def overhead_percent(self) -> float:
        return self.design.overhead_vs(self.reference_area)

    def table2_row(self, stats: bool = False) -> dict:
        row = {
            "circuit": self.circuit,
            "k": self.k,
            "overhead_percent": round(self.overhead_percent, 1),
            "area": self.design.area().total,
            "optimal": self.design.optimal,
            "solve_seconds": round(self.design.solve_seconds, 3),
        }
        if stats:
            solve_stats = self.design.stats or SolveStats()
            row.update(solve_stats.as_row())
        return row


@dataclass
class TaskReport:
    """Per-task execution record of one sweep-engine run."""

    circuit: str
    kind: str                      # "reference" | "advbist" | "baseline"
    k: int | None = None
    method: str = ""
    cached: bool = False
    coalesced: bool = False        # served by another request's in-flight solve
    wall_seconds: float = 0.0
    stats: SolveStats | None = None

    def as_row(self) -> dict:
        row = {
            "circuit": self.circuit,
            "task": self.method or self.kind,
            "k": "-" if self.k is None else self.k,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "wall_s": round(self.wall_seconds, 3),
        }
        if self.stats is not None:
            row.update({"backend": self.stats.backend, "nnz": self.stats.nnz,
                        "nodes": self.stats.nodes})
            if self.stats.batch:
                row["batch_size"] = self.stats.batch["size"]
            if self.stats.presolve:
                # Flat per-layer attribution: the sweep/envelope reports are
                # what repro.bench aggregates to explain where a speed-up
                # came from (presolve shrinkage vs portfolio vs cache).
                presolve = self.stats.presolve
                row["presolve_vars_removed"] = (
                    presolve["original_variables"] - presolve["reduced_variables"])
                row["presolve_rows_removed"] = (
                    presolve["original_rows"] - presolve["reduced_rows"])
                row["presolve_s"] = presolve["wall_seconds"]
        return row


@dataclass
class SweepResult:
    """Outcome of a full k = 1..N sweep for one circuit (one Table 2 block)."""

    circuit: str
    reference: ReferenceDesign
    entries: list[SweepEntry] = field(default_factory=list)
    reports: list[TaskReport] = field(default_factory=list)

    def table2_rows(self, stats: bool = False) -> list[dict]:
        return [entry.table2_row(stats=stats) for entry in self.entries]

    def best_entry(self) -> SweepEntry:
        """The entry with the lowest area overhead.

        Ties on overhead deterministically prefer the smallest k (fewer test
        sessions means shorter test time at equal area cost).
        """
        return min(self.entries, key=lambda entry: (entry.overhead_percent, entry.k))

    def overheads(self) -> dict[int, float]:
        return {entry.k: entry.overhead_percent for entry in self.entries}
