"""The parallel sweep engine: task grids, executors and chain building.

The paper's evaluation is an embarrassingly parallel grid of independent ILP
solves — one ADVBIST solve per (circuit, k-test-session) pair plus one
reference solve per circuit, and one run per heuristic baseline in the
Table 3 comparison.  :class:`SweepEngine` materialises that grid explicitly
as :class:`SweepTask` objects, hands the list to a
:class:`repro.sched.scheduler.TaskScheduler` (which serves cache hits,
deduplicates identical tasks and coalesces with concurrent requests on a
shared scheduler), and executes the remaining misses through a pluggable
executor:

* :class:`SerialExecutor` — in-process, deterministic order (the default);
* :class:`ProcessExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out (``jobs`` workers).  Task results come back in grid order, so the
  assembled tables are identical to the serial path regardless of scheduling.

Solved designs are memoised in the two-tier
:class:`repro.sched.cache.DesignCache` (re-exported here for backward
compatibility) keyed by the content hash of (graph, cost model, k,
formulation options, backend, presolve), so re-running a sweep — from the
CLI, the benchmarks or a notebook — only pays for the solves it has not
seen before, and toggling the acceleration pipeline can never serve a
stale design.

The engine cooperates with :mod:`repro.accel`: ``presolve=True`` reduces
every ILP lowering before it reaches the backend, and with a warm-start
capable backend (``bnb``, ``portfolio``) the ADVBIST tasks of each circuit
run as one ascending-``k`` :class:`TaskChain` whose solves seed each other's
incumbent cutoffs (a ``k``-session design embeds into the ``k + 1`` model).
``batch=True`` additionally packs the hint-free singleton ILP misses into
one block-diagonal compound model solved in a single backend call
(:mod:`repro.sched.batching`).

:meth:`AdvBistSynthesizer.sweep` and :func:`repro.reporting.compare_methods`
are thin wrappers over this engine.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..dfg.graph import DataFlowGraph
from ..ilp.backends import backend_info, resolve_backend_name
from ..ilp.solution import SolveStats
from ..sched.cache import DesignCache
from ..sched.scheduler import TaskScheduler, cacheable as _cacheable
from .formulation import AdvBistFormulation, FormulationError, FormulationOptions
from .reference import ReferenceFormulation
from .result import (
    BistDesign,
    ReferenceDesign,
    SweepEntry,
    SweepResult,
    TaskReport,
)

__all__ = [
    "DesignCache",
    "EngineError",
    "ProcessExecutor",
    "SerialExecutor",
    "SweepEngine",
    "SweepTask",
    "TaskChain",
    "TaskOutcome",
    "TaskScheduler",
]


class EngineError(RuntimeError):
    """Raised for unusable engine configurations or failed tasks."""


# ----------------------------------------------------------------------
# tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepTask:
    """One independent solve of the evaluation grid.

    ``kind`` selects the work: ``"reference"`` (the non-BIST denominator
    design), ``"advbist"`` (the ILP for ``k`` test sessions) or
    ``"baseline"`` (one heuristic ``method`` for ``k`` sessions).

    ``presolve`` runs the :mod:`repro.accel.presolve` reductions on the ILP
    lowering before the backend sees it and ``cuts`` the
    :mod:`repro.ilp.cuts` root cutting-plane loop (both ignored by
    heuristic baselines).
    """

    graph: DataFlowGraph
    kind: str
    k: int | None = None
    method: str = ""
    cost_model: CostModel = PAPER_COST_MODEL
    options: FormulationOptions | None = None
    backend: str | object = "auto"
    time_limit: float | None = None
    presolve: bool = False
    cuts: bool = False

    @property
    def circuit(self) -> str:
        return self.graph.name

    def label(self) -> str:
        if self.kind == "reference":
            return f"{self.circuit}:reference"
        if self.kind == "advbist":
            return f"{self.circuit}:advbist:k={self.k}"
        return f"{self.circuit}:{self.method.lower()}:k={self.k}"


@dataclass
class TaskOutcome:
    """Result of one executed (or cache-/coalescing-served) :class:`SweepTask`.

    ``cached`` marks outcomes served from the design cache; ``coalesced``
    marks outcomes this request did not compute itself — it shared another
    request's identical in-flight computation (or a duplicate within the
    same submission) via the :class:`~repro.sched.scheduler.TaskScheduler`.
    """

    design: BistDesign | ReferenceDesign
    stats: SolveStats | None = None
    wall_seconds: float = 0.0
    cached: bool = False
    coalesced: bool = False


def _execute_task(task: SweepTask, incumbent_hint: float | None = None) -> TaskOutcome:
    """Solve one task; module-level so process pools can pickle it."""
    start = time.perf_counter()
    if task.kind == "reference":
        formulation = ReferenceFormulation(task.graph, task.cost_model, task.options)
        result = formulation.solve(backend=task.backend, time_limit=task.time_limit,
                                   presolve=task.presolve, cuts=task.cuts)
        if result.design is None:
            raise FormulationError(
                f"reference synthesis of {task.circuit!r} failed: "
                f"{result.solution.status.value}"
            )
        design = result.design
        stats = result.solution.stats
    elif task.kind == "advbist":
        formulation = AdvBistFormulation(task.graph, task.k, task.cost_model, task.options)
        result = formulation.solve(backend=task.backend, time_limit=task.time_limit,
                                   presolve=task.presolve, cuts=task.cuts,
                                   incumbent_hint=incumbent_hint)
        if result.design is None:
            raise FormulationError(
                f"ADVBIST synthesis of {task.circuit!r} for k={task.k} failed: "
                f"{result.solution.status.value}"
            )
        design = result.design
        stats = result.solution.stats
    elif task.kind == "baseline":
        from ..baselines import BASELINE_RUNNERS  # lazy: avoids import cycle

        if task.method not in BASELINE_RUNNERS:
            raise EngineError(f"unknown baseline method {task.method!r}")
        design = BASELINE_RUNNERS[task.method](task.graph, task.k, task.cost_model)
        stats = None
    else:
        raise EngineError(f"unknown task kind {task.kind!r}")
    return TaskOutcome(design=design, stats=stats,
                       wall_seconds=time.perf_counter() - start)


@dataclass(frozen=True)
class TaskChain:
    """A warm-start unit of work: tasks solved in order, threading incumbents.

    ``hints`` aligns with ``tasks``: each entry is the best objective already
    known from the design cache for a *smaller* ``k`` of the same circuit
    (or ``None``).  During execution the running best of the chain's own
    solves is folded in, so every ADVBIST solve starts from the tightest
    achievable bound available.  Non-ADVBIST tasks and warm-start-incapable
    backends always travel as singleton chains, so the executor's unit of
    parallelism is unchanged for them.
    """

    tasks: tuple[SweepTask, ...]
    hints: tuple[float | None, ...]


def _min_hint(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _execute_chain(chain: TaskChain) -> list[TaskOutcome]:
    """Execute one chain; module-level so process pools can pickle it.

    A design for ``k`` test sessions is feasible for the ``k + 1`` model
    (assign the same sessions and leave the extra one empty), so each
    solved objective is a valid incumbent bound for every later task of the
    chain — the monotonicity the ascending-``k`` ordering exploits.
    """
    running: float | None = None
    outcomes: list[TaskOutcome] = []
    for task, hint in zip(chain.tasks, chain.hints):
        effective = _min_hint(running, hint) if task.kind == "advbist" else None
        outcome = _execute_task(task, incumbent_hint=effective)
        outcomes.append(outcome)
        objective = getattr(outcome.design, "objective", None)
        if task.kind == "advbist" and objective is not None:
            running = _min_hint(running, objective)
    return outcomes


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class SerialExecutor:
    """Run work items one after the other in the calling process."""

    jobs = 1

    def run(self, fn: Callable, tasks: Sequence) -> list:
        return [fn(task) for task in tasks]


class ProcessExecutor:
    """Fan tasks out over a :class:`ProcessPoolExecutor` with ``jobs`` workers.

    ``map`` preserves input order, so downstream assembly is byte-identical
    to the serial path (modulo wall-clock timings).

    With ``persistent=True`` the worker pool survives across :meth:`run`
    calls instead of being torn down after each one — the mode used by
    :class:`repro.api.Session` (and ``repro serve``) so that a batch of
    requests pays the process start-up cost once.  A persistent executor
    must be released with :meth:`close` (or by closing the owning session).
    If the pool breaks (a worker killed mid-solve), the broken pool is
    dropped so the next :meth:`run` starts a fresh one — a long-lived
    daemon degrades for one request instead of failing forever.
    """

    def __init__(self, jobs: int, persistent: bool = False):
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None

    def run(self, fn: Callable, tasks: Sequence) -> list:
        if len(tasks) <= 1 or self.jobs == 1:
            return [fn(task) for task in tasks]
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                return list(self._pool.map(fn, tasks))
            except BrokenExecutor:
                self.close()  # drop the broken pool; the next run heals
                raise
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, tasks))

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Materialise and execute the (circuit, k) evaluation grid.

    Parameters
    ----------
    backend:
        Backend registry name (or a backend object, which forces serial
        execution and disables the cache).
    time_limit:
        Per-solve wall clock limit handed to the ILP backends.
    cost_model / options:
        Shared by every task of the grid.
    jobs:
        Worker processes; ``jobs > 1`` selects :class:`ProcessExecutor`.
    executor:
        Explicit executor object with ``run(fn, tasks)`` (overrides ``jobs``).
    cache:
        A :class:`DesignCache` (or ``True`` for the default location); ``None``
        disables memoisation.
    presolve:
        Run the :mod:`repro.accel.presolve` reductions on every ILP lowering
        before solving (exact: designs are identical, solves are faster).
        Part of the cache key — toggling it never serves a stale design.
    cuts:
        Run the :mod:`repro.ilp.cuts` root cutting-plane loop on every ILP
        lowering (after presolve when both are on).  Exact, and part of the
        cache key like ``presolve``.
    warm_start:
        When the backend declares ``supports_warm_start``, execute the
        ADVBIST tasks of each circuit as one ascending-``k`` chain so every
        solve seeds the next one's incumbent cutoff.  Backends without
        warm-start support keep the fully parallel task fan-out.  A chain is
        one *serial* execution unit: a single-circuit sweep with ``jobs > 1``
        trades its parallel fan-out for the incumbents, so pass
        ``warm_start=False`` (CLI ``--no-warm-start``) to keep the fan-out.
    batch:
        Pack the hint-free singleton ILP misses of each :meth:`run` into one
        block-diagonal compound model solved in a single backend call
        (:mod:`repro.sched.batching`).  Exact — objectives and designs match
        the serial path.  Warm-start chains (ascending-``k`` incumbent
        threading) and ``jobs > 1`` fan-out keep their own paths: only tasks
        that would have run as isolated hint-free solves are batched.
    scheduler:
        A :class:`~repro.sched.scheduler.TaskScheduler` shared across
        engines (one per :class:`repro.api.Session`) so identical tasks of
        *concurrent* requests coalesce onto a single computation.  ``None``
        creates a private scheduler (dedup within each :meth:`run` only).
    """

    def __init__(
        self,
        *,
        backend: str | object = "auto",
        time_limit: float | None = None,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
        jobs: int = 1,
        executor: object | None = None,
        cache: DesignCache | bool | None = None,
        presolve: bool = False,
        cuts: bool = False,
        warm_start: bool = True,
        batch: bool = False,
        scheduler: TaskScheduler | None = None,
    ):
        if isinstance(backend, str):
            resolve_backend_name(backend)  # fail fast on unknown names
        elif jobs > 1 or executor is not None:
            raise EngineError(
                "parallel execution needs a backend registry name "
                "(backend objects cannot be shipped to worker processes)"
            )
        self.backend = backend
        self.time_limit = time_limit
        self.cost_model = cost_model
        self.options = options
        self.presolve = presolve
        self.cuts = cuts
        self.warm_start = warm_start
        self.batch = batch
        self.scheduler = scheduler if scheduler is not None else TaskScheduler()
        if executor is not None:
            self.executor = executor
        elif jobs > 1:
            self.executor = ProcessExecutor(jobs)
        else:
            self.executor = SerialExecutor()
        if cache is True:
            cache = DesignCache()
        elif cache is False:
            cache = None
        if cache is not None and not isinstance(backend, str):
            cache = None
        self.cache: DesignCache | None = cache

    # -- grid materialisation ------------------------------------------
    def task(self, graph: DataFlowGraph, kind: str, k: int | None = None,
             method: str = "") -> SweepTask:
        """Materialise one task of this engine's grid (its configuration baked in)."""
        return SweepTask(
            graph=graph, kind=kind, k=k, method=method,
            cost_model=self.cost_model, options=self.options,
            backend=self.backend, time_limit=self.time_limit,
            presolve=self.presolve, cuts=self.cuts,
        )

    _task = task  # historical private name, used throughout this module

    def _advbist_tasks(self, graph: DataFlowGraph,
                       max_k: int | None) -> list[SweepTask]:
        """One ADVBIST task per k, with max_k clamped to [1, module count]."""
        num_modules = len(graph.module_ids)
        upper = max_k if max_k is not None else num_modules
        upper = max(1, min(upper, num_modules))
        return [self._task(graph, "advbist", k=k) for k in range(1, upper + 1)]

    def sweep_grid(self, graphs: Sequence[DataFlowGraph],
                   max_k: int | None = None) -> list[SweepTask]:
        """The full (circuit, k) grid: one reference + one solve per k each."""
        tasks: list[SweepTask] = []
        for graph in graphs:
            tasks.append(self._task(graph, "reference"))
            tasks.extend(self._advbist_tasks(graph, max_k))
        return tasks

    # -- execution -----------------------------------------------------
    def _warm_start_capable(self) -> bool:
        """Whether warm-start chaining applies to this engine's backend."""
        if not self.warm_start:
            return False
        if not isinstance(self.backend, str):
            return bool(getattr(self.backend, "supports_warm_start", False))
        return backend_info(self.backend).supports_warm_start

    def _build_chains(self, tasks: Sequence[SweepTask], misses: Sequence[int],
                      outcomes: Sequence[TaskOutcome | None],
                      ) -> list[tuple[TaskChain, list[int]]]:
        """Group cache misses into warm-start execution units.

        With a warm-start-capable backend the missed ADVBIST tasks of each
        circuit form one ascending-``k`` chain (seeded from any cached
        smaller-``k`` objectives); everything else — and every task when the
        backend cannot use incumbents — is a singleton chain, preserving the
        embarrassingly parallel fan-out.
        """
        groups: dict[str, list[int]] = {}
        singles: list[int] = []
        if self._warm_start_capable():
            for i in misses:
                task = tasks[i]
                if task.kind == "advbist" and task.k is not None:
                    groups.setdefault(task.circuit, []).append(i)
                else:
                    singles.append(i)
        else:
            singles = list(misses)

        cached_objectives: dict[str, list[tuple[int, float]]] = {}
        if groups:
            for task, outcome in zip(tasks, outcomes):
                if (outcome is None or task.kind != "advbist"
                        or task.circuit not in groups):
                    continue
                objective = getattr(outcome.design, "objective", None)
                if task.k is not None and objective is not None:
                    cached_objectives.setdefault(task.circuit, []).append(
                        (task.k, objective))

        chains: list[tuple[TaskChain, list[int]]] = []
        for i in singles:
            chains.append((TaskChain(tasks=(tasks[i],), hints=(None,)), [i]))
        for circuit, indices in groups.items():
            indices.sort(key=lambda i: tasks[i].k)
            known = cached_objectives.get(circuit, [])
            hints = tuple(
                min((obj for k, obj in known if k < tasks[i].k), default=None)
                for i in indices
            )
            chains.append((
                TaskChain(tasks=tuple(tasks[i] for i in indices), hints=hints),
                indices,
            ))
        return chains

    def _solve_misses(self, tasks: Sequence[SweepTask], misses: Sequence[int],
                      outcomes: Sequence[TaskOutcome | None]) -> list[TaskOutcome]:
        """Solve the scheduler's cache misses; one outcome per miss, in order.

        Misses are grouped into warm-start chains (seeded from any cached
        smaller-``k`` objectives already present in ``outcomes``); with
        ``batch=True`` the hint-free singleton ILP chains are peeled off and
        solved as one compound backend call, everything else goes through
        the executor.
        """
        chains = self._build_chains(tasks, misses, outcomes)
        solved: dict[int, TaskOutcome] = {}

        if self.batch and isinstance(self.backend, str):
            from ..sched.batching import batchable_chain, solve_task_batch

            batched = [entry for entry in chains if batchable_chain(entry[0])]
            if len(batched) >= 2:  # a "batch" of one is just overhead
                taken = {id(entry) for entry in batched}
                chains = [entry for entry in chains if id(entry) not in taken]
                batch_outcomes = solve_task_batch(
                    [chain.tasks[0] for chain, _ in batched])
                for (chain, indices), outcome in zip(batched, batch_outcomes):
                    solved[indices[0]] = outcome

        if chains:
            solved_chains = self.executor.run(_execute_chain,
                                              [chain for chain, _ in chains])
            for (chain, indices), chain_outcomes in zip(chains, solved_chains):
                for i, outcome in zip(indices, chain_outcomes):
                    solved[i] = outcome
        return [solved[i] for i in misses]

    def run(self, tasks: Sequence[SweepTask]) -> tuple[list[TaskOutcome], list[TaskReport]]:
        """Execute a task list (cache-first, deduped, coalesced), in task order.

        The heavy lifting happens in the :class:`TaskScheduler`: it serves
        cache hits, collapses duplicates inside ``tasks``, joins identical
        in-flight computations of concurrent requests on the same scheduler,
        and hands only the genuinely new work to :meth:`_solve_misses`.
        """
        tasks = list(tasks)

        def runner(misses: Sequence[int],
                   outcomes: Sequence[TaskOutcome | None]) -> list[TaskOutcome]:
            return self._solve_misses(tasks, misses, outcomes)

        outcomes = self.scheduler.execute(tasks, runner, cache=self.cache)
        reports = [
            TaskReport(
                circuit=task.circuit, kind=task.kind, k=task.k,
                method=task.method or task.kind, cached=outcome.cached,
                coalesced=outcome.coalesced,
                wall_seconds=outcome.wall_seconds, stats=outcome.stats,
            )
            for task, outcome in zip(tasks, outcomes)
        ]
        return list(outcomes), reports

    # -- drivers -------------------------------------------------------
    def sweep(self, graph: DataFlowGraph, max_k: int | None = None,
              reference: ReferenceDesign | None = None) -> SweepResult:
        """Table 2 for one circuit: reference plus one design per k.

        A pre-solved ``reference`` design (e.g. the one memoised by
        :class:`AdvBistSynthesizer`) skips the reference task entirely.
        """
        if reference is None:
            return self.sweep_many([graph], max_k=max_k)[graph.name]

        tasks = self._advbist_tasks(graph, max_k)
        outcomes, reports = self.run(tasks)
        reference_area = reference.area().total
        return SweepResult(
            circuit=graph.name,
            reference=reference,
            entries=[
                SweepEntry(circuit=task.circuit, k=task.k, design=outcome.design,
                           reference_area=reference_area)
                for task, outcome in zip(tasks, outcomes)
            ],
            reports=reports,
        )

    def sweep_many(self, graphs: Sequence[DataFlowGraph],
                   max_k: int | None = None) -> dict[str, SweepResult]:
        """Table 2 blocks for several circuits, executed as one task grid."""
        tasks = self.sweep_grid(graphs, max_k=max_k)
        outcomes, reports = self.run(tasks)

        by_circuit: dict[str, SweepResult] = {}
        references: dict[str, ReferenceDesign] = {}
        for task, outcome in zip(tasks, outcomes):
            if task.kind == "reference":
                references[task.circuit] = outcome.design
        for graph in graphs:
            reference = references[graph.name]
            by_circuit[graph.name] = SweepResult(
                circuit=graph.name,
                reference=reference,
                entries=[],
                reports=[r for r in reports if r.circuit == graph.name],
            )
        for task, outcome in zip(tasks, outcomes):
            if task.kind != "advbist":
                continue
            result = by_circuit[task.circuit]
            result.entries.append(
                SweepEntry(
                    circuit=task.circuit, k=task.k, design=outcome.design,
                    reference_area=result.reference.area().total,
                )
            )
        return by_circuit

    def compare(
        self,
        graph: DataFlowGraph,
        k: int | None = None,
        methods: Sequence[str] = ("ADVBIST", "ADVAN", "RALLOC", "BITS"),
    ) -> tuple[ReferenceDesign, dict[str, BistDesign], list[TaskReport]]:
        """Reference + selected methods for one circuit (the Table 3 block)."""
        from ..baselines import BASELINE_RUNNERS  # lazy: avoids import cycle

        sessions = k if k is not None else len(graph.module_ids)
        tasks = [self._task(graph, "reference")]
        for method in methods:
            if method == "ADVBIST":
                tasks.append(self._task(graph, "advbist", k=sessions))
            elif method in BASELINE_RUNNERS:
                tasks.append(self._task(graph, "baseline", k=sessions, method=method))
            else:
                raise ValueError(
                    f"unknown method {method!r}; expected ADVBIST, "
                    + ", ".join(BASELINE_RUNNERS)
                )
        outcomes, reports = self.run(tasks)
        reference = outcomes[0].design
        designs = {
            task.method or "ADVBIST": outcome.design
            for task, outcome in zip(tasks[1:], outcomes[1:])
        }
        return reference, designs, reports
