"""High-level synthesis drivers: the k-test-session sweep of ADVBIST.

:class:`AdvBistSynthesizer` wraps the formulation and the reference ILP into
the workflow of the paper's evaluation:

* ``synthesize_reference()`` — the optimal non-BIST data path (the overhead
  denominator),
* ``synthesize(k)`` — the optimal BIST data path for one k-test session,
* ``sweep()`` — Table 2: one design per k from 1 to the module count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..dfg.graph import DataFlowGraph
from .formulation import AdvBistFormulation, FormulationError, FormulationOptions
from .reference import ReferenceFormulation
from .result import BistDesign, ReferenceDesign, SweepEntry


@dataclass
class SweepResult:
    """Outcome of a full k = 1..N sweep for one circuit (one Table 2 block)."""

    circuit: str
    reference: ReferenceDesign
    entries: list[SweepEntry] = field(default_factory=list)

    def table2_rows(self) -> list[dict]:
        return [entry.table2_row() for entry in self.entries]

    def best_entry(self) -> SweepEntry:
        """The entry with the lowest area overhead (usually the largest k)."""
        return min(self.entries, key=lambda entry: entry.overhead_percent)

    def overheads(self) -> dict[int, float]:
        return {entry.k: entry.overhead_percent for entry in self.entries}


class AdvBistSynthesizer:
    """Drive the ADVBIST and reference ILPs over a scheduled, bound DFG."""

    def __init__(
        self,
        graph: DataFlowGraph,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
        backend: str | object = "auto",
        time_limit: float | None = None,
    ):
        self.graph = graph
        self.cost_model = cost_model
        self.options = options or FormulationOptions()
        self.backend = backend
        self.time_limit = time_limit
        self._reference: ReferenceDesign | None = None

    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        return len(self.graph.module_ids)

    def synthesize_reference(self) -> ReferenceDesign:
        """Solve (and cache) the optimal non-BIST reference data path."""
        if self._reference is None:
            formulation = ReferenceFormulation(self.graph, self.cost_model, self.options)
            result = formulation.solve(backend=self.backend, time_limit=self.time_limit)
            if result.design is None:
                raise FormulationError(
                    f"reference synthesis of {self.graph.name!r} failed: "
                    f"{result.solution.status.value}"
                )
            self._reference = result.design
        return self._reference

    def synthesize(self, k: int) -> BistDesign:
        """Solve the ADVBIST ILP for a k-test session."""
        formulation = AdvBistFormulation(self.graph, k, self.cost_model, self.options)
        result = formulation.solve(backend=self.backend, time_limit=self.time_limit)
        if result.design is None:
            raise FormulationError(
                f"ADVBIST synthesis of {self.graph.name!r} for k={k} failed: "
                f"{result.solution.status.value}"
            )
        return result.design

    def sweep(self, max_k: int | None = None) -> SweepResult:
        """Synthesize one BIST design per k-test session (Table 2)."""
        reference = self.synthesize_reference()
        reference_area = reference.area().total
        upper = max_k if max_k is not None else self.num_modules
        upper = max(1, min(upper, self.num_modules))

        entries = []
        for k in range(1, upper + 1):
            design = self.synthesize(k)
            entries.append(
                SweepEntry(circuit=self.graph.name, k=k, design=design,
                           reference_area=reference_area)
            )
        return SweepResult(circuit=self.graph.name, reference=reference, entries=entries)


# ----------------------------------------------------------------------
# convenience functions (the one-call public API)
# ----------------------------------------------------------------------
def synthesize_bist(
    graph: DataFlowGraph,
    k: int,
    cost_model: CostModel = PAPER_COST_MODEL,
    options: FormulationOptions | None = None,
    backend: str | object = "auto",
    time_limit: float | None = None,
) -> BistDesign:
    """Synthesize the area-optimal k-test-session BIST data path of a DFG."""
    synthesizer = AdvBistSynthesizer(graph, cost_model, options, backend, time_limit)
    return synthesizer.synthesize(k)


def synthesize_reference(
    graph: DataFlowGraph,
    cost_model: CostModel = PAPER_COST_MODEL,
    options: FormulationOptions | None = None,
    backend: str | object = "auto",
    time_limit: float | None = None,
) -> ReferenceDesign:
    """Synthesize the area-optimal non-BIST reference data path of a DFG."""
    synthesizer = AdvBistSynthesizer(graph, cost_model, options, backend, time_limit)
    return synthesizer.synthesize_reference()
