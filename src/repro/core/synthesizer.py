"""High-level synthesis drivers: the k-test-session sweep of ADVBIST.

:class:`AdvBistSynthesizer` wraps the formulation and the reference ILP into
the workflow of the paper's evaluation:

* ``synthesize_reference()`` — the optimal non-BIST data path (the overhead
  denominator),
* ``synthesize(k)`` — the optimal BIST data path for one k-test session,
* ``sweep()`` — Table 2: one design per k from 1 to the module count.

The sweep itself is delegated to :class:`repro.core.engine.SweepEngine`,
which materialises the (circuit, k) task grid and can execute it serially,
over a process pool (``jobs``), and against the on-disk design cache.
"""

from __future__ import annotations

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..dfg.graph import DataFlowGraph
from .engine import DesignCache, SweepEngine
from .formulation import AdvBistFormulation, FormulationError, FormulationOptions
from .reference import ReferenceFormulation
from .result import BistDesign, ReferenceDesign, SweepResult

__all__ = [
    "AdvBistSynthesizer",
    "SweepResult",
    "synthesize_bist",
    "synthesize_reference",
]


class AdvBistSynthesizer:
    """Drive the ADVBIST and reference ILPs over a scheduled, bound DFG."""

    def __init__(
        self,
        graph: DataFlowGraph,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
        backend: str | object = "auto",
        time_limit: float | None = None,
    ):
        self.graph = graph
        self.cost_model = cost_model
        self.options = options or FormulationOptions()
        self.backend = backend
        self.time_limit = time_limit
        self._reference: ReferenceDesign | None = None

    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        return len(self.graph.module_ids)

    def synthesize_reference(self) -> ReferenceDesign:
        """Solve (and cache) the optimal non-BIST reference data path."""
        if self._reference is None:
            formulation = ReferenceFormulation(self.graph, self.cost_model, self.options)
            result = formulation.solve(backend=self.backend, time_limit=self.time_limit)
            if result.design is None:
                raise FormulationError(
                    f"reference synthesis of {self.graph.name!r} failed: "
                    f"{result.solution.status.value}"
                )
            self._reference = result.design
        return self._reference

    def synthesize(self, k: int) -> BistDesign:
        """Solve the ADVBIST ILP for a k-test session."""
        formulation = AdvBistFormulation(self.graph, k, self.cost_model, self.options)
        result = formulation.solve(backend=self.backend, time_limit=self.time_limit)
        if result.design is None:
            raise FormulationError(
                f"ADVBIST synthesis of {self.graph.name!r} for k={k} failed: "
                f"{result.solution.status.value}"
            )
        return result.design

    def _engine(self, jobs: int, cache: DesignCache | bool | None,
                executor: object | None) -> SweepEngine:
        return SweepEngine(
            backend=self.backend,
            time_limit=self.time_limit,
            cost_model=self.cost_model,
            options=self.options,
            jobs=jobs,
            executor=executor,
            cache=cache,
        )

    def sweep(
        self,
        max_k: int | None = None,
        jobs: int = 1,
        cache: DesignCache | bool | None = None,
        executor: object | None = None,
    ) -> SweepResult:
        """Synthesize one BIST design per k-test session (Table 2).

        A thin wrapper over :class:`SweepEngine`: ``jobs > 1`` fans the
        independent solves out over worker processes, ``cache`` memoises
        solved designs on disk (``True`` for the default cache location).
        A reference design already solved by :meth:`synthesize_reference`
        is reused instead of being solved again.
        """
        engine = self._engine(jobs, cache, executor)
        result = engine.sweep(self.graph, max_k=max_k, reference=self._reference)
        if self._reference is None:
            self._reference = result.reference
        return result


# ----------------------------------------------------------------------
# convenience functions (the one-call public API)
# ----------------------------------------------------------------------
def synthesize_bist(
    graph: DataFlowGraph,
    k: int,
    cost_model: CostModel = PAPER_COST_MODEL,
    options: FormulationOptions | None = None,
    backend: str | object = "auto",
    time_limit: float | None = None,
) -> BistDesign:
    """Synthesize the area-optimal k-test-session BIST data path of a DFG."""
    synthesizer = AdvBistSynthesizer(graph, cost_model, options, backend, time_limit)
    return synthesizer.synthesize(k)


def synthesize_reference(
    graph: DataFlowGraph,
    cost_model: CostModel = PAPER_COST_MODEL,
    options: FormulationOptions | None = None,
    backend: str | object = "auto",
    time_limit: float | None = None,
) -> ReferenceDesign:
    """Synthesize the area-optimal non-BIST reference data path of a DFG."""
    synthesizer = AdvBistSynthesizer(graph, cost_model, options, backend, time_limit)
    return synthesizer.synthesize_reference()
