"""Handling of constant operands (section 3.3.4 of the paper).

An operation input port that is fed only by constants has no register behind
it, so no existing register can be reconfigured into its TPG; testing such a
port needs a *dedicated* constant pattern generator, which the objective
penalises with a weight larger than any register weight.

With the module binding fixed (as in the paper's experiments) the set of
constant-only ports is purely structural, so this module computes it once and
the formulation adds the corresponding penalty as a constant term while
skipping equation (10) for those ports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.graph import DataFlowGraph, DFGError


@dataclass(frozen=True)
class ConstantPortAnalysis:
    """Which module input ports can never be driven from a register.

    Attributes
    ----------
    constant_only_ports:
        ``(module, port)`` pairs fed exclusively by constants across every
        operation bound to the module.  These need dedicated constant TPGs.
    mixed_ports:
        ``(module, port)`` pairs fed by constants for some operations and by
        variables for others.  They still get a register TPG via eq. (10).
    """

    constant_only_ports: tuple[tuple[int, int], ...]
    mixed_ports: tuple[tuple[int, int], ...]

    @property
    def num_constant_tpgs(self) -> int:
        """The paper's ``N_tc`` term."""
        return len(self.constant_only_ports)


def analyse_constant_ports(graph: DataFlowGraph) -> ConstantPortAnalysis:
    """Classify every module input port by the operands that reach it."""
    if not graph.is_module_bound:
        raise DFGError("constant-port analysis requires a module-bound DFG")

    constant_only: list[tuple[int, int]] = []
    mixed: list[tuple[int, int]] = []
    for module in graph.module_ids:
        ops = graph.module_operations()[module]
        for port in graph.module_input_ports(module):
            feeds_variable = False
            feeds_constant = False
            for op_id in ops:
                op = graph.operations[op_id]
                if port >= len(op.inputs):
                    continue
                operand = op.inputs[port]
                if isinstance(operand, int):
                    feeds_variable = True
                else:
                    feeds_constant = True
            if feeds_constant and not feeds_variable:
                constant_only.append((module, port))
            elif feeds_constant and feeds_variable:
                mixed.append((module, port))
    return ConstantPortAnalysis(tuple(sorted(constant_only)), tuple(sorted(mixed)))
