"""The reference (non-BIST) optimal data path ILP.

Section 4.1: *"The reference circuits, which were used to measure the area
overhead of BIST designs, were obtained through an ILP for data path
synthesis.  The reference circuits are optimal in area."*

This formulation is the ADVBIST model stripped of every BIST constraint: it
assigns variables to the minimum number of registers and chooses commutative
port permutations so that the register + multiplexer transistor count is
minimal.  Its optimum is the denominator of every area-overhead figure in
Tables 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..datapath.datapath import Datapath
from ..dfg.analysis import (
    incompatible_variable_clique,
    minimum_register_count,
    variable_lifetimes,
)
from ..dfg.graph import DataFlowGraph
from ..ilp.expr import LinExpr, Variable
from ..ilp.model import Model
from ..ilp.solution import Solution
from .formulation import FormulationError, FormulationOptions
from .result import ReferenceDesign


@dataclass
class ReferenceSolveResult:
    """Raw solver outcome plus the decoded reference design."""

    solution: Solution
    design: ReferenceDesign | None
    model_stats: dict = field(default_factory=dict)


class ReferenceFormulation:
    """Optimal register + interconnect assignment without BIST."""

    def __init__(
        self,
        graph: DataFlowGraph,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
    ):
        if not graph.is_scheduled or not graph.is_module_bound:
            raise FormulationError("the reference ILP needs a scheduled, module-bound DFG")
        self.graph = graph
        self.cost_model = cost_model
        self.options = options or FormulationOptions()

        self.modules = graph.module_ids
        self.module_ports = {m: list(graph.module_input_ports(m)) for m in self.modules}
        self.num_registers = (
            self.options.num_registers
            if self.options.num_registers is not None
            else minimum_register_count(graph, self.options.primary_input_policy)
        )
        self.registers = list(range(self.num_registers))

        self.model = Model(name=f"reference_{graph.name}")
        self.x: dict[tuple[int, int], Variable] = {}
        self.s_perm: dict[tuple[int, int, int], Variable] = {}
        self.z_in: dict[tuple[int, int, int], Variable] = {}
        self.z_out: dict[tuple[int, int], Variable] = {}
        self.mux_reg_size: dict[tuple[int, int], Variable] = {}
        self.mux_port_size: dict[tuple[int, int, int], Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    def _swappable(self, op) -> bool:
        if not self.options.allow_commutative_swap:
            return False
        if not op.commutative or len(op.inputs) != 2:
            return False
        return all(isinstance(operand, int) for operand in op.inputs)

    def _build(self) -> None:
        graph = self.graph
        lifetimes = variable_lifetimes(graph, self.options.primary_input_policy)

        for v in graph.variable_ids:
            for r in self.registers:
                self.x[(v, r)] = self.model.add_binary(f"x_v{v}_r{r}")
            self.model.add_constr(
                LinExpr.sum(self.x[(v, r)] for r in self.registers) == 1.0, f"assign_v{v}"
            )
        last_boundary = max(lt.death for lt in lifetimes.values())
        for boundary in range(0, last_boundary + 1):
            live = [v for v, lt in lifetimes.items() if lt.birth <= boundary <= lt.death]
            if len(live) < 2:
                continue
            for r in self.registers:
                self.model.add_constr(
                    LinExpr.sum(self.x[(v, r)] for v in live) <= 1.0,
                    f"conflict_b{boundary}_r{r}",
                )

        for op in graph.operations.values():
            if not self._swappable(op):
                continue
            ports = list(range(len(op.inputs)))
            for pseudo in ports:
                for phys in ports:
                    self.s_perm[(op.op_id, pseudo, phys)] = self.model.add_binary(
                        f"s_o{op.op_id}_p{pseudo}_l{phys}"
                    )
            for pseudo in ports:
                self.model.add_constr(
                    LinExpr.sum(self.s_perm[(op.op_id, pseudo, phys)] for phys in ports) == 1.0,
                    f"perm_row_o{op.op_id}_p{pseudo}",
                )
            for phys in ports:
                self.model.add_constr(
                    LinExpr.sum(self.s_perm[(op.op_id, pseudo, phys)] for pseudo in ports) == 1.0,
                    f"perm_col_o{op.op_id}_l{phys}",
                )

        for m in self.modules:
            for l in self.module_ports[m]:
                for r in self.registers:
                    self.z_in[(r, m, l)] = self.model.add_binary(f"z_r{r}_m{m}_l{l}")
            for r in self.registers:
                self.z_out[(m, r)] = self.model.add_binary(f"z_m{m}_r{r}")

        for op in graph.operations.values():
            module = op.module
            for pseudo, operand in enumerate(op.inputs):
                if not isinstance(operand, int):
                    continue
                if self._swappable(op):
                    for phys in range(len(op.inputs)):
                        perm = self.s_perm[(op.op_id, pseudo, phys)]
                        for r in self.registers:
                            self.model.add_constr(
                                self.x[(operand, r)] + perm - self.z_in[(r, module, phys)] <= 1.0,
                                f"need_r{r}_m{module}_l{phys}_o{op.op_id}_p{pseudo}",
                            )
                else:
                    for r in self.registers:
                        self.model.add_constr(
                            self.x[(operand, r)] - self.z_in[(r, module, pseudo)] <= 0.0,
                            f"need_r{r}_m{module}_l{pseudo}_o{op.op_id}",
                        )
            for r in self.registers:
                self.model.add_constr(
                    self.x[(op.output, r)] - self.z_out[(module, r)] <= 0.0,
                    f"need_out_m{module}_r{r}_o{op.op_id}",
                )

        # Mux sizing (the reference minimises mux area, not just wire count).
        for r in self.registers:
            sizes = range(0, len(self.modules) + 1)
            for size in sizes:
                self.mux_reg_size[(r, size)] = self.model.add_binary(f"muxr_r{r}_n{size}")
            self.model.add_constr(
                LinExpr.sum(self.mux_reg_size[(r, size)] for size in sizes) == 1.0,
                f"muxr_onehot_r{r}",
            )
            self.model.add_constr(
                LinExpr.sum(float(size) * self.mux_reg_size[(r, size)] for size in sizes)
                - LinExpr.sum(self.z_out[(m, r)] for m in self.modules) == 0.0,
                f"muxr_count_r{r}",
            )
        for m in self.modules:
            for l in self.module_ports[m]:
                sizes = range(0, len(self.registers) + 1)
                for size in sizes:
                    self.mux_port_size[(m, l, size)] = self.model.add_binary(
                        f"muxp_m{m}_l{l}_n{size}"
                    )
                self.model.add_constr(
                    LinExpr.sum(self.mux_port_size[(m, l, size)] for size in sizes) == 1.0,
                    f"muxp_onehot_m{m}_l{l}",
                )
                self.model.add_constr(
                    LinExpr.sum(float(size) * self.mux_port_size[(m, l, size)]
                                for size in sizes)
                    - LinExpr.sum(self.z_in[(r, m, l)] for r in self.registers) == 0.0,
                    f"muxp_count_m{m}_l{l}",
                )

        objective = LinExpr({}, float(len(self.registers) * self.cost_model.w_reg))
        for (r, size), var in self.mux_reg_size.items():
            weight = self.cost_model.mux_cost(size)
            if weight:
                objective = objective + weight * var
        for (m, l, size), var in self.mux_port_size.items():
            weight = self.cost_model.mux_cost(size)
            if weight:
                objective = objective + weight * var
        self.model.set_objective(objective)

        # Interconnect minimisation already pushes every unjustified wire to 0,
        # so no adverse-path constraints are needed here; symmetry is broken
        # exactly as in section 3.5.
        if self.options.symmetry_reduction:
            clique = incompatible_variable_clique(graph, self.options.primary_input_policy)
            for register, variable in enumerate(clique[: len(self.registers)]):
                self.model.add_constr(
                    self.x[(variable, register)] + 0.0 == 1.0, f"pin_v{variable}_r{register}"
                )

    # ------------------------------------------------------------------
    def solve(self, backend: str | object = "auto", time_limit: float | None = None,
              mip_gap: float = 1e-6, presolve: bool = False,
              cuts: bool = False) -> ReferenceSolveResult:
        """Solve the reference ILP and decode the data path.

        ``presolve`` runs the :mod:`repro.accel.presolve` reductions on the
        lowering first and ``cuts`` the :mod:`repro.ilp.cuts` root
        cutting-plane loop; the decoded design is identical either way.
        """
        solution = self.model.solve(backend=backend, time_limit=time_limit,
                                    mip_gap=mip_gap, presolve=presolve, cuts=cuts)
        design = None
        if solution.status.has_solution:
            design = self.extract_design(solution)
        return ReferenceSolveResult(solution=solution, design=design,
                                    model_stats=self.model.stats())

    def extract_design(self, solution: Solution) -> ReferenceDesign:
        register_assignment = {}
        for v in self.graph.variable_ids:
            chosen = [r for r in self.registers if solution.is_one(self.x[(v, r)])]
            if len(chosen) != 1:
                raise FormulationError(
                    f"variable {v} assigned to {len(chosen)} registers in the solution"
                )
            register_assignment[v] = chosen[0]
        port_permutations: dict[int, dict[int, int]] = {}
        for (op_id, pseudo, phys), var in self.s_perm.items():
            if solution.is_one(var):
                port_permutations.setdefault(op_id, {})[pseudo] = phys
        datapath = Datapath.from_bindings(
            self.graph, register_assignment, port_permutations,
            name=f"{self.graph.name}_reference",
        )
        datapath.validate()
        return ReferenceDesign(
            circuit=self.graph.name,
            datapath=datapath,
            cost_model=self.cost_model,
            optimal=solution.proven_optimal,
            solve_seconds=solution.solve_seconds,
            objective=solution.objective,
            stats=solution.stats,
        )
