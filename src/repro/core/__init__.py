"""The paper's core contribution: the ADVBIST ILP and its drivers."""

from .constants import ConstantPortAnalysis, analyse_constant_ports
from .formulation import (
    AdvBistFormulation,
    AdvBistSolveResult,
    FormulationError,
    FormulationOptions,
)
from .reference import ReferenceFormulation, ReferenceSolveResult
from .result import BistDesign, ReferenceDesign, SweepEntry
from .synthesizer import (
    AdvBistSynthesizer,
    SweepResult,
    synthesize_bist,
    synthesize_reference,
)

__all__ = [
    "ConstantPortAnalysis",
    "analyse_constant_ports",
    "AdvBistFormulation",
    "AdvBistSolveResult",
    "FormulationError",
    "FormulationOptions",
    "ReferenceFormulation",
    "ReferenceSolveResult",
    "BistDesign",
    "ReferenceDesign",
    "SweepEntry",
    "AdvBistSynthesizer",
    "SweepResult",
    "synthesize_bist",
    "synthesize_reference",
]
