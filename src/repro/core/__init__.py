"""The paper's core contribution: the ADVBIST ILP and its drivers."""

from .constants import ConstantPortAnalysis, analyse_constant_ports
from .formulation import (
    AdvBistFormulation,
    AdvBistSolveResult,
    FormulationError,
    FormulationOptions,
)
from .reference import ReferenceFormulation, ReferenceSolveResult
from .result import (
    BistDesign,
    ReferenceDesign,
    SweepEntry,
    SweepResult,
    TaskReport,
)
from .engine import (
    DesignCache,
    EngineError,
    ProcessExecutor,
    SerialExecutor,
    SweepEngine,
    SweepTask,
    TaskOutcome,
)
from .synthesizer import (
    AdvBistSynthesizer,
    synthesize_bist,
    synthesize_reference,
)

__all__ = [
    "ConstantPortAnalysis",
    "analyse_constant_ports",
    "AdvBistFormulation",
    "AdvBistSolveResult",
    "FormulationError",
    "FormulationOptions",
    "ReferenceFormulation",
    "ReferenceSolveResult",
    "BistDesign",
    "ReferenceDesign",
    "SweepEntry",
    "SweepResult",
    "TaskReport",
    "DesignCache",
    "EngineError",
    "ProcessExecutor",
    "SerialExecutor",
    "SweepEngine",
    "SweepTask",
    "TaskOutcome",
    "AdvBistSynthesizer",
    "synthesize_bist",
    "synthesize_reference",
]
