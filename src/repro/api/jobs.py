"""Declarative job specifications: the wire-format inputs of :mod:`repro.api`.

Every unit of work a :class:`repro.api.Session` can execute is described by
a frozen dataclass with a stable JSON representation:

* :class:`SynthesizeJob` — one reference + one ADVBIST design for a circuit;
* :class:`SweepJob` — the Table 2 k-sweep of a circuit;
* :class:`CompareJob` — the Table 3 method comparison of a circuit;
* :class:`BaselineJob` — one heuristic baseline (ADVAN/RALLOC/BITS);
* :class:`FuzzJob` — a random-DFG backend parity sweep;
* :class:`BenchJob` — one :mod:`repro.bench` benchmark suite, timed and
  parity-guarded (so ``repro serve`` can run benchmark grids remotely).

The specs are *declarative*: they carry no live objects, only names,
numbers and (optionally) an inline ``repro.dfg.textio`` graph dictionary,
so :meth:`JobSpec.to_dict` / :func:`job_from_dict` round-trip exactly
through JSON and a spec can cross a process or network boundary (the
``repro serve`` daemon reads them straight off stdin).  Solver knobs left
as ``None`` defer to the owning session's defaults.

    >>> job = job_from_json('{"job": "sweep", "circuit": "tseng", "max_k": 4}')
    >>> job
    SweepJob(backend=None, time_limit=None, use_cache=None, presolve=None, cuts=None, batch=None, circuit='tseng', graph=None, max_k=4)
    >>> job_from_dict(job.to_dict()) == job
    True
    >>> job_from_json('{"job": "sweep"}')
    Traceback (most recent call last):
        ...
    repro.api.jobs.JobSpecError: sweep job needs exactly one of 'circuit' (a registry name) or 'graph' (an inline repro.dfg.textio dictionary)
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, Type


class JobSpecError(ValueError):
    """Raised for malformed, unknown or inconsistent job specifications."""


#: JSON schema version stamped on every serialised spec.
JOB_SCHEMA = 1

#: The methods a :class:`CompareJob` may select.
COMPARE_METHODS = ("ADVBIST", "ADVAN", "RALLOC", "BITS")

#: The heuristic methods a :class:`BaselineJob` may run.
BASELINE_METHODS = ("ADVAN", "RALLOC", "BITS")


@dataclass(frozen=True)
class JobSpec:
    """Base of every job spec: the solver knobs shared by all job kinds.

    ``backend`` / ``time_limit`` / ``use_cache`` / ``presolve`` / ``cuts``
    / ``batch`` override the session defaults for this one job when set
    (``None`` defers to the session).  ``presolve`` selects the
    :mod:`repro.accel.presolve` reductions, ``cuts`` the
    :mod:`repro.ilp.cuts` root cutting-plane loop and ``batch`` the
    compound batched solving of :mod:`repro.sched.batching` — all exact,
    so payloads are identical either way.
    """

    backend: str | None = None
    time_limit: float | None = None
    use_cache: bool | None = None
    presolve: bool | None = None
    cuts: bool | None = None
    batch: bool | None = None

    #: Wire-format discriminator; each concrete subclass overrides it.
    kind: ClassVar[str] = ""

    def __post_init__(self):
        if self.time_limit is not None and self.time_limit <= 0:
            raise JobSpecError(f"time_limit must be positive, got {self.time_limit}")
        if self.presolve is not None and not isinstance(self.presolve, bool):
            raise JobSpecError(
                f"presolve must be true, false or null, got {self.presolve!r}")
        if self.cuts is not None and not isinstance(self.cuts, bool):
            raise JobSpecError(
                f"cuts must be true, false or null, got {self.cuts!r}")
        if self.batch is not None and not isinstance(self.batch, bool):
            raise JobSpecError(
                f"batch must be true, false or null, got {self.batch!r}")

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-stable dictionary; :func:`job_from_dict` inverts it exactly."""
        payload: dict[str, Any] = {"job": self.kind, "schema": JOB_SCHEMA}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        """Rebuild a spec of this concrete class from its dictionary form."""
        names = {field.name for field in dataclasses.fields(cls)}
        kwargs = {}
        for key, value in data.items():
            if key in ("job", "schema"):
                continue
            if key not in names:
                raise JobSpecError(
                    f"unknown field {key!r} for job kind {cls.kind!r}; "
                    f"expected a subset of {sorted(names)}")
            kwargs[key] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise JobSpecError(f"bad {cls.kind!r} job spec: {exc}") from exc

    # -- graph targeting (shared by the circuit-shaped jobs) -----------
    def _require_target(self) -> None:
        circuit = getattr(self, "circuit", None)
        graph = getattr(self, "graph", None)
        if (circuit is None) == (graph is None):
            raise JobSpecError(
                f"{self.kind} job needs exactly one of 'circuit' (a registry "
                f"name) or 'graph' (an inline repro.dfg.textio dictionary)")
        if graph is not None and not isinstance(graph, Mapping):
            raise JobSpecError(
                f"{self.kind} job field 'graph' must be a JSON object, "
                f"got {type(graph).__name__}")


def _check_k(k, minimum: int = 1, name: str = "k") -> None:
    if k is not None and (not isinstance(k, int) or k < minimum):
        raise JobSpecError(f"{name} must be an integer >= {minimum}, got {k!r}")


@dataclass(frozen=True)
class SynthesizeJob(JobSpec):
    """One ADVBIST design (plus its reference denominator) for a circuit."""

    kind: ClassVar[str] = "synthesize"

    circuit: str | None = None
    graph: Mapping | None = None
    k: int | None = None

    def __post_init__(self):
        super().__post_init__()
        self._require_target()
        _check_k(self.k)


@dataclass(frozen=True)
class SweepJob(JobSpec):
    """The Table 2 sweep: one ADVBIST design per k = 1..max_k."""

    kind: ClassVar[str] = "sweep"

    circuit: str | None = None
    graph: Mapping | None = None
    max_k: int | None = None

    def __post_init__(self):
        super().__post_init__()
        self._require_target()
        _check_k(self.max_k, name="max_k")


@dataclass(frozen=True)
class CompareJob(JobSpec):
    """The Table 3 comparison: ADVBIST against the heuristic baselines."""

    kind: ClassVar[str] = "compare"

    circuit: str | None = None
    graph: Mapping | None = None
    k: int | None = None
    methods: tuple[str, ...] = COMPARE_METHODS

    def __post_init__(self):
        super().__post_init__()
        self._require_target()
        _check_k(self.k)
        if isinstance(self.methods, list):  # JSON arrays arrive as lists
            object.__setattr__(self, "methods", tuple(self.methods))
        if not self.methods:
            raise JobSpecError("compare job needs at least one method")
        for method in self.methods:
            if method not in COMPARE_METHODS:
                raise JobSpecError(
                    f"unknown comparison method {method!r}; "
                    f"expected a subset of {COMPARE_METHODS}")


@dataclass(frozen=True)
class BaselineJob(JobSpec):
    """One heuristic baseline design (ADVAN, RALLOC or BITS)."""

    kind: ClassVar[str] = "baseline"

    circuit: str | None = None
    graph: Mapping | None = None
    method: str = ""
    k: int | None = None

    def __post_init__(self):
        super().__post_init__()
        self._require_target()
        _check_k(self.k)
        method = self.method.upper() if isinstance(self.method, str) else self.method
        if method not in BASELINE_METHODS:
            raise JobSpecError(
                f"unknown baseline method {self.method!r}; "
                f"expected one of {BASELINE_METHODS}")
        object.__setattr__(self, "method", method)


@dataclass(frozen=True)
class FuzzJob(JobSpec):
    """A seeded random-DFG sweep cross-checking the ILP backends."""

    kind: ClassVar[str] = "fuzz"

    count: int = 10
    seed: int = 0
    ops: int = 6
    formulation: str = "reference"
    k: int | None = None
    failure_dir: str | None = None

    def __post_init__(self):
        super().__post_init__()
        # Parity fuzzing *is* the cross-check of the whole backend set, and
        # never touches the design cache — a spec selecting a single backend
        # or a cache policy is inconsistent, not silently ignorable.
        if self.backend is not None:
            raise JobSpecError(
                "fuzz jobs cross-check the full backend set; "
                "'backend' is not applicable")
        if self.use_cache is not None:
            raise JobSpecError(
                "fuzz jobs never touch the design cache; "
                "'use_cache' is not applicable")
        if self.presolve is not None:
            raise JobSpecError(
                "fuzz jobs cross-check the raw backend lowerings; "
                "'presolve' is not applicable")
        if self.cuts is not None:
            raise JobSpecError(
                "fuzz jobs cross-check the raw backend lowerings; "
                "'cuts' is not applicable")
        if self.batch is not None:
            raise JobSpecError(
                "fuzz jobs solve each case individually by design; "
                "'batch' is not applicable")
        if not isinstance(self.count, int) or self.count < 1:
            raise JobSpecError(f"count must be an integer >= 1, got {self.count!r}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise JobSpecError(f"seed must be an integer >= 0, got {self.seed!r}")
        if not isinstance(self.ops, int) or self.ops < 1:
            raise JobSpecError(f"ops must be an integer >= 1, got {self.ops!r}")
        if self.formulation not in ("reference", "advbist"):
            raise JobSpecError(
                f"formulation must be 'reference' or 'advbist', "
                f"got {self.formulation!r}")
        _check_k(self.k)
        if self.failure_dir is not None and not isinstance(self.failure_dir, str):
            raise JobSpecError(
                f"failure_dir must be a string path or null, "
                f"got {self.failure_dir!r}")


@dataclass(frozen=True)
class BenchJob(JobSpec):
    """One :mod:`repro.bench` suite run: a timed, parity-guarded grid.

    The suite's scenario grid owns its solver configuration (that is the
    point of a benchmark), so the per-job ``backend`` / ``use_cache`` /
    ``presolve`` / ``cuts`` / ``batch`` knobs are rejected; ``time_limit`` still caps every
    individual solve.  ``circuits`` / ``max_k`` / ``seed`` narrow the grid
    the same way the ``repro bench run`` flags do, and ``warmup`` controls
    the throwaway warm-up solve (leave it on for real measurements).

    The result envelope's payload is the full schema-2 report of
    :func:`repro.bench.run_suites` restricted to this one suite.

    >>> BenchJob(suite="solver-micro").to_dict()["suite"]
    'solver-micro'
    >>> BenchJob(suite="not-a-suite")
    Traceback (most recent call last):
        ...
    repro.api.jobs.JobSpecError: unknown benchmark suite 'not-a-suite'; expected one of ['dedup-throughput', 'fuzz-throughput', 'serve-load', 'solver-micro', 'sweep-scaling', 'table2', 'table3']
    """

    kind: ClassVar[str] = "bench"

    suite: str = ""
    circuits: tuple[str, ...] | None = None
    max_k: int | None = None
    seed: int | None = None
    warmup: bool = True

    def __post_init__(self):
        super().__post_init__()
        for knob in ("backend", "use_cache", "presolve", "cuts", "batch"):
            if getattr(self, knob) is not None:
                raise JobSpecError(
                    f"bench jobs run each suite's own scenario grid; "
                    f"{knob!r} is not applicable")
        from ..bench.suites import SUITES, list_suites  # lazy: no api import

        if self.suite not in SUITES:
            raise JobSpecError(
                f"unknown benchmark suite {self.suite!r}; "
                f"expected one of {list_suites()}")
        if self.circuits is not None:
            if isinstance(self.circuits, list):  # JSON arrays arrive as lists
                object.__setattr__(self, "circuits", tuple(self.circuits))
            # A bare string would pass an element check by iterating its
            # characters — require an actual sequence of names.
            if not isinstance(self.circuits, tuple) or not self.circuits \
                    or not all(isinstance(name, str) and name
                               for name in self.circuits):
                raise JobSpecError(
                    f"circuits must be a non-empty list of circuit names "
                    f"or null, got {self.circuits!r}")
        _check_k(self.max_k, name="max_k")
        _check_k(self.seed, minimum=0, name="seed")
        if not isinstance(self.warmup, bool):
            raise JobSpecError(
                f"warmup must be true or false, got {self.warmup!r}")


#: Wire-format kind → concrete spec class.
JOB_KINDS: dict[str, Type[JobSpec]] = {
    spec.kind: spec
    for spec in (SynthesizeJob, SweepJob, CompareJob, BaselineJob, FuzzJob,
                 BenchJob)
}


def job_from_dict(data: Mapping) -> JobSpec:
    """Rebuild any job spec from its dictionary form (the ``job`` key selects)."""
    if not isinstance(data, Mapping):
        raise JobSpecError(f"job spec must be a JSON object, got {type(data).__name__}")
    kind = data.get("job")
    if kind not in JOB_KINDS:
        raise JobSpecError(
            f"unknown job kind {kind!r}; expected one of {sorted(JOB_KINDS)}")
    return JOB_KINDS[kind].from_dict(data)


def job_from_json(text: str) -> JobSpec:
    """Parse one JSON document into a job spec."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JobSpecError(f"job spec is not valid JSON: {exc}") from exc
    return job_from_dict(data)
