"""``repro serve`` — a JSON-lines batch daemon over stdin/stdout.

The first traffic-shaped interface of the reproduction: a client writes
one JSON document per line and reads JSON lines back, all through a
single warm :class:`~repro.api.session.Session` (so the design cache and
the worker pool persist across requests — a repeated job spec comes back
with ``"cached": true``).

Wire protocol
-------------
Requests (one JSON object per line):

* a job spec — any :mod:`repro.api.jobs` dictionary, e.g.
  ``{"job": "synthesize", "circuit": "fig1", "k": 2}`` or a remote
  benchmark run ``{"job": "bench", "suite": "solver-micro"}``.  An optional
  ``"id"`` field (any JSON scalar) is echoed on every response line for
  that request; without one, the 1-based request sequence number is used.
* a control message — ``{"op": "ping"}``, ``{"op": "cache_info"}``,
  ``{"op": "cache_clear"}``, ``{"op": "scheduler_stats"}`` or
  ``{"op": "shutdown"}``.

Responses (one JSON object per line, flushed immediately):

* ``{"type": "progress", "id": ..., "event": "job_started" | "job_finished", ...}``
  — streamed while a job executes;
* ``{"type": "result", "id": ..., "envelope": {...}}`` — the terminal
  :class:`~repro.api.envelope.ResultEnvelope` of a job;
* ``{"type": "control", "id": ..., "op": ..., ...}`` — reply to a control
  message;
* ``{"type": "error", "id": ..., "error": {"type": ..., "message": ...}}``
  — protocol-level failures (malformed JSON, unknown job kind).  The
  daemon keeps serving after an error line.

The daemon stops on EOF or ``{"op": "shutdown"}``.

Concurrency
-----------
With ``concurrency > 1`` job specs are dispatched to a thread pool while
the reader keeps consuming stdin, so identical in-flight requests from
different clients coalesce on the session's shared
:class:`~repro.sched.scheduler.TaskScheduler` (one solve, every request
answered).  Response lines stay whole — writes are serialised by a lock —
but *ordering across requests* is no longer guaranteed; clients must
correlate by ``id``.  Control messages are always answered inline, and
``shutdown`` / EOF waits for in-flight jobs before the daemon exits.
"""

from __future__ import annotations

import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import IO

from .envelope import ResultEnvelope
from .jobs import JobSpecError, job_from_dict
from .session import Session

#: Control operations the daemon answers besides job specs.
CONTROL_OPS = ("ping", "cache_info", "cache_clear", "scheduler_stats",
               "shutdown")


def _write_line(stream: IO[str], document: dict,
                lock: threading.Lock | None = None) -> None:
    payload = json.dumps(document, sort_keys=True) + "\n"
    if lock is None:
        stream.write(payload)
        stream.flush()
        return
    with lock:
        stream.write(payload)
        stream.flush()


def serve(session: Session, stdin: IO[str] | None = None,
          stdout: IO[str] | None = None, progress: bool = True,
          concurrency: int = 1) -> int:
    """Serve job specs from ``stdin`` to ``stdout`` until EOF or shutdown.

    Returns the number of requests handled (jobs + control messages).
    With ``progress=False`` only terminal ``result`` lines are written.
    ``concurrency`` sets the number of job-executing threads; the default
    of 1 keeps the historical strict request/response ordering.  A client
    that disconnects mid-batch (``BrokenPipeError`` on a response write)
    ends the loop cleanly instead of crashing the daemon.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    handled = 0
    try:
        handled = _serve_loop(session, stdin, stdout, progress, concurrency)
    except BrokenPipeError:
        pass  # the client went away mid-batch; stop serving cleanly
    return handled


def _serve_loop(session: Session, stdin: IO[str], stdout: IO[str],
                progress: bool, concurrency: int = 1) -> int:
    handled = 0
    # With concurrency == 1 jobs run inline on the reader thread (strict
    # ordering, no pool); otherwise they are dispatched to worker threads
    # and the write lock keeps response lines whole.
    lock = threading.Lock() if concurrency > 1 else None
    pool = (ThreadPoolExecutor(max_workers=concurrency)
            if concurrency > 1 else None)
    futures: list = []

    def run_job(job, request_id) -> None:
        def stream_event(event: dict, _id=request_id) -> None:
            _write_line(stdout, {"type": "progress", "id": _id, **event}, lock)

        envelope: ResultEnvelope = session.run(
            job, progress=stream_event if progress else None)
        _write_line(stdout, {"type": "result", "id": request_id,
                             "envelope": envelope.to_dict()}, lock)

    try:
        for sequence, line in enumerate(stdin, start=1):
            line = line.strip()
            if not line:
                continue
            request_id = sequence
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                _write_line(stdout, {
                    "type": "error", "id": request_id,
                    "error": {"type": "ProtocolError",
                              "message": f"request is not valid JSON: {exc}"},
                }, lock)
                continue
            if isinstance(data, dict) and "id" in data:
                request_id = data.pop("id")  # protocol field, not the spec
            handled += 1

            # -- control messages (always answered inline) -------------
            if isinstance(data, dict) and "op" in data:
                op = data["op"]
                if op == "shutdown":
                    _drain(futures)
                    _write_line(stdout, {"type": "control", "id": request_id,
                                         "op": "shutdown", "ok": True}, lock)
                    break
                if op == "ping":
                    _write_line(stdout, {"type": "control", "id": request_id,
                                         "op": "ping", "ok": True}, lock)
                elif op == "cache_info":
                    _write_line(stdout, {"type": "control", "id": request_id,
                                         "op": "cache_info", "ok": True,
                                         "cache": session.cache_info()}, lock)
                elif op == "cache_clear":
                    _write_line(stdout, {"type": "control", "id": request_id,
                                         "op": "cache_clear", "ok": True,
                                         "removed": session.cache_clear()},
                                lock)
                elif op == "scheduler_stats":
                    _write_line(stdout, {"type": "control", "id": request_id,
                                         "op": "scheduler_stats", "ok": True,
                                         "scheduler": session.scheduler_stats()},
                                lock)
                else:
                    _write_line(stdout, {
                        "type": "error", "id": request_id,
                        "error": {"type": "ProtocolError",
                                  "message": f"unknown op {op!r}; "
                                             f"expected one of {CONTROL_OPS}"},
                    }, lock)
                continue

            # -- job specs ---------------------------------------------
            try:
                job = job_from_dict(data)
            except JobSpecError as exc:
                _write_line(stdout, {
                    "type": "error", "id": request_id,
                    "error": {"type": "JobSpecError", "message": str(exc)},
                }, lock)
                continue

            if pool is None:
                run_job(job, request_id)
            else:
                futures.append(pool.submit(run_job, job, request_id))
    finally:
        _drain(futures)
        if pool is not None:
            pool.shutdown()
    return handled


def _drain(futures: list) -> None:
    """Wait for every dispatched job; surfaces nothing (run_job writes
    its own result/error lines and session.run never raises for job
    errors)."""
    while futures:
        futures.pop().result()
