"""``repro serve`` — the pipe transport of the serve protocol.

A JSON-lines daemon over stdin/stdout: a client writes one JSON document
per line and reads JSON lines back, all through a single warm
:class:`~repro.api.session.Session` (so the design cache and the worker
pool persist across requests — a repeated job spec comes back with
``"cached": true``).

The request grammar, control operations and response documents are
defined once in :mod:`repro.net.protocol` and shared with the asyncio
TCP transport (:mod:`repro.net.server`, ``repro serve --tcp``); this
module only owns the pipe-specific plumbing: reading stdin, the response
write lock, and the thread pool of ``--concurrency N``.

Wire protocol
-------------
Requests (one JSON object per line):

* a job spec — any :mod:`repro.api.jobs` dictionary, e.g.
  ``{"job": "synthesize", "circuit": "fig1", "k": 2}`` or a remote
  benchmark run ``{"job": "bench", "suite": "solver-micro"}``.  An optional
  ``"id"`` field (any JSON scalar) is echoed on every response line for
  that request; without one, the 1-based request sequence number is used.
* a control message — ``{"op": "ping"}``, ``{"op": "cache_info"}``,
  ``{"op": "cache_clear"}``, ``{"op": "scheduler_stats"}``,
  ``{"op": "stats"}`` or ``{"op": "shutdown"}``.

Responses (one JSON object per line, flushed immediately):

* ``{"type": "progress", "id": ..., "event": "job_started" | "job_finished", ...}``
  — streamed while a job executes;
* ``{"type": "result", "id": ..., "envelope": {...}}`` — the terminal
  :class:`~repro.api.envelope.ResultEnvelope` of a job;
* ``{"type": "control", "id": ..., "op": ..., ...}`` — reply to a control
  message;
* ``{"type": "error", "id": ..., "error": {"type": ..., "message": ...}}``
  — protocol-level failures (malformed JSON, unknown job kind).  The
  daemon keeps serving after an error line.

The daemon stops on EOF or ``{"op": "shutdown"}``.

Concurrency
-----------
With ``concurrency > 1`` job specs are dispatched to a thread pool while
the reader keeps consuming stdin, so identical in-flight requests from
different clients coalesce on the session's shared
:class:`~repro.sched.scheduler.TaskScheduler` (one solve, every request
answered).  Response lines stay whole — writes are serialised by a lock —
but *ordering across requests* is no longer guaranteed; clients must
correlate by ``id``.  The reader runs at most ``2 × concurrency``
requests ahead of the workers (a semaphore, so a fast producer cannot
enqueue unbounded work), control messages are always answered inline,
and ``shutdown`` / EOF waits for in-flight jobs before the daemon exits.
A worker hitting ``BrokenPipeError`` (the client went away) stops the
reader at its next request and cancels the queued backlog instead of
solving jobs nobody will read.
"""

from __future__ import annotations

import sys
import threading
from concurrent.futures import CancelledError, ThreadPoolExecutor
from typing import IO

from ..net.protocol import (
    CONTROL_OPS,
    ProtocolError,
    decode_request,
    error_doc,
    handle_control,
    parse_job,
    run_job,
    shutdown_doc,
)
from .jobs import JobSpecError
from .session import Session

__all__ = ["CONTROL_OPS", "serve"]

#: The reader may run this many requests ahead of the workers, per worker.
_QUEUE_AHEAD = 2


def _write_line(stream: IO[str], document: dict,
                lock: threading.Lock | None = None) -> None:
    import json

    payload = json.dumps(document, sort_keys=True) + "\n"
    if lock is None:
        stream.write(payload)
        stream.flush()
        return
    with lock:
        stream.write(payload)
        stream.flush()


def serve(session: Session, stdin: IO[str] | None = None,
          stdout: IO[str] | None = None, progress: bool = True,
          concurrency: int = 1) -> int:
    """Serve job specs from ``stdin`` to ``stdout`` until EOF or shutdown.

    Returns the number of requests handled (jobs + control messages).
    With ``progress=False`` only terminal ``result`` lines are written.
    ``concurrency`` sets the number of job-executing threads; the default
    of 1 keeps the historical strict request/response ordering.  A client
    that disconnects mid-batch (``BrokenPipeError`` on a response write)
    ends the loop cleanly instead of crashing the daemon.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    handled = 0
    try:
        handled = _serve_loop(session, stdin, stdout, progress, concurrency)
    except BrokenPipeError:
        pass  # the client went away mid-batch; stop serving cleanly
    return handled


def _serve_loop(session: Session, stdin: IO[str], stdout: IO[str],
                progress: bool, concurrency: int = 1) -> int:
    handled = 0
    # With concurrency == 1 jobs run inline on the reader thread (strict
    # ordering, no pool); otherwise they are dispatched to worker threads
    # and the write lock keeps response lines whole.
    lock = threading.Lock() if concurrency > 1 else None
    pool = (ThreadPoolExecutor(max_workers=concurrency)
            if concurrency > 1 else None)
    futures: list = []
    # Backpressure: the reader blocks once `concurrency * _QUEUE_AHEAD`
    # jobs are queued or running, instead of reading stdin unboundedly
    # ahead of the workers.
    slots = threading.BoundedSemaphore(concurrency * _QUEUE_AHEAD)
    # Set by a worker whose response write hit BrokenPipeError: the client
    # is gone, so the reader stops promptly and the backlog is cancelled.
    client_gone = threading.Event()

    def emit(document: dict) -> None:
        _write_line(stdout, document, lock)

    def run_pooled(job, request_id) -> None:
        try:
            run_job(session, job, request_id, emit, progress)
        except BrokenPipeError:
            client_gone.set()
        finally:
            slots.release()

    try:
        for sequence, line in enumerate(stdin, start=1):
            if client_gone.is_set():
                raise BrokenPipeError("client disconnected mid-batch")
            line = line.strip()
            if not line:
                continue
            try:
                request = decode_request(line, sequence)
            except ProtocolError as exc:
                emit(error_doc(sequence, "ProtocolError", str(exc)))
                continue
            handled += 1

            # -- control messages (always answered inline) -------------
            if request.kind == "control":
                if request.op == "shutdown":
                    _drain(futures)
                    emit(shutdown_doc(request.id))
                    break
                emit(handle_control(session, request))
                continue

            # -- job specs ---------------------------------------------
            try:
                job = parse_job(request.data)
            except JobSpecError as exc:
                emit(error_doc(request.id, "JobSpecError", str(exc)))
                continue

            if pool is None:
                run_job(session, job, request.id, emit, progress)
            else:
                slots.acquire()
                futures.append(pool.submit(run_pooled, job, request.id))
    finally:
        if client_gone.is_set() and pool is not None:
            # Nobody is reading: cancel the queued backlog and only join
            # the jobs already running, instead of solving the rest.
            pool.shutdown(wait=True, cancel_futures=True)
            futures.clear()
        _drain(futures)
        if pool is not None:
            pool.shutdown()
    return handled


def _drain(futures: list) -> None:
    """Wait for every dispatched job; surfaces nothing (run_pooled writes
    its own result/error lines, swallows client disconnects and
    session.run never raises for job errors)."""
    while futures:
        try:
            futures.pop().result()
        except CancelledError:
            pass
