"""The uniform result envelope every :mod:`repro.api` job returns.

A :class:`ResultEnvelope` is the single response shape of the façade: the
same structure comes back from :meth:`repro.api.Session.run`, is streamed
over stdout by ``repro serve``, and is printed by the CLI's ``--json``
mode.  It is deliberately plain data — status, timings, per-task solver
reports, a kind-specific ``payload`` of tables/designs, and a structured
``error`` instead of a raised exception — so it serialises to one JSON
object and survives a process or network boundary unchanged
(:meth:`to_dict` / :meth:`from_dict` round-trip exactly):

    >>> envelope = ResultEnvelope(status="ok", kind="sweep",
    ...                           payload={"rows": []})
    >>> envelope.ok
    True
    >>> ResultEnvelope.from_json(envelope.to_json()) == envelope
    True
    >>> ResultEnvelope.failure("sweep", {}, KeyError("no such circuit")).error
    {'type': 'KeyError', 'message': 'no such circuit'}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

#: JSON schema version stamped on every serialised envelope.
ENVELOPE_SCHEMA = 1

#: The two terminal statuses an envelope can carry.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class ResultEnvelope:
    """Outcome of one executed job spec.

    Attributes
    ----------
    status:
        ``"ok"`` or ``"error"``.
    kind:
        The job kind that produced this envelope (``"sweep"``, ...).
    job:
        The originating job spec in dictionary form (round-trippable via
        :func:`repro.api.jobs.job_from_dict`), so an envelope is replayable.
    payload:
        Kind-specific JSON-friendly results: table rows, design structure,
        overheads, fuzz parity rows.  Empty on error.
    error:
        ``{"type": ..., "message": ...}`` when ``status == "error"``.
    cached:
        Whether *every* solve behind this envelope was served from the
        design cache (the warm-session signal ``repro serve`` reports).
    wall_seconds:
        End-to-end wall time of the job inside the session.
    reports:
        Per-task execution records (circuit, kind, k, cached, wall time,
        solver statistics) as flat dictionaries.
    """

    status: str
    kind: str
    job: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)
    error: dict | None = None
    cached: bool = False
    wall_seconds: float = 0.0
    reports: list[dict] = field(default_factory=list)
    schema: int = ENVELOPE_SCHEMA

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "status": self.status,
            "kind": self.kind,
            "job": self.job,
            "payload": self.payload,
            "error": self.error,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "reports": self.reports,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultEnvelope":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"envelope must be a JSON object, got {type(data).__name__}")
        status = data.get("status")
        if status not in (STATUS_OK, STATUS_ERROR):
            raise ValueError(f"envelope status must be 'ok' or 'error', got {status!r}")
        return cls(
            status=status,
            kind=data.get("kind", ""),
            job=dict(data.get("job") or {}),
            payload=dict(data.get("payload") or {}),
            error=(dict(data["error"]) if data.get("error") is not None else None),
            cached=bool(data.get("cached", False)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            reports=[dict(row) for row in data.get("reports") or []],
            schema=int(data.get("schema", ENVELOPE_SCHEMA)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        return cls.from_dict(json.loads(text))

    # -- constructors --------------------------------------------------
    @classmethod
    def failure(cls, kind: str, job: Mapping, exc: BaseException,
                wall_seconds: float = 0.0) -> "ResultEnvelope":
        """Wrap an exception as a structured error envelope."""
        # str(KeyError) wraps the message in quotes; unwrap for clean output.
        if isinstance(exc, KeyError) and exc.args:
            message = str(exc.args[0])
        else:
            message = str(exc)
        return cls(
            status=STATUS_ERROR,
            kind=kind,
            job=dict(job),
            error={"type": type(exc).__name__, "message": message},
            wall_seconds=wall_seconds,
        )
