"""repro.api — the unified Session/Job façade every front end speaks.

The layered contract of the reproduction::

    CLI / repro serve / fuzzing / benchmarks / notebooks
                    │  (job specs in, envelopes out)
                repro.api  —  Session · JobSpec · ResultEnvelope
                    │
          repro.core.engine  —  SweepEngine · executors · DesignCache
                    │
     formulations (ADVBIST / reference) · baselines · ILP backends

Front ends build declarative :class:`JobSpec` objects (or parse them from
JSON), hand them to a :class:`Session`, and get back JSON-serialisable
:class:`ResultEnvelope` objects — no front end constructs engines, caches
or executors itself.  See :mod:`repro.api.serve` for the stdin/stdout
wire protocol of the batch daemon.
"""

from .envelope import ENVELOPE_SCHEMA, ResultEnvelope
from .jobs import (
    BASELINE_METHODS,
    COMPARE_METHODS,
    JOB_KINDS,
    BaselineJob,
    BenchJob,
    CompareJob,
    FuzzJob,
    JobSpec,
    JobSpecError,
    SweepJob,
    SynthesizeJob,
    job_from_dict,
    job_from_json,
)
from .serve import serve
from .session import Session

__all__ = [
    "ENVELOPE_SCHEMA",
    "ResultEnvelope",
    "BASELINE_METHODS",
    "COMPARE_METHODS",
    "JOB_KINDS",
    "BaselineJob",
    "BenchJob",
    "CompareJob",
    "FuzzJob",
    "JobSpec",
    "JobSpecError",
    "SweepJob",
    "SynthesizeJob",
    "job_from_dict",
    "job_from_json",
    "serve",
    "Session",
]
