"""The :class:`Session` façade — the single programmatic entry point.

A session owns the shared execution state every front end used to wire up
by hand: the resolved solver backend, the cost model and formulation
options, the on-disk :class:`~repro.core.engine.DesignCache`, and one
long-lived executor (a persistent process pool when ``jobs > 1``).  Work
is described declaratively as :mod:`repro.api.jobs` specs and executed
with :meth:`Session.run` (one job) or :meth:`Session.run_many` /
:meth:`Session.submit` + :meth:`Session.drain` (batches with
progress-event callbacks).  Every outcome — success or failure — comes
back as a JSON-serialisable :class:`~repro.api.envelope.ResultEnvelope`;
exceptions from the solver stack are converted to structured error
envelopes rather than raised.

Because the cache and the worker pool live on the session, a batch of
jobs (or a long-running ``repro serve`` daemon) pays process start-up
once and sees warm cache hits across requests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor
from typing import Callable, Iterable, Mapping, Sequence

from ..baselines.common import BaselineError
from ..circuits import get_circuit
from ..core.engine import (
    DesignCache,
    EngineError,
    ProcessExecutor,
    SerialExecutor,
    SweepEngine,
    TaskScheduler,
)
from ..core.formulation import FormulationError, FormulationOptions
from ..cost.transistors import CostModel, PAPER_COST_MODEL
from ..dfg.graph import DataFlowGraph, DFGError
from ..obs.metrics import get_registry, record_job
from ..obs.trace import Tracer
from ..reporting.netlist import design_to_dict
from .envelope import STATUS_OK, ResultEnvelope
from .jobs import (
    BaselineJob,
    BenchJob,
    CompareJob,
    FuzzJob,
    JobSpec,
    JobSpecError,
    SweepJob,
    SynthesizeJob,
)

#: Signature of a progress-event callback: receives one flat dict per event.
ProgressCallback = Callable[[dict], None]

#: Exceptions the session converts into structured error envelopes.
#: BrokenExecutor covers a worker process dying mid-solve: the executor
#: drops its broken pool (see ProcessExecutor.run), the job fails with a
#: structured error, and the session keeps serving on a fresh pool.
#: Bare KeyError is deliberately absent — an unknown circuit is re-raised
#: as JobSpecError at the lookup site, so a genuine KeyError bug in a
#: handler surfaces as a crash instead of masquerading as bad input.
_JOB_ERRORS = (FormulationError, EngineError, BaselineError, DFGError,
               JobSpecError, BrokenExecutor, ValueError, OSError)


class Session:
    """Shared execution state plus the job dispatcher of :mod:`repro.api`.

    Parameters
    ----------
    backend:
        Default ILP backend registry name for every job (``"auto"``).
    time_limit:
        Default per-solve wall clock limit in seconds.
    jobs:
        Worker processes; ``jobs > 1`` creates one *persistent* process
        pool reused by every job until :meth:`close`.
    cache:
        ``True`` (default) memoises solved designs on disk, ``False``
        disables, or pass a :class:`DesignCache` instance directly.
    cache_dir:
        Cache root directory; ``None`` falls back to ``$REPRO_CACHE_DIR``
        or ``~/.cache/repro-advbist``.
    cost_model / options:
        Shared by every solve of the session.
    presolve:
        Default for the :mod:`repro.accel.presolve` reductions (jobs may
        override per spec).  Exact — results never change.
    cuts:
        Default for the :mod:`repro.ilp.cuts` root cutting-plane loop (jobs
        may override per spec).  Also exact.
    warm_start:
        Let warm-start-capable backends chain each circuit's ADVBIST solves
        in ascending ``k``, seeding each incumbent from the previous one.
        A chain runs serially — a single-circuit sweep with ``jobs > 1``
        should pass ``warm_start=False`` to keep its parallel fan-out.
    batch:
        Default for compound batched solving (jobs may override per spec):
        pack each request's hint-free singleton ILP misses into one
        block-diagonal model solved in a single backend call.  Exact —
        objectives and designs match the serial path.
    trace_file:
        Optional path; when set, every finished scheduler task is appended
        as one JSON line (after a header carrying the bench schema-2
        environment fingerprint).  Independent of the always-on bounded
        in-memory trace ring (:meth:`trace_events`).

    Every engine the session builds shares one
    :class:`~repro.sched.scheduler.TaskScheduler`, so identical tasks of
    *concurrent* requests (``repro serve --concurrency N``, or threads
    calling :meth:`run` on a shared session) coalesce onto a single
    computation; :meth:`scheduler_stats` reports the tallies.

    A session is a context manager; leaving the ``with`` block releases
    the worker pool.

    >>> from repro.api import Session, SynthesizeJob
    >>> with Session(cache=False) as session:
    ...     envelope = session.run(SynthesizeJob(circuit="fig1", k=1))
    >>> envelope.ok and envelope.payload["circuit"] == "fig1"
    True
    >>> session.run(SynthesizeJob(circuit="no-such-circuit")).error["type"]
    'JobSpecError'
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        time_limit: float | None = 120.0,
        jobs: int = 1,
        cache: DesignCache | bool = True,
        cache_dir: str | None = None,
        cost_model: CostModel = PAPER_COST_MODEL,
        options: FormulationOptions | None = None,
        presolve: bool = False,
        cuts: bool = False,
        warm_start: bool = True,
        batch: bool = False,
        trace_file: str | None = None,
    ):
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        self.backend = backend
        self.time_limit = time_limit
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.cost_model = cost_model
        self.options = options
        self.presolve = presolve
        self.cuts = cuts
        self.warm_start = warm_start
        self.batch = batch
        self._scheduler = TaskScheduler()
        # Live observability: the process-global metrics registry (shared
        # with every other session in the process) and a per-session trace
        # ring attached to the scheduler so every finished task is traced.
        self.metrics = get_registry()
        self.tracer = Tracer(sink=trace_file)
        self._scheduler.tracer = self.tracer
        if isinstance(cache, DesignCache):
            self.cache: DesignCache | None = cache
        elif cache:
            self.cache = DesignCache(cache_dir)
        else:
            self.cache = None
        self._executor = (ProcessExecutor(jobs, persistent=True) if jobs > 1
                          else SerialExecutor())
        self._pending: list[JobSpec] = []
        # Runtime job counters behind {"op": "stats"} / Session.stats():
        # per-kind ok/error/cached tallies, guarded for concurrent run().
        self._counters_lock = threading.Lock()
        self._job_counters: dict[str, dict[str, int]] = {}
        # Fail fast on an unknown default backend (per-job overrides are
        # validated when their engine is built).
        SweepEngine(backend=backend, cache=None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool and the trace sink (idempotent)."""
        close = getattr(self._executor, "close", None)
        if close is not None:
            close()
        self.tracer.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, job: JobSpec, progress: ProgressCallback | None = None,
            ) -> ResultEnvelope:
        """Execute one job spec; always returns an envelope, never raises
        for solver/model/input errors (they become ``status="error"``)."""
        handler = self._handler_for(job)
        job_dict = job.to_dict()
        # The started event carries the kind only; the full spec is echoed
        # once in the result envelope (streaming a large inline graph twice
        # more over the serve wire would be pure overhead).
        _emit(progress, {"event": "job_started", "kind": job.kind})
        start = time.perf_counter()
        try:
            envelope = handler(job)
        except _JOB_ERRORS as exc:
            envelope = ResultEnvelope.failure(job.kind, job_dict, exc)
        envelope.wall_seconds = round(time.perf_counter() - start, 6)
        with self._counters_lock:
            counters = self._job_counters.setdefault(
                job.kind, {"ok": 0, "error": 0, "cached": 0})
            counters["ok" if envelope.ok else "error"] += 1
            if envelope.cached:
                counters["cached"] += 1
        record_job(job.kind, envelope.status, envelope.wall_seconds,
                   envelope.cached)
        _emit(progress, {
            "event": "job_finished", "kind": job.kind, "status": envelope.status,
            "cached": envelope.cached, "wall_seconds": envelope.wall_seconds,
        })
        return envelope

    def run_many(self, specs: Iterable[JobSpec],
                 progress: ProgressCallback | None = None,
                 ) -> list[ResultEnvelope]:
        """Execute a batch of jobs on this session's warm executor/cache.

        ``progress`` receives ``batch_started`` / ``job_started`` /
        ``job_finished`` / ``batch_finished`` events, each annotated with
        the job's position in the batch.
        """
        specs = list(specs)
        _emit(progress, {"event": "batch_started", "total": len(specs)})
        envelopes: list[ResultEnvelope] = []
        for index, job in enumerate(specs):
            def tagged(event: dict, _index: int = index) -> None:
                _emit(progress, {**event, "index": _index, "total": len(specs)})
            envelopes.append(self.run(job, progress=tagged))
        _emit(progress, {
            "event": "batch_finished", "total": len(specs),
            "ok": sum(1 for e in envelopes if e.ok),
            "errors": sum(1 for e in envelopes if not e.ok),
        })
        return envelopes

    def submit(self, job: JobSpec) -> int:
        """Queue a job for the next :meth:`drain`; returns its batch index."""
        if not isinstance(job, JobSpec):
            raise JobSpecError(f"submit() needs a JobSpec, got {type(job).__name__}")
        self._pending.append(job)
        return len(self._pending) - 1

    @property
    def pending(self) -> tuple[JobSpec, ...]:
        """The jobs queued by :meth:`submit` and not yet drained."""
        return tuple(self._pending)

    def drain(self, progress: ProgressCallback | None = None,
              ) -> list[ResultEnvelope]:
        """Execute every submitted job (in submission order) and clear the queue."""
        specs, self._pending = self._pending, []
        return self.run_many(specs, progress=progress)

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Two-tier cache summary: disk root/entries/bytes plus the
        ``"memory"`` block (LRU entries, hits, evictions, single-flight
        waits) from :meth:`repro.sched.cache.DesignCache.info`."""
        if self.cache is None:
            return {"enabled": False, "root": None, "entries": 0, "bytes": 0}
        return {"enabled": True, **self.cache.info()}

    def cache_clear(self) -> int:
        """Delete every cached design; returns the number removed."""
        return self.cache.clear() if self.cache is not None else 0

    def scheduler_stats(self) -> dict:
        """Lifetime tallies of this session's shared task scheduler:
        submitted, cache_hits, deduped, coalesced and executed counts."""
        return self._scheduler.stats_snapshot()

    def stats(self) -> dict:
        """One runtime-counters snapshot for a long-running daemon.

        The point-in-time slice of live observability, answered by the
        serve transports' ``{"op": "stats"}`` control operation: per-kind
        job tallies from :meth:`run` (ok / error / cached), the *combined*
        two-tier cache hit rate derived from :meth:`cache_info` (every
        lookup probes the memory LRU first, so
        ``(memory_hits + disk_hits) / (memory_hits + memory_misses)``
        counts each lookup once whichever tier answered), and the
        scheduler coalescing counters of :meth:`scheduler_stats`.
        Histograms live in the metrics registry instead — see
        :meth:`metrics_text` and the ``{"op": "metrics"}`` control op.

        >>> from repro.api import Session, SynthesizeJob
        >>> with Session(cache=False) as session:
        ...     _ = session.run(SynthesizeJob(circuit="fig1", k=1))
        ...     snapshot = session.stats()
        >>> snapshot["jobs"]["synthesize"]["ok"], snapshot["total_jobs"]
        (1, 1)
        >>> sorted(snapshot["scheduler"])
        ['cache_hits', 'coalesced', 'deduped', 'executed', 'submitted']
        """
        with self._counters_lock:
            jobs = {kind: dict(counters)
                    for kind, counters in sorted(self._job_counters.items())}
        cache = self.cache_info()
        memory = cache.get("memory") or {}
        hits = memory.get("hits", 0)
        misses = memory.get("misses", 0)
        disk_hits = cache.get("disk_hits", 0)
        lookups = hits + misses  # every lookup probes the memory tier first
        return {
            "jobs": jobs,
            "total_jobs": sum(c["ok"] + c["error"] for c in jobs.values()),
            "cache": {
                "enabled": cache.get("enabled", False),
                "entries": cache.get("entries", 0),
                "memory_hits": hits,
                "memory_misses": misses,
                "disk_hits": disk_hits,
                "hit_rate": (round((hits + disk_hits) / lookups, 4)
                             if lookups else None),
            },
            "scheduler": self.scheduler_stats(),
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus-style exposition of the process-global registry
        (the payload behind the ``{"op": "metrics"}`` control op)."""
        return self.metrics.render()

    def metrics_snapshot(self) -> dict:
        """JSON-serialisable dump of the metrics registry."""
        return self.metrics.snapshot()

    def trace_events(self) -> list:
        """The retained per-solve trace ring, oldest event first."""
        return self.tracer.events()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _handler_for(self, job: JobSpec) -> Callable[[JobSpec], ResultEnvelope]:
        handlers = {
            SynthesizeJob.kind: self._run_synthesize,
            SweepJob.kind: self._run_sweep,
            CompareJob.kind: self._run_compare,
            BaselineJob.kind: self._run_baseline,
            FuzzJob.kind: self._run_fuzz,
            BenchJob.kind: self._run_bench,
        }
        if job.kind not in handlers:
            raise JobSpecError(f"unknown job kind {job.kind!r}")
        return handlers[job.kind]

    def _engine_for(self, job: JobSpec) -> SweepEngine:
        if job.use_cache is None:
            cache = self.cache
        elif job.use_cache:
            cache = self.cache if self.cache is not None else DesignCache(self.cache_dir)
        else:
            cache = None
        return SweepEngine(
            backend=job.backend or self.backend,
            time_limit=(job.time_limit if job.time_limit is not None
                        else self.time_limit),
            cost_model=self.cost_model,
            options=self.options,
            executor=self._executor,
            cache=cache,
            presolve=(job.presolve if job.presolve is not None
                      else self.presolve),
            cuts=(job.cuts if job.cuts is not None else self.cuts),
            warm_start=self.warm_start,
            batch=(job.batch if job.batch is not None else self.batch),
            scheduler=self._scheduler,
        )

    def _graph_for(self, job: JobSpec) -> DataFlowGraph:
        """Resolve a job's target: registry name or inline textio payload."""
        inline: Mapping | None = getattr(job, "graph", None)
        if inline is not None:
            from ..circuits.registry import circuit_dict_from_payload
            from ..dfg import textio
            from ..hls.frontend import elaborate  # lazy: hls is a heavy import

            raw = textio.from_dict(circuit_dict_from_payload(dict(inline)))
            return elaborate(raw).graph
        try:
            return get_circuit(job.circuit)
        except KeyError as exc:
            raise JobSpecError(str(exc.args[0]) if exc.args else str(exc)) from exc

    def _ok(self, job: JobSpec, payload: dict, reports: Sequence) -> ResultEnvelope:
        return ResultEnvelope(
            status=STATUS_OK,
            kind=job.kind,
            job=job.to_dict(),
            payload=payload,
            cached=bool(reports) and all(report.cached for report in reports),
            reports=[report.as_row() for report in reports],
        )

    # ------------------------------------------------------------------
    # job handlers
    # ------------------------------------------------------------------
    def _run_synthesize(self, job: SynthesizeJob) -> ResultEnvelope:
        graph = self._graph_for(job)
        k = job.k if job.k is not None else len(graph.module_ids)
        engine = self._engine_for(job)
        tasks = [engine.task(graph, "reference"),
                 engine.task(graph, "advbist", k=k)]
        outcomes, reports = engine.run(tasks)
        reference, design = outcomes[0].design, outcomes[1].design
        reference_area = reference.area().total
        payload = {
            "circuit": graph.name,
            "k": k,
            "reference_area": reference_area,
            "table3": [reference.table3_row(),
                       design.table3_row(reference_area)],
            "overhead_percent": round(design.overhead_vs(reference_area), 1),
            "optimal": design.optimal,
            "verified": design.verify().ok,
            "objective": design.objective,
            "register_kinds": {
                str(reg): kind.name
                for reg, kind in design.plan.register_kinds(design.datapath).items()
            },
            "module_session": {str(m): s
                               for m, s in design.plan.module_session.items()},
            "design": design_to_dict(design),
            "stats": design.stats.as_row() if design.stats is not None else None,
        }
        return self._ok(job, payload, reports)

    def _run_sweep(self, job: SweepJob) -> ResultEnvelope:
        graph = self._graph_for(job)
        engine = self._engine_for(job)
        sweep = engine.sweep(graph, max_k=job.max_k)
        best = sweep.best_entry()
        rows = [{**entry.table2_row(stats=True),
                 "verified": entry.design.verify().ok}
                for entry in sweep.entries]
        payload = {
            "circuit": graph.name,
            "reference_area": sweep.reference.area().total,
            "reference_optimal": sweep.reference.optimal,
            "rows": rows,
            "overheads": {str(k): round(v, 1)
                          for k, v in sweep.overheads().items()},
            "best": {"k": best.k,
                     "overhead_percent": round(best.overhead_percent, 1)},
        }
        return self._ok(job, payload, sweep.reports)

    def _run_compare(self, job: CompareJob) -> ResultEnvelope:
        graph = self._graph_for(job)
        k = job.k if job.k is not None else len(graph.module_ids)
        engine = self._engine_for(job)
        reference, designs, reports = engine.compare(graph, k=k,
                                                     methods=job.methods)
        reference_area = reference.area().total
        ordered = [m for m in ("ADVBIST", "ADVAN", "RALLOC", "BITS")
                   if m in designs]
        overheads = {m: round(designs[m].overhead_vs(reference_area), 1)
                     for m in ordered}
        payload = {
            "circuit": graph.name,
            "k": k,
            "reference_area": reference_area,
            "table3": [reference.table3_row()]
                      + [designs[m].table3_row(reference_area) for m in ordered],
            "overheads": overheads,
            "winner": min(overheads, key=overheads.get),
            "optimal": {m: designs[m].optimal for m in ordered},
            "reference_optimal": reference.optimal,
            "verified": {m: designs[m].verify().ok for m in ordered},
        }
        return self._ok(job, payload, reports)

    def _run_baseline(self, job: BaselineJob) -> ResultEnvelope:
        graph = self._graph_for(job)
        k = job.k if job.k is not None else len(graph.module_ids)
        engine = self._engine_for(job)
        outcomes, reports = engine.run(
            [engine.task(graph, "baseline", k=k, method=job.method)])
        design = outcomes[0].design
        payload = {
            "circuit": graph.name,
            "method": job.method,
            "k": k,
            "area": design.area().total,
            "table3": [design.table3_row()],
            "verified": design.verify().ok,
        }
        return self._ok(job, payload, reports)

    def _run_fuzz(self, job: FuzzJob) -> ResultEnvelope:
        from ..fuzzing import run_fuzz  # lazy: fuzzing pulls in the generator

        report = run_fuzz(
            count=job.count,
            seed=job.seed,
            num_operations=job.ops,
            formulation=job.formulation,
            k=job.k,
            cost_model=self.cost_model,
            time_limit=(job.time_limit if job.time_limit is not None
                        else self.time_limit),
            failure_dir=job.failure_dir,
        )
        payload = {
            "ok": report.ok,
            "cases": len(report.cases),
            "num_failures": len(report.failures),
            "rows": report.rows(),
            "failures": [str(case.failure_path) for case in report.failures
                         if case.failure_path is not None],
        }
        return self._ok(job, payload, [])

    def _run_bench(self, job: BenchJob) -> ResultEnvelope:
        from ..bench.runner import run_suites  # lazy: bench builds on this api

        # A benchmark suite owns its scenario grid, so it runs in its own
        # sessions (fresh per-scenario caches in a temp dir) rather than on
        # this session's executor; only the time limit flows through.
        report = run_suites(
            [job.suite],
            circuits=job.circuits,
            max_k=job.max_k,
            seed=job.seed,
            warmup=job.warmup,
            time_limit=(job.time_limit if job.time_limit is not None
                        else self.time_limit or 120.0),
        )
        return self._ok(job, report, [])


def _emit(progress: ProgressCallback | None, event: dict) -> None:
    if progress is not None:
        progress(event)
