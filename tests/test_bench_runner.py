"""Execution tests for the suite runner: real (tiny) grids through the
Session/Job API, parity guarding, attribution, and the BenchJob path."""

from __future__ import annotations

import pytest

from repro.api import BenchJob, JobSpecError, Session, job_from_dict
from repro.bench import BenchError, BenchSuite, ScenarioSpec, run_suite, run_suites
from repro.bench.runner import _check_parity
from repro.bench.schema import validate_report

#: A micro suite: one circuit, k=1, plain vs accelerated + warm reuse.
MICRO = BenchSuite(
    name="test-micro",
    description="fig1 micro grid for the runner tests",
    job_kinds=("sweep", "compare"),
    circuits=("fig1",),
    max_k=1,
    scenarios=(
        ScenarioSpec("cold_baseline"),
        ScenarioSpec("cold_accel", presolve=True, warm_start=True),
        ScenarioSpec("warm_cache", presolve=True, warm_start=True,
                     cache="reuse:cold_accel"),
    ),
)


@pytest.fixture(scope="module")
def micro_report():
    return run_suite(MICRO, warmup=False, time_limit=60.0)


def test_run_suite_shape_and_parity(micro_report):
    assert micro_report["suite"] == "test-micro"
    assert micro_report["parity_ok"] is True
    assert micro_report["parity_mismatches"] == []
    assert set(micro_report["scenarios"]) == {"cold_baseline", "cold_accel",
                                              "warm_cache"}
    for scenario in micro_report["scenarios"].values():
        assert set(scenario["per_unit_seconds"]) == {"sweep:fig1",
                                                     "compare:fig1"}
        assert scenario["total_solves"] > 0


def test_objectives_recorded_per_unit(micro_report):
    cold = micro_report["scenarios"]["cold_baseline"]
    assert "sweep:fig1:reference" in cold["objectives"]
    assert "sweep:fig1:k=1" in cold["objectives"]
    assert "compare:fig1:ADVBIST" in cold["objectives"]
    # proven flags gate the parity assertion
    assert cold["proven"]["sweep:fig1:k=1"] is True


def test_warm_cache_scenario_hits_the_accel_cache(micro_report):
    warm = micro_report["scenarios"]["warm_cache"]
    assert warm["cached_solves"] == warm["total_solves"]
    assert micro_report["speedups"]["warm_cache"] > 1.0


def test_presolve_attribution_recorded(micro_report):
    accel = micro_report["scenarios"]["cold_accel"]
    attribution = accel["attribution"]
    assert attribution["presolved_solves"] > 0
    assert attribution["presolve_vars_removed"] > 0
    assert attribution["presolve_rows_removed"] > 0
    # the plain scenario ran without presolve
    cold = micro_report["scenarios"]["cold_baseline"]
    assert cold["attribution"]["presolved_solves"] == 0


def test_cache_hits_claim_no_attribution(micro_report):
    """A warm replay must not re-claim the cold run's presolve work."""
    warm = micro_report["scenarios"]["warm_cache"]
    assert warm["cached_solves"] == warm["total_solves"]
    assert warm["attribution"]["presolved_solves"] == 0
    assert warm["attribution"]["presolve_vars_removed"] == 0
    assert warm["attribution"]["portfolio_wins"] == {}


def test_verification_failures_break_parity():
    from repro.api import ResultEnvelope
    from repro.bench.runner import _verification_failures

    sweep = ResultEnvelope(status="ok", kind="sweep", payload={
        "rows": [{"k": 1, "verified": True}, {"k": 2, "verified": False}]})
    failures = _verification_failures("sweep:fig1", sweep, "cold_accel")
    assert failures == [{"entry": "sweep:fig1:k=2", "scenario": "cold_accel",
                         "detail": "design failed BIST verification"}]
    compare = ResultEnvelope(status="ok", kind="compare", payload={
        "verified": {"ADVBIST": True, "RALLOC": False}})
    failures = _verification_failures("compare:fig1", compare, "serial")
    assert [f["entry"] for f in failures] == ["compare:fig1:RALLOC"]


def test_run_suites_wraps_into_validated_report(micro_report):
    report = run_suites([MICRO], warmup=False, time_limit=60.0)
    validate_report(report)
    assert set(report["suites"]) == {"test-micro"}
    assert report["environment"]["python"]
    assert report["config"]["warmup"] is False


def test_scenario_filter_intersects():
    report = run_suite(MICRO, warmup=False, time_limit=60.0,
                       scenarios=["cold_baseline", "not-a-scenario"])
    assert list(report["scenarios"]) == ["cold_baseline"]
    with pytest.raises(BenchError, match="none of the scenarios"):
        run_suite(MICRO, warmup=False, scenarios=["nope"])


def test_reuse_of_filtered_out_scenario_is_a_clear_error():
    with pytest.raises(BenchError, match="reuses the cache of 'cold_accel'"):
        run_suite(MICRO, warmup=False, time_limit=60.0,
                  scenarios=["cold_baseline", "warm_cache"])


def test_unknown_suite_name_is_a_bench_error():
    with pytest.raises(BenchError, match="unknown benchmark suite"):
        run_suite("definitely-not-registered", warmup=False)
    with pytest.raises(BenchError, match="at least one suite"):
        run_suites([], warmup=False)


def test_check_parity_flags_proven_mismatches():
    scenarios = {
        "base": {"scenario": "base", "unit_parity_failures": [],
                 "objectives": {"sweep:x:k=1": 100.0},
                 "proven": {"sweep:x:k=1": True}},
        "fast": {"scenario": "fast", "unit_parity_failures": [],
                 "objectives": {"sweep:x:k=1": 90.0},
                 "proven": {"sweep:x:k=1": True}},
    }
    mismatches, unproven = _check_parity(scenarios, "base")
    assert mismatches == [{"entry": "sweep:x:k=1", "scenario": "fast",
                           "baseline": 100.0, "got": 90.0}]
    assert unproven == []


def test_check_parity_skips_unproven_entries():
    scenarios = {
        "base": {"scenario": "base", "unit_parity_failures": [],
                 "objectives": {"sweep:x:k=1": 100.0},
                 "proven": {"sweep:x:k=1": False}},
        "fast": {"scenario": "fast", "unit_parity_failures": [],
                 "objectives": {"sweep:x:k=1": 90.0},
                 "proven": {"sweep:x:k=1": False}},
    }
    mismatches, unproven = _check_parity(scenarios, "base")
    assert mismatches == []
    assert unproven == ["sweep:x:k=1"]


# ----------------------------------------------------------------------
# the BenchJob path (Session + wire format)
# ----------------------------------------------------------------------
def test_bench_job_round_trips_and_validates():
    job = BenchJob(suite="solver-micro", max_k=1, warmup=False)
    assert job_from_dict(job.to_dict()) == job
    with pytest.raises(JobSpecError, match="unknown benchmark suite"):
        BenchJob(suite="nope")
    with pytest.raises(JobSpecError, match="not applicable"):
        BenchJob(suite="solver-micro", presolve=True)
    with pytest.raises(JobSpecError, match="not applicable"):
        BenchJob(suite="solver-micro", backend="scipy")
    with pytest.raises(JobSpecError, match="circuits"):
        BenchJob(suite="solver-micro", circuits=[])
    with pytest.raises(JobSpecError, match="circuits"):
        # a bare string must not pass by iterating its characters
        BenchJob(suite="solver-micro", circuits="fig1")
    with pytest.raises(JobSpecError, match="max_k"):
        BenchJob(suite="solver-micro", max_k=0)


def test_session_runs_bench_jobs():
    job = BenchJob(suite="solver-micro", max_k=1, warmup=False,
                   time_limit=60.0)
    with Session(cache=False) as session:
        envelope = session.run(job)
    assert envelope.ok, envelope.error
    assert envelope.kind == "bench"
    payload = envelope.payload
    validate_report(payload)
    assert set(payload["suites"]) == {"solver-micro"}
    assert payload["suites"]["solver-micro"]["parity_ok"] is True


def test_bench_job_circuit_narrowing_flows_through():
    job = BenchJob(suite="table3", circuits=("fig1",), warmup=False,
                   time_limit=60.0)
    with Session(cache=False) as session:
        envelope = session.run(job)
    assert envelope.ok, envelope.error
    suite = envelope.payload["suites"]["table3"]
    assert suite["config"]["circuits"] == ["fig1"]
    for scenario in suite["scenarios"].values():
        assert list(scenario["per_unit_seconds"]) == ["compare:fig1"]
