"""Tests of the scheduling algorithms (ASAP, ALAP, list, force hints)."""

import pytest

from repro.dfg import DFGBuilder, DFGError
from repro.hls import alap_schedule, asap_schedule, force_directed_hint, list_schedule, mobility


def diamond_graph():
    """in -> two parallel ops -> join (classic mobility example)."""
    builder = DFGBuilder("diamond")
    a = builder.input("a")
    b = builder.input("b")
    left = builder.op("add", a, b)
    right = builder.op("mul", a, b)
    join = builder.op("add", left, right)
    builder.output(join)
    return builder.build()


def test_asap_respects_dependencies(fig1_behavioral):
    schedule = asap_schedule(fig1_behavioral)
    graph = fig1_behavioral
    for op in graph.operations.values():
        for _port, var in op.variable_inputs:
            producer = graph.variables[var].producer
            if producer is not None:
                assert schedule[producer] < schedule[op.op_id]


def test_asap_critical_path_length(fig1_behavioral):
    schedule = asap_schedule(fig1_behavioral)
    # fig1: add -> (add, mul) -> mul is a three-level graph.
    assert max(schedule.values()) == 2


def test_alap_default_latency_matches_asap(fig1_behavioral):
    asap = asap_schedule(fig1_behavioral)
    alap = alap_schedule(fig1_behavioral)
    assert max(alap.values()) == max(asap.values())
    for op_id in asap:
        assert asap[op_id] <= alap[op_id]


def test_alap_with_relaxed_latency():
    graph = diamond_graph()
    alap = alap_schedule(graph, latency=5)
    assert max(alap.values()) == 4  # the join sits in the last step


def test_alap_below_critical_path_rejected(fig1_behavioral):
    with pytest.raises(DFGError):
        alap_schedule(fig1_behavioral, latency=1)


def test_mobility_nonnegative_and_zero_on_critical_path():
    graph = diamond_graph()
    mob = mobility(graph)
    assert all(value >= 0 for value in mob.values())
    assert min(mob.values()) == 0


def test_list_schedule_respects_resource_limits(fig1_behavioral):
    result = list_schedule(fig1_behavioral, {"alu": 1, "mult": 1})
    graph = fig1_behavioral.with_schedule(result.schedule)
    for cstep in graph.control_steps:
        ops = graph.operations_in_step(cstep)
        per_class = {}
        for op_id in ops:
            cls = graph.operations[op_id].module_class
            per_class[cls] = per_class.get(cls, 0) + 1
        assert per_class.get("alu", 0) <= 1
        assert per_class.get("mult", 0) <= 1


def test_list_schedule_serialises_when_single_unit():
    graph = diamond_graph()
    result = list_schedule(graph, {"alu": 1, "mult": 1})
    # left and right are different classes, so they may share a step; the
    # join must come strictly later.
    schedule = result.schedule
    assert schedule[2] > max(schedule[0], schedule[1])


def test_list_schedule_with_generous_resources_matches_asap(fig1_behavioral):
    asap = asap_schedule(fig1_behavioral)
    result = list_schedule(fig1_behavioral, {"alu": 8, "mult": 8})
    assert max(result.schedule.values()) == max(asap.values())


def test_list_schedule_latency_bound(fig1_behavioral):
    with pytest.raises(DFGError):
        list_schedule(fig1_behavioral, {"alu": 1, "mult": 1}, max_latency=1)


def test_list_schedule_unconstrained_classes():
    graph = diamond_graph()
    result = list_schedule(graph, {})  # no limits at all
    assert result.latency == 2


def test_schedule_result_apply(fig1_behavioral):
    result = list_schedule(fig1_behavioral, {"alu": 1, "mult": 1})
    scheduled = result.apply(fig1_behavioral)
    assert scheduled.is_scheduled
    assert result.latency == max(op.cstep for op in scheduled.operations.values()) + 1


def test_force_directed_hint_values():
    graph = diamond_graph()
    pressure = force_directed_hint(graph)
    assert set(pressure) == set(graph.operation_ids)
    assert all(value > 0 for value in pressure.values())
