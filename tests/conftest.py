"""Shared fixtures: small circuits used across the test suite."""

from __future__ import annotations

import pytest

from repro.circuits import fig1, tseng
from repro.dfg import DFGBuilder


@pytest.fixture(autouse=True)
def _isolated_design_cache(tmp_path, monkeypatch):
    """Keep the on-disk design cache out of the user's home during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "design-cache"))


@pytest.fixture()
def backend_registry_snapshot():
    """Restore the process-wide backend registry after a mutating test."""
    from repro.ilp.backends import registry

    saved_registry = dict(registry._REGISTRY)
    saved_aliases = dict(registry._ALIASES)
    yield registry
    registry._REGISTRY.clear()
    registry._REGISTRY.update(saved_registry)
    registry._ALIASES.clear()
    registry._ALIASES.update(saved_aliases)


@pytest.fixture(scope="session")
def fig1_graph():
    """The paper's Fig. 1 running example (scheduled and module bound)."""
    return fig1.build()


@pytest.fixture(scope="session")
def fig1_behavioral():
    """The unscheduled Fig. 1 DFG."""
    return fig1.build_behavioral()


@pytest.fixture(scope="session")
def tseng_graph():
    """The tseng benchmark (scheduled and module bound)."""
    return tseng.build()


@pytest.fixture()
def chain_graph():
    """A three-operation chain: useful for simple scheduling assertions."""
    builder = DFGBuilder("chain")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    t1 = builder.op("add", a, b)
    t2 = builder.op("mul", t1, c)
    t3 = builder.op("add", t2, a)
    builder.output(t3)
    return builder.build()


@pytest.fixture()
def constant_port_graph():
    """A scheduled graph whose multiplier port 1 sees only constants."""
    from repro.hls import bind_modules, list_schedule

    builder = DFGBuilder("const_port")
    a = builder.input("a")
    b = builder.input("b")
    t1 = builder.op("add", a, b, cstep=0)
    t2 = builder.op("mul", t1, builder.constant(5.0), cstep=1)
    t3 = builder.op("add", t2, b, cstep=2)
    builder.output(t3)
    graph = builder.build()
    return bind_modules(graph).apply(graph)
