"""Tests of incumbent-hint warm starts and the engine's ascending-k chains."""

from __future__ import annotations

import pytest

from repro.circuits import get_circuit
from repro.core.engine import SweepEngine, TaskChain, _execute_chain
from repro.ilp import LinExpr, Model, SolveStatus

TIME_LIMIT = 120.0


def knapsack_model() -> Model:
    model = Model("knapsack")
    weights, values = [3, 4, 5, 6], [4, 5, 6, 7]
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 10.0)
    model.set_objective(LinExpr.sum(-v * x for v, x in zip(values, items)))
    return model


# ----------------------------------------------------------------------
# the branch and bound incumbent hint
# ----------------------------------------------------------------------
def test_valid_hint_preserves_the_optimum():
    cold = knapsack_model().solve(backend="bnb")
    warm = knapsack_model().solve(backend="bnb", incumbent_hint=cold.objective)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective)


def test_loose_hint_preserves_the_optimum():
    cold = knapsack_model().solve(backend="bnb")
    warm = knapsack_model().solve(backend="bnb",
                                  incumbent_hint=cold.objective + 5.0)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective)


def test_unachievable_hint_triggers_the_cold_fallback():
    cold = knapsack_model().solve(backend="bnb")
    warm = knapsack_model().solve(backend="bnb",
                                  incumbent_hint=cold.objective - 100.0)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective)
    assert "incumbent hint was unachievable" in warm.message


def test_hint_respects_maximisation_sense():
    def build():
        model = Model("maximise", sense="max")
        weights, values = [3, 4, 5, 6], [4, 5, 6, 7]
        items = [model.add_binary(f"item{i}") for i in range(4)]
        model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 10.0)
        model.set_objective(LinExpr.sum(v * x for v, x in zip(values, items)))
        return model

    cold = build().solve(backend="bnb")
    warm = build().solve(backend="bnb", incumbent_hint=cold.objective)
    assert warm.status is SolveStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective)


def test_limit_under_unreachable_hint_returns_backup_incumbent():
    """A limit mid-search with a too-tight hint must not lose the design.

    The cutoff prevents solutions at/above the hint from becoming pruning
    incumbents, but they are still decodable designs: when a limit strikes
    first, the solver falls back to the best one it saw instead of
    reporting "no incumbent" (which would abort a whole sweep).
    """
    from repro.ilp.backends import BranchAndBoundBackend

    cold = knapsack_model().solve(backend="bnb")
    backend = BranchAndBoundBackend(node_limit=6)
    solution = backend.solve(knapsack_model().to_matrix_form(),
                             incumbent_hint=cold.objective - 100.0)
    assert solution.status is SolveStatus.FEASIBLE
    # The backup cannot beat the true optimum, and it satisfies the model.
    assert solution.objective >= cold.objective - 1e-6
    assert solution.gap is None or solution.gap >= 0.0


def test_scipy_silently_ignores_hints():
    solution = knapsack_model().solve(backend="scipy", incumbent_hint=-11.0)
    assert solution.status is SolveStatus.OPTIMAL


# ----------------------------------------------------------------------
# engine chain construction
# ----------------------------------------------------------------------
def _advbist_grid(engine: SweepEngine, graph, max_k: int):
    return [engine.task(graph, "reference")] + [
        engine.task(graph, "advbist", k=k) for k in range(1, max_k + 1)
    ]


def test_warm_capable_backend_chains_advbist_tasks_ascending():
    graph = get_circuit("fig1")
    engine = SweepEngine(backend="bnb", time_limit=TIME_LIMIT, cache=None)
    tasks = _advbist_grid(engine, graph, 2)
    chains = engine._build_chains(tasks, list(range(len(tasks))),
                                  [None] * len(tasks))
    shapes = sorted(len(chain.tasks) for chain, _ in chains)
    assert shapes == [1, 2]  # the reference alone, the two ks chained
    chained = next(chain for chain, _ in chains if len(chain.tasks) == 2)
    assert [task.k for task in chained.tasks] == [1, 2]


def test_scipy_backend_keeps_singleton_fanout():
    graph = get_circuit("fig1")
    engine = SweepEngine(backend="scipy", time_limit=TIME_LIMIT, cache=None)
    tasks = _advbist_grid(engine, graph, 2)
    chains = engine._build_chains(tasks, list(range(len(tasks))),
                                  [None] * len(tasks))
    assert all(len(chain.tasks) == 1 for chain, _ in chains)


def test_warm_start_false_disables_chaining():
    graph = get_circuit("fig1")
    engine = SweepEngine(backend="bnb", time_limit=TIME_LIMIT, cache=None,
                         warm_start=False)
    tasks = _advbist_grid(engine, graph, 2)
    chains = engine._build_chains(tasks, list(range(len(tasks))),
                                  [None] * len(tasks))
    assert all(len(chain.tasks) == 1 for chain, _ in chains)


def test_cached_smaller_k_objectives_seed_chain_hints():
    graph = get_circuit("fig1")
    engine = SweepEngine(backend="bnb", time_limit=TIME_LIMIT, cache=None)
    tasks = _advbist_grid(engine, graph, 2)
    # Simulate a cache hit for k=1 with a known objective.
    outcomes = [None] * len(tasks)
    k1_index = next(i for i, task in enumerate(tasks) if task.k == 1)

    class _FakeDesign:
        objective = 1234.0

    class _FakeOutcome:
        design = _FakeDesign()

    outcomes[k1_index] = _FakeOutcome()
    misses = [i for i in range(len(tasks)) if i != k1_index]
    chains = engine._build_chains(tasks, misses, outcomes)
    chained = next(chain for chain, _ in chains
                   if chain.tasks[0].kind == "advbist")
    assert chained.tasks[0].k == 2
    assert chained.hints == (1234.0,)


def test_execute_chain_threads_incumbents_and_matches_scipy():
    graph = get_circuit("fig1")
    engine = SweepEngine(backend="bnb", time_limit=TIME_LIMIT, cache=None)
    chain = TaskChain(
        tasks=tuple(engine.task(graph, "advbist", k=k) for k in (1, 2)),
        hints=(None, None),
    )
    outcomes = _execute_chain(chain)
    scipy_engine = SweepEngine(backend="scipy", time_limit=TIME_LIMIT, cache=None)
    for k, outcome in zip((1, 2), outcomes):
        check, _ = scipy_engine.run([scipy_engine.task(graph, "advbist", k=k)])
        assert outcome.design.objective == pytest.approx(
            check[0].design.objective)
        assert outcome.design.optimal


# ----------------------------------------------------------------------
# sweep-level parity and the cache key
# ----------------------------------------------------------------------
def test_warm_started_bnb_sweep_matches_scipy_sweep():
    graph = get_circuit("fig1")
    warm = SweepEngine(backend="bnb", time_limit=TIME_LIMIT, cache=None,
                       presolve=True).sweep(graph, max_k=2)
    cold = SweepEngine(backend="scipy", time_limit=TIME_LIMIT,
                       cache=None).sweep(graph, max_k=2)
    assert [e.design.area().total for e in warm.entries] == \
        [e.design.area().total for e in cold.entries]


def test_cache_key_distinguishes_presolve(tmp_path):
    from repro.core.engine import DesignCache

    graph = get_circuit("fig1")
    cache = DesignCache(tmp_path)
    plain = SweepEngine(backend="scipy", cache=None).task(graph, "advbist", k=2)
    accel = SweepEngine(backend="scipy", cache=None,
                        presolve=True).task(graph, "advbist", k=2)
    assert cache.key_for(plain) != cache.key_for(accel)


def test_cache_key_ignores_presolve_for_baselines(tmp_path):
    from repro.core.engine import DesignCache

    graph = get_circuit("fig1")
    cache = DesignCache(tmp_path)
    plain = SweepEngine(backend="scipy", cache=None).task(
        graph, "baseline", k=2, method="RALLOC")
    accel = SweepEngine(backend="scipy", cache=None, presolve=True).task(
        graph, "baseline", k=2, method="RALLOC")
    assert cache.key_for(plain) == cache.key_for(accel)


def test_presolved_sweep_served_from_its_own_cache_partition(tmp_path):
    from repro.core.engine import DesignCache

    graph = get_circuit("fig1")
    cache = DesignCache(tmp_path)
    plain = SweepEngine(backend="scipy", time_limit=TIME_LIMIT, cache=cache)
    accel = SweepEngine(backend="scipy", time_limit=TIME_LIMIT, cache=cache,
                        presolve=True)
    first = plain.sweep(graph, max_k=1)
    # The accelerated engine must not see the plain entries (and vice versa).
    accel_result = accel.sweep(graph, max_k=1)
    assert not any(report.cached for report in accel_result.reports)
    again = accel.sweep(graph, max_k=1)
    assert all(report.cached for report in again.reports)
    assert [e.design.area().total for e in first.entries] == \
        [e.design.area().total for e in again.entries]
