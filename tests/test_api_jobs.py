"""Job-spec and result-envelope JSON round-trips (the repro.api wire format)."""

import json

import pytest

from repro.api import (
    BaselineJob,
    CompareJob,
    FuzzJob,
    JobSpecError,
    ResultEnvelope,
    SweepJob,
    SynthesizeJob,
    job_from_dict,
    job_from_json,
)
from repro.api.jobs import JOB_KINDS

ALL_SPECS = [
    SynthesizeJob(circuit="fig1"),
    SynthesizeJob(circuit="tseng", k=3, backend="scipy", time_limit=10.0),
    SweepJob(circuit="paulin", max_k=2, use_cache=False),
    CompareJob(circuit="fir6", k=2, methods=("ADVBIST", "RALLOC")),
    BaselineJob(circuit="iir3", method="ADVAN", k=1),
    FuzzJob(count=3, seed=7, ops=5, formulation="advbist", k=2,
            failure_dir="/tmp/fails"),
]


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
def test_spec_round_trips_through_dict(spec):
    assert job_from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
def test_spec_round_trips_through_json_string(spec):
    text = spec.to_json()
    json.loads(text)  # must be a valid JSON document
    assert job_from_json(text) == spec


def test_to_dict_is_json_stable():
    spec = CompareJob(circuit="fig1", methods=("ADVBIST", "BITS"))
    blob = spec.to_dict()
    assert blob["job"] == "compare"
    assert blob["schema"] == 1
    assert blob["methods"] == ["ADVBIST", "BITS"]  # tuple → JSON array
    assert json.dumps(blob)  # fully serialisable as-is


def test_every_kind_is_registered():
    assert set(JOB_KINDS) == {"synthesize", "sweep", "compare", "baseline",
                              "fuzz", "bench"}


def test_inline_graph_round_trips(fig1_graph):
    from repro.dfg.textio import to_dict as graph_to_dict

    spec = SynthesizeJob(graph=graph_to_dict(fig1_graph), k=1)
    rebuilt = job_from_json(spec.to_json())
    assert rebuilt.graph == spec.graph


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_specs_are_frozen():
    spec = SweepJob(circuit="fig1")
    with pytest.raises(AttributeError):
        spec.circuit = "tseng"


@pytest.mark.parametrize("bad", [
    {},                                           # no kind
    {"job": "teleport"},                          # unknown kind
    {"job": "sweep"},                             # neither circuit nor graph
    {"job": "sweep", "circuit": "a", "graph": {}},  # both targets
    {"job": "sweep", "circuit": "a", "max_k": 0},
    {"job": "synthesize", "circuit": "a", "k": -1},
    {"job": "synthesize", "circuit": "a", "nope": 1},  # unknown field
    {"job": "compare", "circuit": "a", "methods": []},
    {"job": "compare", "circuit": "a", "methods": ["MAGIC"]},
    {"job": "baseline", "circuit": "a"},          # method missing
    {"job": "baseline", "circuit": "a", "method": "MAGIC"},
    {"job": "fuzz", "count": 0},
    {"job": "fuzz", "seed": -1},
    {"job": "fuzz", "formulation": "quantum"},
    {"job": "fuzz", "backend": "bnb"},     # parity is inherently multi-backend
    {"job": "fuzz", "use_cache": True},    # fuzzing never touches the cache
    {"job": "fuzz", "failure_dir": 5},     # must be a string path or null
    {"job": "sweep", "circuit": "a", "time_limit": -2.0},
])
def test_bad_specs_raise_jobspecerror(bad):
    with pytest.raises(JobSpecError):
        job_from_dict(bad)


def test_baseline_method_is_normalised_to_upper_case():
    assert BaselineJob(circuit="x", method="ralloc").method == "RALLOC"


def test_compare_methods_list_becomes_tuple():
    spec = job_from_dict({"job": "compare", "circuit": "a",
                          "methods": ["ADVAN", "BITS"]})
    assert spec.methods == ("ADVAN", "BITS")


def test_job_from_json_rejects_invalid_json():
    with pytest.raises(JobSpecError):
        job_from_json("{nope")


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def test_envelope_round_trips_through_json():
    envelope = ResultEnvelope(
        status="ok", kind="sweep",
        job=SweepJob(circuit="fig1").to_dict(),
        payload={"rows": [{"k": 1, "overhead_percent": 30.8}]},
        cached=True, wall_seconds=1.25,
        reports=[{"circuit": "fig1", "cached": True}],
    )
    rebuilt = ResultEnvelope.from_json(envelope.to_json())
    assert rebuilt == envelope
    assert rebuilt.ok
    # and the embedded job spec is itself replayable
    assert job_from_dict(rebuilt.job) == SweepJob(circuit="fig1")


def test_error_envelope_round_trips():
    envelope = ResultEnvelope.failure("synthesize", {"job": "synthesize"},
                                      KeyError("unknown circuit 'x'"))
    rebuilt = ResultEnvelope.from_json(envelope.to_json())
    assert not rebuilt.ok
    assert rebuilt.error == {"type": "KeyError",
                             "message": "unknown circuit 'x'"}


def test_envelope_rejects_bad_status():
    with pytest.raises(ValueError):
        ResultEnvelope.from_dict({"status": "maybe", "kind": "sweep"})
