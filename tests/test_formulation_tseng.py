"""Integration test of the full ADVBIST flow on a real benchmark (tseng).

Slower than the Fig. 1 tests (a few seconds of MILP solving) but still well
within unit-test budgets; it exercises the complete Table 2 / Table 3 pipeline
on a circuit with three modules and six registers.
"""

import pytest

from repro.baselines import run_advan, run_bits, run_ralloc
from repro.core import AdvBistSynthesizer
from repro.datapath import TestRegisterKind


@pytest.fixture(scope="module")
def tseng_sweep(tseng_graph):
    return AdvBistSynthesizer(tseng_graph, time_limit=90).sweep()


def test_sweep_produces_one_design_per_module_count(tseng_sweep, tseng_graph):
    assert len(tseng_sweep.entries) == len(tseng_graph.module_ids) == 3


def test_sweep_all_optimal_and_verified(tseng_sweep):
    for entry in tseng_sweep.entries:
        assert entry.design.optimal
        assert entry.design.verify().ok


def test_sweep_overhead_trend_and_band(tseng_sweep):
    overheads = [entry.overhead_percent for entry in tseng_sweep.entries]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(overheads, overheads[1:]))
    # The paper reports 25-34 % for tseng; the reconstructed circuit lands in
    # the same moderate band (well below 100 %).
    assert all(5.0 <= oh <= 90.0 for oh in overheads)


def test_register_count_never_grows(tseng_sweep):
    reference_registers = tseng_sweep.reference.area().register_count
    for entry in tseng_sweep.entries:
        assert entry.design.area().register_count == reference_registers


def test_k1_uses_more_expensive_registers_than_k3(tseng_sweep):
    """Concurrent testing of all modules concentrates TPG+SR roles, so the
    k=1 design needs at least as much register area as the k=3 design."""
    by_k = {entry.k: entry.design for entry in tseng_sweep.entries}
    assert by_k[1].area().register_area >= by_k[3].area().register_area


def test_every_session_in_k3_design_is_used_or_empty_is_allowed(tseng_sweep):
    design = [entry.design for entry in tseng_sweep.entries if entry.k == 3][0]
    sessions = design.plan.sessions_used()
    assert sessions and max(sessions) <= 3
    # Each module tested exactly once in total.
    assert sorted(design.plan.module_session) == design.datapath.module_ids


def test_table3_ordering_on_tseng(tseng_sweep, tseng_graph):
    reference_area = tseng_sweep.reference.area().total
    advbist = [e.design for e in tseng_sweep.entries if e.k == 3][0]
    advbist_overhead = advbist.overhead_vs(reference_area)
    for runner in (run_advan, run_ralloc, run_bits):
        baseline = runner(tseng_graph)
        assert baseline.overhead_vs(reference_area) >= advbist_overhead - 1e-6


def test_cbilbo_never_needed_at_max_k(tseng_sweep):
    """With one module per session and six registers, the optimal design never
    has to reconfigure a register as a (costly) concurrent BILBO."""
    design = [entry.design for entry in tseng_sweep.entries if entry.k == 3][0]
    assert design.kind_counts()[TestRegisterKind.CBILBO] == 0
