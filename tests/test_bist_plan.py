"""Tests of test plans, register-kind classification and plan verification."""

import pytest

from repro.datapath import (
    Datapath,
    TestPlan,
    TestPlanError,
    TestRegisterKind,
    classify_register,
    verify_bist_plan,
)
from repro.hls import left_edge_binding


@pytest.fixture()
def fig1_datapath(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    return Datapath.from_bindings(fig1_graph, binding.assignment)


def valid_plan_for(datapath: Datapath, sessions: int = 2) -> TestPlan:
    """A hand-made valid plan: each module in its own session, greedy picks."""
    plan = TestPlan(num_sessions=sessions)
    for index, module in enumerate(datapath.modules):
        session = (index % sessions) + 1
        plan.module_session[module.module_id] = session
        sr_candidates = [r for r in datapath.register_ids
                         if datapath.has_module_to_register_wire(module.module_id, r)]
        plan.sr_of_module[module.module_id] = sr_candidates[0]
        used = set()
        for port in module.input_ports:
            candidates = [r for r in datapath.registers_driving_port(module.module_id, port)
                          if r not in used]
            plan.tpg_of_port[(module.module_id, port)] = candidates[0]
            used.add(candidates[0])
    return plan


# ----------------------------------------------------------------------
# classify_register / register kinds
# ----------------------------------------------------------------------
def test_classify_register_all_kinds():
    assert classify_register(set(), set()) is TestRegisterKind.NONE
    assert classify_register({1}, set()) is TestRegisterKind.TPG
    assert classify_register(set(), {2}) is TestRegisterKind.SR
    assert classify_register({1}, {2}) is TestRegisterKind.BILBO
    assert classify_register({1, 2}, {2}) is TestRegisterKind.CBILBO


def test_kind_capabilities():
    assert TestRegisterKind.TPG.generates_patterns
    assert not TestRegisterKind.TPG.compacts_responses
    assert TestRegisterKind.SR.compacts_responses
    assert TestRegisterKind.BILBO.generates_patterns and TestRegisterKind.BILBO.compacts_responses
    assert TestRegisterKind.CBILBO.generates_patterns
    assert not TestRegisterKind.NONE.generates_patterns


def test_plan_requires_positive_sessions():
    with pytest.raises(TestPlanError):
        TestPlan(num_sessions=0)


def test_plan_rejects_out_of_range_session():
    with pytest.raises(TestPlanError):
        TestPlan(num_sessions=2, module_session={0: 3})


def test_plan_register_kinds(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    kinds = plan.register_kinds(fig1_datapath)
    assert set(kinds) == set(fig1_datapath.register_ids)
    counts = plan.kind_counts(fig1_datapath)
    assert sum(counts.values()) == len(fig1_datapath.register_ids)


def test_plan_sessions_and_summary(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    assert set(plan.sessions_used()) <= {1, 2}
    for session in plan.sessions_used():
        assert plan.modules_in_session(session)
    summary = plan.summary()
    assert summary["modules"] == len(fig1_datapath.modules)


def test_cbilbo_detection_same_session(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=1)
    # In a single session, make one register both a TPG and the SR of a module.
    module = fig1_datapath.modules[0].module_id
    reg = plan.tpg_of_port[(module, 0)]
    victim_module = None
    for other in fig1_datapath.modules:
        if fig1_datapath.has_module_to_register_wire(other.module_id, reg):
            victim_module = other.module_id
            break
    if victim_module is None:
        pytest.skip("no module drives that register in this data path")
    plan.sr_of_module[victim_module] = reg
    assert plan.register_kind(reg) is TestRegisterKind.CBILBO


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
def test_valid_plan_verifies(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    report = verify_bist_plan(fig1_datapath, plan)
    assert report.ok, report.problems


def test_missing_module_session_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    removed = fig1_datapath.modules[0].module_id
    del plan.module_session[removed]
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("never tested" in problem for problem in report.problems)


def test_missing_sr_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    del plan.sr_of_module[fig1_datapath.modules[0].module_id]
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("no signature register" in problem for problem in report.problems)


def test_sr_without_wire_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    module = fig1_datapath.modules[0].module_id
    unwired = [r for r in fig1_datapath.register_ids
               if not fig1_datapath.has_module_to_register_wire(module, r)]
    if not unwired:
        pytest.skip("every register is wired from this module")
    plan.sr_of_module[module] = unwired[0]
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("no wire" in problem for problem in report.problems)


def test_sr_sharing_in_same_session_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=1)
    modules = [m.module_id for m in fig1_datapath.modules]
    shared = None
    for reg in fig1_datapath.register_ids:
        if all(fig1_datapath.has_module_to_register_wire(m, reg) for m in modules[:2]):
            shared = reg
            break
    if shared is None:
        pytest.skip("no register is reachable from two modules")
    plan.sr_of_module[modules[0]] = shared
    plan.sr_of_module[modules[1]] = shared
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("same" in problem and "session" in problem for problem in report.problems)


def test_missing_tpg_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    module = fig1_datapath.modules[0].module_id
    del plan.tpg_of_port[(module, 0)]
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("neither a TPG" in problem for problem in report.problems)


def test_tpg_without_wire_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    module = fig1_datapath.modules[0]
    unwired = [r for r in fig1_datapath.register_ids
               if r not in fig1_datapath.registers_driving_port(module.module_id, 0)]
    if not unwired:
        pytest.skip("all registers drive this port")
    plan.tpg_of_port[(module.module_id, 0)] = unwired[0]
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("no wire" in problem for problem in report.problems)


def test_tpg_shared_between_ports_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    module = fig1_datapath.modules[0]
    shared = None
    for reg in fig1_datapath.registers_driving_port(module.module_id, 0):
        if reg in fig1_datapath.registers_driving_port(module.module_id, 1):
            shared = reg
            break
    if shared is None:
        pytest.skip("no register reaches both ports of this module")
    plan.tpg_of_port[(module.module_id, 0)] = shared
    plan.tpg_of_port[(module.module_id, 1)] = shared
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("both ports" in problem for problem in report.problems)


def test_constant_port_with_registers_detected(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    module = fig1_datapath.modules[0].module_id
    plan.constant_tpg_ports.append((module, 0))
    report = verify_bist_plan(fig1_datapath, plan)
    assert any("constant" in problem for problem in report.problems)


def test_verification_report_bool(fig1_datapath):
    plan = valid_plan_for(fig1_datapath, sessions=2)
    report = verify_bist_plan(fig1_datapath, plan)
    assert bool(report) is report.ok
