"""Integration tests of the ADVBIST ILP on the paper's Fig. 1 example.

The example is small enough to solve to proven optimality in well under a
second, so these tests check the formulation end to end: constraint families,
decoded designs, objective/area consistency and the CBILBO-vs-k behaviour the
paper's Figs. 2 and 3 illustrate.
"""

import pytest

from repro.core import AdvBistFormulation, FormulationError, FormulationOptions
from repro.cost import PAPER_COST_MODEL
from repro.datapath import TestRegisterKind


@pytest.fixture(scope="module")
def k1_result(fig1_graph):
    return AdvBistFormulation(fig1_graph, k=1).solve()


@pytest.fixture(scope="module")
def k2_result(fig1_graph):
    return AdvBistFormulation(fig1_graph, k=2).solve()


def test_requires_scheduled_bound_graph(fig1_behavioral):
    with pytest.raises(FormulationError):
        AdvBistFormulation(fig1_behavioral, k=1)


def test_requires_positive_k(fig1_graph):
    with pytest.raises(FormulationError):
        AdvBistFormulation(fig1_graph, k=0)


def test_rejects_too_few_registers(fig1_graph):
    with pytest.raises(FormulationError):
        AdvBistFormulation(fig1_graph, k=1,
                           options=FormulationOptions(num_registers=2))


def test_model_contains_paper_variable_families(fig1_graph):
    formulation = AdvBistFormulation(fig1_graph, k=2)
    registers = len(formulation.registers)
    variables = len(fig1_graph.variable_ids)
    assert len(formulation.x) == variables * registers
    # z_rml: one per (register, module, port); z_mr: one per (module, register)
    ports = sum(len(formulation.module_ports[m]) for m in formulation.modules)
    assert len(formulation.z_in) == registers * ports
    assert len(formulation.z_out) == registers * len(formulation.modules)
    # SR variables: |M| x |R| x k   (equation 6 family)
    assert len(formulation.s_mrp) == len(formulation.modules) * registers * 2
    # TPG variables: |R| x ports x k (equation 9 family)
    assert len(formulation.t_rmlp) == registers * ports * 2
    # BILBO / CBILBO indicators per register (and per register-session)
    assert len(formulation.b_reg) == registers
    assert len(formulation.c_reg_p) == registers * 2


def test_k1_and_k2_solve_to_optimality(k1_result, k2_result):
    assert k1_result.solution.proven_optimal
    assert k2_result.solution.proven_optimal
    assert k1_result.design is not None
    assert k2_result.design is not None


def test_designs_pass_independent_verification(k1_result, k2_result):
    assert k1_result.design.verify().ok
    assert k2_result.design.verify().ok


def test_objective_equals_recomputed_area(k1_result, k2_result):
    """The ILP objective must equal the area recomputed from the decoded design."""
    for result in (k1_result, k2_result):
        breakdown = result.design.area()
        assert result.solution.objective == pytest.approx(breakdown.total)


def test_k1_needs_concurrent_bilbo_but_k2_does_not(k1_result, k2_result):
    """With only three registers, testing both modules in one session forces a
    CBILBO; spreading the test over two sessions avoids it (the area-vs-test-
    time trade-off of the paper)."""
    k1_counts = k1_result.design.kind_counts()
    k2_counts = k2_result.design.kind_counts()
    assert k1_counts[TestRegisterKind.CBILBO] >= 1
    assert k2_counts[TestRegisterKind.CBILBO] == 0


def test_more_sessions_never_cost_more_area(k1_result, k2_result):
    assert k2_result.design.area().total <= k1_result.design.area().total


def test_every_module_tested_once(k2_result, fig1_graph):
    plan = k2_result.design.plan
    assert sorted(plan.module_session) == fig1_graph.module_ids
    assert sorted(plan.sr_of_module) == fig1_graph.module_ids
    for module in fig1_graph.module_ids:
        for port in fig1_graph.module_input_ports(module):
            assert (module, port) in plan.tpg_of_port


def test_interconnect_variables_match_decoded_datapath(fig1_graph):
    """The z variables chosen by the ILP are exactly the wires of the decoded
    data path: required wires are present, adverse wires are absent."""
    formulation = AdvBistFormulation(fig1_graph, k=2)
    result = formulation.solve()
    datapath = result.design.datapath
    for (r, m, l), var in formulation.z_in.items():
        assert result.solution.is_one(var) == datapath.has_register_to_port_wire(r, m, l)
    for (m, r), var in formulation.z_out.items():
        assert result.solution.is_one(var) == datapath.has_module_to_register_wire(m, r)


def test_register_kind_indicators_match_plan(fig1_graph):
    formulation = AdvBistFormulation(fig1_graph, k=1)
    result = formulation.solve()
    kinds = result.design.plan.register_kinds(result.design.datapath)
    for r in formulation.registers:
        kind = kinds[r]
        assert result.solution.is_one(formulation.t_reg[r]) == kind.generates_patterns
        assert result.solution.is_one(formulation.s_reg[r]) == kind.compacts_responses
        assert result.solution.is_one(formulation.c_reg[r]) == (
            kind is TestRegisterKind.CBILBO
        )


def test_bnb_backend_reaches_same_objective_on_k1(fig1_graph):
    """The pure-Python solver agrees with HiGHS on the small instance."""
    highs = AdvBistFormulation(fig1_graph, k=1).solve(backend="scipy")
    bnb = AdvBistFormulation(fig1_graph, k=1).solve(backend="bnb", time_limit=120)
    assert bnb.solution.status.has_solution
    assert bnb.solution.objective == pytest.approx(highs.solution.objective)


def test_extracting_from_infeasible_solution_raises(fig1_graph):
    formulation = AdvBistFormulation(fig1_graph, k=1)
    from repro.ilp import Solution, SolveStatus

    with pytest.raises(FormulationError):
        formulation.extract_design(Solution(status=SolveStatus.INFEASIBLE))


def test_solution_constraints_all_satisfied(fig1_graph):
    formulation = AdvBistFormulation(fig1_graph, k=2)
    result = formulation.solve()
    assert formulation.model.check_solution(result.solution) == []


def test_cost_model_propagates(fig1_graph):
    wide_model = PAPER_COST_MODEL.__class__(bit_width=16)
    result = AdvBistFormulation(fig1_graph, k=2, cost_model=wide_model).solve()
    narrow = AdvBistFormulation(fig1_graph, k=2).solve()
    assert result.design.area().total > narrow.design.area().total
