"""Tests of the solver backends, their registry and the sparse lowering."""

import pytest

from repro.ilp import (
    BackendRegistryError,
    BranchAndBoundBackend,
    LinExpr,
    Model,
    ScipyMilpBackend,
    SolveStatus,
    available_backend_names,
    backend_info,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_name,
)

BACKENDS = ["scipy", "bnb"]


def knapsack_model():
    """0/1 knapsack with a known optimum of 11 (items 1 and 2)."""
    model = Model("knapsack", sense="max")
    values = [6, 5, 6, 3]
    weights = [4, 3, 3, 2]
    capacity = 6
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= capacity)
    model.set_objective(LinExpr.sum(v * x for v, x in zip(values, items)))
    return model, items


@pytest.mark.parametrize("backend", BACKENDS)
def test_knapsack_optimum(backend):
    model, items = knapsack_model()
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(11.0)
    chosen = [i for i, item in enumerate(items) if solution.is_one(item)]
    assert chosen == [1, 2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_model_detected(backend):
    model = Model()
    x = model.add_binary("x")
    model.add_constr(x + 0.0 >= 2.0)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.INFEASIBLE
    assert not solution.status.has_solution


@pytest.mark.parametrize("backend", BACKENDS)
def test_equality_constraints_respected(backend):
    model = Model()
    x = model.add_integer("x", upper=10)
    y = model.add_integer("y", upper=10)
    model.add_constr((x + y) == 7)
    model.add_constr(x - y <= 1)
    model.set_objective(x + 2 * y)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.value(x) + solution.value(y) == pytest.approx(7)
    # minimise x + 2y subject to x+y=7, x-y<=1  =>  x=4, y=3
    assert solution.value(x) == pytest.approx(4)
    assert solution.value(y) == pytest.approx(3)


@pytest.mark.parametrize("backend", BACKENDS)
def test_integer_values_are_exact_integers(backend):
    model = Model()
    x = model.add_integer("x", upper=5)
    model.add_constr(2 * x >= 3)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.value(x) == 2.0
    assert float(solution.value(x)).is_integer()


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_integer_continuous(backend):
    model = Model()
    x = model.add_integer("x", upper=10)
    y = model.add_continuous("y", upper=10)
    model.add_constr(x + y >= 3.5)
    model.set_objective(2 * x + y)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    # Best is x=0, y=3.5 with objective 3.5.
    assert solution.objective == pytest.approx(3.5)
    assert solution.value(y) == pytest.approx(3.5)


def test_backends_agree_on_assignment_problem():
    """3x3 assignment problem solved by both backends gives one optimum."""
    cost = [[4, 2, 8], [4, 3, 7], [3, 1, 6]]

    def build():
        model = Model("assignment")
        x = {(i, j): model.add_binary(f"x_{i}_{j}") for i in range(3) for j in range(3)}
        for i in range(3):
            model.add_constr(LinExpr.sum(x[(i, j)] for j in range(3)) == 1)
        for j in range(3):
            model.add_constr(LinExpr.sum(x[(i, j)] for i in range(3)) == 1)
        model.set_objective(
            LinExpr.sum(cost[i][j] * x[(i, j)] for i in range(3) for j in range(3))
        )
        return model

    obj_scipy = build().solve(backend="scipy").objective
    obj_bnb = build().solve(backend="bnb").objective
    assert obj_scipy == pytest.approx(obj_bnb)
    assert obj_scipy == pytest.approx(12.0)  # 2 + 7 + 3


def hard_knapsack_model():
    """Capacity-7 knapsack whose LP relaxation is fractional (optimum 12).

    Unlike :func:`knapsack_model` (integral LP vertex, solved at the root),
    this one needs a few branch-and-bound nodes, which makes it suitable for
    exercising the node-limit paths.
    """
    model = Model("knap7", sense="max")
    values = [6, 5, 6, 3]
    weights = [4, 3, 3, 2]
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 7)
    model.set_objective(LinExpr.sum(v * x for v, x in zip(values, items)))
    return model, items


def test_bnb_node_limit_without_incumbent_reports_node_limit():
    backend = BranchAndBoundBackend(node_limit=0)
    model, _items = knapsack_model()
    solution = model.solve(backend=backend)
    # With no nodes allowed the solver cannot even find an incumbent — and
    # must say *which* limit stopped it, not a blanket TIME_LIMIT.
    assert solution.status is SolveStatus.NODE_LIMIT
    assert not solution.status.has_solution
    assert solution.objective is None
    assert "node_limit" in solution.message


def test_bnb_node_limit_with_incumbent_reports_feasible_and_gap():
    model, _items = hard_knapsack_model()
    reference = model.solve(backend="bnb")
    assert reference.status is SolveStatus.OPTIMAL
    assert reference.objective == pytest.approx(12.0)
    assert reference.nodes > 3

    # Stop after enough nodes for an incumbent but before the proof closes.
    model, _items = hard_knapsack_model()
    solution = model.solve(backend=BranchAndBoundBackend(node_limit=3))
    assert solution.status is SolveStatus.FEASIBLE
    assert solution.status.has_solution
    assert solution.objective is not None
    assert solution.gap is not None and solution.gap > 0.0
    assert solution.stats is not None
    assert solution.stats.gap == pytest.approx(solution.gap)
    assert "node_limit" in solution.message


def test_bnb_reports_nodes_explored():
    model, _items = knapsack_model()
    solution = model.solve(backend="bnb")
    assert solution.nodes >= 1


def test_get_backend_auto_and_errors():
    assert isinstance(get_backend("auto"), ScipyMilpBackend)
    assert isinstance(get_backend("bnb"), BranchAndBoundBackend)
    assert isinstance(get_backend("highs"), ScipyMilpBackend)
    with pytest.raises(ValueError):
        get_backend("glpk")


def test_bnb_time_limit_stops_without_incumbent():
    """A zero time limit trips the wall-clock check before any node solves."""
    model, _items = knapsack_model()
    solution = model.solve(backend="bnb", time_limit=0.0)
    assert solution.status is SolveStatus.TIME_LIMIT
    assert not solution.status.has_solution
    assert solution.objective is None
    assert "no incumbent" in solution.message
    assert "time_limit" in solution.message
    assert solution.stats is not None and solution.stats.backend == "bnb"


def test_bnb_without_time_limit_proves_optimality():
    model, _items = knapsack_model()
    solution = model.solve(backend="bnb", time_limit=None)
    assert solution.status is SolveStatus.OPTIMAL


def test_registry_metadata_and_aliases():
    names = available_backend_names()
    assert {"scipy", "highs", "bnb", "branch_and_bound"} <= set(names)
    assert resolve_backend_name("highs") == "scipy"
    assert resolve_backend_name("BRANCH_AND_BOUND") == "bnb"
    info = backend_info("scipy")
    assert info.supports_sparse and info.supports_time_limit
    assert info.cls is ScipyMilpBackend
    canonical = [entry.name for entry in list_backends()]
    assert canonical == sorted(canonical)
    # instances carry the capability flags the modelling layer checks
    assert ScipyMilpBackend().supports_sparse
    assert BranchAndBoundBackend().supports_sparse
    assert ScipyMilpBackend.name == "scipy"
    assert BranchAndBoundBackend().supports_warm_start
    assert not ScipyMilpBackend().supports_warm_start


def test_unknown_backend_error_lists_available_names():
    with pytest.raises(BackendRegistryError) as excinfo:
        resolve_backend_name("glpk")
    message = str(excinfo.value)
    # The error enumerates what *is* available instead of a bare
    # "unknown backend": canonical names, aliases and the 'auto' escape.
    for name in ("bnb", "portfolio", "scipy"):
        assert name in message
    for alias in ("branch_and_bound", "highs", "race"):
        assert alias in message
    assert "'auto'" in message


def test_register_backend_rejects_conflicts_and_reserved_names(backend_registry_snapshot):
    with pytest.raises(BackendRegistryError):
        @register_backend("scipy")
        class Impostor:  # pragma: no cover - never instantiated
            def solve(self, form, time_limit=None, mip_gap=1e-6):
                raise NotImplementedError

    with pytest.raises(BackendRegistryError):
        @register_backend("auto")
        class Reserved:  # pragma: no cover - never instantiated
            def solve(self, form, time_limit=None, mip_gap=1e-6):
                raise NotImplementedError


def test_registered_custom_backend_resolves_by_name_and_alias(backend_registry_snapshot):
    calls = []

    @register_backend("echo-test", aliases=("echo-alias",), supports_sparse=False,
                      description="test-only stub")
    class EchoBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            calls.append(form)
            from repro.ilp import Solution
            return Solution(status=SolveStatus.INFEASIBLE)

    assert resolve_backend_name("echo-alias") == "echo-test"
    model = Model()
    model.add_binary("x")
    solution = model.solve(backend="echo-test")
    assert solution.status is SolveStatus.INFEASIBLE
    # supports_sparse=False means the model handed over the dense lowering
    assert not calls[0].is_sparse
    assert solution.stats is not None and solution.stats.backend == "echo-test"


@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_consume_sparse_form_natively(backend):
    model, _items = knapsack_model()
    form = model.to_matrix_form()
    assert form.is_sparse
    solution = get_backend(backend).solve(form)
    assert solution.status is SolveStatus.OPTIMAL
    # maximisation models are negated before reaching the backend
    assert solution.objective == pytest.approx(-11.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sparse_and_dense_lowerings_agree(backend):
    model, _items = knapsack_model()
    sparse_solution = get_backend(backend).solve(model.to_matrix_form())
    dense_solution = get_backend(backend).solve(model.to_matrix_form(sparse_form=False))
    assert sparse_solution.objective == pytest.approx(dense_solution.objective)


def test_solution_value_default_for_unknown_variable():
    model = Model()
    x = model.add_binary("x")
    model.set_objective(x + 0.0)
    solution = model.solve()
    other_model = Model()
    stranger = other_model.add_binary("stranger")
    assert solution.value(stranger, default=0.5) == 0.5


@pytest.mark.parametrize("backend", BACKENDS)
def test_unconstrained_minimisation_takes_lower_bounds(backend):
    model = Model()
    x = model.add_integer("x", lower=2, upper=9)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.value(x) == pytest.approx(2)
