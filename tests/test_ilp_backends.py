"""Tests of the two solver backends (HiGHS via scipy, and the own B&B)."""

import pytest

from repro.ilp import (
    BranchAndBoundBackend,
    LinExpr,
    Model,
    ScipyMilpBackend,
    SolveStatus,
    get_backend,
)

BACKENDS = ["scipy", "bnb"]


def knapsack_model():
    """0/1 knapsack with a known optimum of 11 (items 1 and 2)."""
    model = Model("knapsack", sense="max")
    values = [6, 5, 6, 3]
    weights = [4, 3, 3, 2]
    capacity = 6
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= capacity)
    model.set_objective(LinExpr.sum(v * x for v, x in zip(values, items)))
    return model, items


@pytest.mark.parametrize("backend", BACKENDS)
def test_knapsack_optimum(backend):
    model, items = knapsack_model()
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(11.0)
    chosen = [i for i, item in enumerate(items) if solution.is_one(item)]
    assert chosen == [1, 2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_model_detected(backend):
    model = Model()
    x = model.add_binary("x")
    model.add_constr(x + 0.0 >= 2.0)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.INFEASIBLE
    assert not solution.status.has_solution


@pytest.mark.parametrize("backend", BACKENDS)
def test_equality_constraints_respected(backend):
    model = Model()
    x = model.add_integer("x", upper=10)
    y = model.add_integer("y", upper=10)
    model.add_constr((x + y) == 7)
    model.add_constr(x - y <= 1)
    model.set_objective(x + 2 * y)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.value(x) + solution.value(y) == pytest.approx(7)
    # minimise x + 2y subject to x+y=7, x-y<=1  =>  x=4, y=3
    assert solution.value(x) == pytest.approx(4)
    assert solution.value(y) == pytest.approx(3)


@pytest.mark.parametrize("backend", BACKENDS)
def test_integer_values_are_exact_integers(backend):
    model = Model()
    x = model.add_integer("x", upper=5)
    model.add_constr(2 * x >= 3)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.value(x) == 2.0
    assert float(solution.value(x)).is_integer()


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_integer_continuous(backend):
    model = Model()
    x = model.add_integer("x", upper=10)
    y = model.add_continuous("y", upper=10)
    model.add_constr(x + y >= 3.5)
    model.set_objective(2 * x + y)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    # Best is x=0, y=3.5 with objective 3.5.
    assert solution.objective == pytest.approx(3.5)
    assert solution.value(y) == pytest.approx(3.5)


def test_backends_agree_on_assignment_problem():
    """3x3 assignment problem solved by both backends gives one optimum."""
    cost = [[4, 2, 8], [4, 3, 7], [3, 1, 6]]

    def build():
        model = Model("assignment")
        x = {(i, j): model.add_binary(f"x_{i}_{j}") for i in range(3) for j in range(3)}
        for i in range(3):
            model.add_constr(LinExpr.sum(x[(i, j)] for j in range(3)) == 1)
        for j in range(3):
            model.add_constr(LinExpr.sum(x[(i, j)] for i in range(3)) == 1)
        model.set_objective(
            LinExpr.sum(cost[i][j] * x[(i, j)] for i in range(3) for j in range(3))
        )
        return model

    obj_scipy = build().solve(backend="scipy").objective
    obj_bnb = build().solve(backend="bnb").objective
    assert obj_scipy == pytest.approx(obj_bnb)
    assert obj_scipy == pytest.approx(12.0)  # 2 + 7 + 3


def test_bnb_respects_node_limit():
    backend = BranchAndBoundBackend(node_limit=0)
    model, _items = knapsack_model()
    solution = model.solve(backend=backend)
    # With no nodes allowed the solver cannot even find an incumbent.
    assert solution.status is SolveStatus.TIME_LIMIT
    assert not solution.status.has_solution


def test_bnb_reports_nodes_explored():
    model, _items = knapsack_model()
    solution = model.solve(backend="bnb")
    assert solution.nodes >= 1


def test_get_backend_auto_and_errors():
    assert isinstance(get_backend("auto"), ScipyMilpBackend)
    assert isinstance(get_backend("bnb"), BranchAndBoundBackend)
    assert isinstance(get_backend("highs"), ScipyMilpBackend)
    with pytest.raises(ValueError):
        get_backend("glpk")


def test_solution_value_default_for_unknown_variable():
    model = Model()
    x = model.add_binary("x")
    model.set_objective(x + 0.0)
    solution = model.solve()
    other_model = Model()
    stranger = other_model.add_binary("stranger")
    assert solution.value(stranger, default=0.5) == 0.5


@pytest.mark.parametrize("backend", BACKENDS)
def test_unconstrained_minimisation_takes_lower_bounds(backend):
    model = Model()
    x = model.add_integer("x", lower=2, upper=9)
    model.set_objective(x + 0.0)
    solution = model.solve(backend=backend)
    assert solution.value(x) == pytest.approx(2)
