"""Tests of the heuristic baseline methods (ADVAN, RALLOC, BITS)."""

import pytest

from repro.baselines import (
    BaselineError,
    TestAssignmentPolicy,
    advan_register_binding,
    assign_sessions,
    greedy_test_assignment,
    kind_histogram,
    ralloc_register_binding,
    run_advan,
    run_bits,
    run_ralloc,
)
from repro.core import synthesize_bist, synthesize_reference
from repro.datapath import Datapath, TestRegisterKind
from repro.dfg import check_register_assignment, minimum_register_count, self_adjacency_candidates
from repro.hls import left_edge_binding

RUNNERS = [run_advan, run_ralloc, run_bits]


@pytest.mark.parametrize("runner", RUNNERS)
def test_baselines_produce_valid_designs(runner, fig1_graph):
    design = runner(fig1_graph)
    assert design.verify().ok
    assert design.k == len(fig1_graph.module_ids)
    assert design.area().total > 0
    assert design.optimal is False


@pytest.mark.parametrize("runner", RUNNERS)
def test_baselines_on_tseng(runner, tseng_graph):
    design = runner(tseng_graph)
    assert design.verify().ok
    assert design.circuit == "tseng"


@pytest.mark.parametrize("runner", RUNNERS)
def test_baseline_plan_covers_every_module_and_port(runner, tseng_graph):
    design = runner(tseng_graph)
    plan = design.plan
    assert sorted(plan.module_session) == tseng_graph.module_ids
    for module in tseng_graph.module_ids:
        assert module in plan.sr_of_module
        for port in tseng_graph.module_input_ports(module):
            assert (module, port) in plan.tpg_of_port


def test_advbist_never_worse_than_baselines(tseng_graph):
    """The headline Table 3 ordering: the optimal ILP beats every heuristic."""
    reference_area = synthesize_reference(tseng_graph).area().total
    advbist = synthesize_bist(tseng_graph, k=len(tseng_graph.module_ids), time_limit=120)
    optimal_overhead = advbist.overhead_vs(reference_area)
    for runner in RUNNERS:
        baseline = runner(tseng_graph)
        assert baseline.overhead_vs(reference_area) >= optimal_overhead - 1e-6


def test_advan_avoids_bilbo_and_cbilbo(tseng_graph):
    """ADVAN's defining trait in Table 3: B = C = 0 on every benchmark circuit.

    (The three-register Fig. 1 toy is excluded: its register file is too small
    for any method to keep the TPG and SR sets disjoint.)
    """
    histogram = kind_histogram(run_advan(tseng_graph))
    assert histogram["BILBO"] == 0
    assert histogram["CBILBO"] == 0


def test_advan_register_binding_min_registers(tseng_graph):
    assignment = advan_register_binding(tseng_graph)
    assert check_register_assignment(tseng_graph, assignment) == []
    assert len(set(assignment.values())) == minimum_register_count(tseng_graph)


def test_ralloc_binding_separates_self_adjacent_pairs(tseng_graph):
    assignment = ralloc_register_binding(tseng_graph)
    assert check_register_assignment(tseng_graph, assignment) == []
    for input_var, output_var in self_adjacency_candidates(tseng_graph):
        assert assignment[input_var] != assignment[output_var]


def test_ralloc_may_use_extra_registers(tseng_graph):
    assignment = ralloc_register_binding(tseng_graph)
    assert len(set(assignment.values())) >= minimum_register_count(tseng_graph)


def test_bits_shares_test_registers_more_than_advan(tseng_graph):
    """BITS maximises sharing, so it uses at most as many distinct test
    registers as ADVAN on the same circuit."""
    bits_design = run_bits(tseng_graph)
    advan_design = run_advan(tseng_graph)

    def distinct_test_registers(design):
        regs = set(design.plan.sr_of_module.values())
        regs.update(design.plan.tpg_of_port.values())
        return len(regs)

    assert distinct_test_registers(bits_design) <= distinct_test_registers(advan_design)


def test_explicit_k_smaller_than_module_count(tseng_graph):
    design = run_advan(tseng_graph, k=2)
    assert design.k == 2
    assert design.verify().ok
    assert set(design.plan.module_session.values()) <= {1, 2}


def test_assign_sessions_round_robin():
    sessions = assign_sessions([10, 11, 12, 13], 2)
    assert sessions == {10: 1, 11: 2, 12: 1, 13: 2}
    with pytest.raises(BaselineError):
        assign_sessions([1], 0)


def test_greedy_assignment_policy_effects(tseng_graph):
    """On a register file big enough to allow it, a policy that heavily
    penalises BILBO/CBILBO reconfiguration produces none, while a
    sharing-oriented policy concentrates the test roles on fewer registers."""
    datapath = Datapath.from_bindings(
        tseng_graph, advan_register_binding(tseng_graph),
        name="tseng_policy_probe",
    )
    sessions = assign_sessions(tseng_graph.module_ids, len(tseng_graph.module_ids))

    strict = TestAssignmentPolicy(cbilbo_penalty=1e6, bilbo_penalty=1e5)
    strict_plan = greedy_test_assignment(datapath, sessions, strict)
    strict_kinds = list(strict_plan.register_kinds(datapath).values())
    assert TestRegisterKind.CBILBO not in strict_kinds
    assert TestRegisterKind.BILBO not in strict_kinds

    sharing = TestAssignmentPolicy(reuse_bonus=50.0, bilbo_penalty=1.0, cbilbo_penalty=5.0)
    sharing_plan = greedy_test_assignment(datapath, sessions, sharing)

    def distinct_test_registers(plan):
        regs = set(plan.sr_of_module.values())
        regs.update(plan.tpg_of_port.values())
        return len(regs)

    assert distinct_test_registers(sharing_plan) <= distinct_test_registers(strict_plan)


def test_baseline_table_rows(tseng_graph):
    reference_area = synthesize_reference(tseng_graph).area().total
    design = run_ralloc(tseng_graph)
    row = design.table3_row(reference_area)
    assert row["Method"] == "RALLOC"
    assert set(row) == {"Method", "R", "T", "S", "B", "C", "M", "Area", "OH(%)"}
