"""The cross-request scheduler: coalescing, two-tier cache, batching."""

import threading

import pytest

from repro.circuits import fig1
from repro.core.engine import DesignCache, SweepEngine, TaskOutcome, TaskScheduler
from repro.ilp.backends import register_backend
from repro.sched.cache import MemoryTier, SingleFlight
from repro.sched.batching import batchable_chain

TIME_LIMIT = 60.0


# ----------------------------------------------------------------------
# memory tier + single flight primitives
# ----------------------------------------------------------------------
def test_memory_tier_is_lru_and_reports_info():
    tier = MemoryTier(capacity=2)
    tier.put("a", 1)
    tier.put("b", 2)
    assert tier.get("a") == 1          # refreshes a's recency
    tier.put("c", 3)                   # evicts b, the least recent
    assert tier.get("b") is None
    assert tier.get("a") == 1 and tier.get("c") == 3
    info = tier.info()
    assert info["entries"] == 2 and info["capacity"] == 2
    assert info["evictions"] == 1
    assert info["hits"] == 3 and info["misses"] == 1


def test_memory_tier_capacity_zero_disables_storage():
    tier = MemoryTier(capacity=0)
    tier.put("a", 1)
    assert tier.get("a") is None and len(tier) == 0


def test_single_flight_waiter_receives_leader_outcome():
    flights = SingleFlight()
    role, flight = flights.claim("k")
    assert role == "leader" and flight is None
    role, flight = flights.claim("k")
    assert role == "waiter" and flight is not None
    flights.fulfill("k", "result")
    assert SingleFlight.wait(flight) == "result"
    assert flights.waits == 1
    # the key is released: the next claim leads again
    assert flights.claim("k")[0] == "leader"


def test_single_flight_waiter_reraises_leader_error():
    flights = SingleFlight()
    flights.claim("k")
    _, flight = flights.claim("k")
    flights.fail("k", RuntimeError("leader died"))
    with pytest.raises(RuntimeError, match="leader died"):
        SingleFlight.wait(flight)


# ----------------------------------------------------------------------
# counting backend helper
# ----------------------------------------------------------------------
def _register_counting_backend(name="counting-test"):
    """A registry backend that counts solves and delegates to the default."""
    from repro.ilp.model import _resolve_backend

    @register_backend(name, supports_sparse=True,
                      description="counts backend calls (test only)")
    class CountingBackend:
        calls = 0
        lock = threading.Lock()

        def solve(self, form, time_limit=None, mip_gap=1e-6):
            with CountingBackend.lock:
                CountingBackend.calls += 1
            return _resolve_backend("auto").solve(form, time_limit=time_limit,
                                                  mip_gap=mip_gap)

    return CountingBackend


# ----------------------------------------------------------------------
# coalescing + dedup through the engine
# ----------------------------------------------------------------------
def test_stampede_executes_exactly_one_solve(tmp_path, fig1_graph,
                                             backend_registry_snapshot):
    """8 threads racing the same task: one compute, everyone served."""
    counting = _register_counting_backend()
    cache = DesignCache(tmp_path / "cache")
    scheduler = TaskScheduler()
    barrier = threading.Barrier(8)
    results: list[TaskOutcome] = [None] * 8
    errors: list[BaseException] = []

    def worker(i):
        try:
            engine = SweepEngine(backend="counting-test",
                                 time_limit=TIME_LIMIT, cache=cache,
                                 scheduler=scheduler)
            barrier.wait()
            outcomes, _ = engine.run([engine.task(fig1_graph, "advbist", k=1)])
            results[i] = outcomes[0]
        except BaseException as exc:  # pragma: no cover - diagnostics only
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert counting.calls == 1
    stats = scheduler.stats_snapshot()
    assert stats["executed"] == 1
    assert stats["coalesced"] + stats["cache_hits"] == 7
    objectives = {r.design.objective for r in results}
    assert len(objectives) == 1


def test_intra_run_dedup_without_cache(fig1_graph, backend_registry_snapshot):
    """Duplicate tasks inside one run collapse even with caching disabled."""
    counting = _register_counting_backend()
    engine = SweepEngine(backend="counting-test", time_limit=TIME_LIMIT,
                         cache=False)
    task = engine.task(fig1_graph, "advbist", k=1)
    outcomes, reports = engine.run([task, task, task])
    assert counting.calls == 1
    assert [o.coalesced for o in outcomes] == [False, True, True]
    assert [r.coalesced for r in reports] == [False, True, True]
    assert engine.scheduler.stats_snapshot()["deduped"] == 2


def test_sweep_many_dedups_duplicate_graphs(fig1_graph,
                                            backend_registry_snapshot):
    """sweep_many over the same circuit twice solves its grid once."""
    counting = _register_counting_backend()
    engine = SweepEngine(backend="counting-test", time_limit=TIME_LIMIT,
                         cache=False, warm_start=False)
    results = engine.sweep_many([fig1_graph, fig1_graph], max_k=2)
    assert counting.calls == 3  # reference + k=1 + k=2, each exactly once
    stats = engine.scheduler.stats_snapshot()
    assert stats["submitted"] == 6 and stats["deduped"] == 3
    assert results[fig1_graph.name].entries


def test_leader_failure_propagates_to_waiters(fig1_graph,
                                              backend_registry_snapshot):
    """A failing leader fails its waiters too — nobody deadlocks."""
    @register_backend("failing-test", supports_sparse=True,
                      description="always raises (test only)")
    class FailingBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("backend exploded")

    scheduler = TaskScheduler()
    barrier = threading.Barrier(2)
    failures: list[BaseException] = []

    def worker():
        engine = SweepEngine(backend="failing-test", time_limit=TIME_LIMIT,
                             cache=False, scheduler=scheduler)
        barrier.wait()
        try:
            engine.run([engine.task(fig1_graph, "advbist", k=1)])
        except RuntimeError as exc:
            failures.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIME_LIMIT)
    assert len(failures) == 2


# ----------------------------------------------------------------------
# two-tier cache semantics
# ----------------------------------------------------------------------
def test_cache_hits_are_copies_of_the_stored_outcome(tmp_path, fig1_graph):
    cache = DesignCache(tmp_path / "cache")
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    engine.run([engine.task(fig1_graph, "advbist", k=1)])
    key = cache.key_for(engine.task(fig1_graph, "advbist", k=1))
    first = cache.get(key)
    second = cache.get(key)
    assert first is not second           # served copies, never the stored object
    assert first.cached and second.cached
    # memory tier was populated by the put and hit on both reads
    assert cache.memory.info()["hits"] >= 1


def test_memory_tier_serves_after_disk_eviction(tmp_path, fig1_graph):
    """An in-process reader survives losing the disk entry under it."""
    cache = DesignCache(tmp_path / "cache")
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    task = engine.task(fig1_graph, "advbist", k=1)
    engine.run([task])
    key = cache.key_for(task)
    cache._path(key).unlink()            # disk tier gone, memory tier intact
    assert cache.get(key) is not None


def test_cache_clear_drops_both_tiers(tmp_path, fig1_graph):
    cache = DesignCache(tmp_path / "cache")
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    engine.run([engine.task(fig1_graph, "advbist", k=1)])
    assert cache.clear() == 1
    assert len(cache.memory) == 0
    assert cache.info()["entries"] == 0


# ----------------------------------------------------------------------
# compound batched solving
# ----------------------------------------------------------------------
def test_batched_run_uses_one_backend_call(fig1_graph,
                                           backend_registry_snapshot):
    counting = _register_counting_backend()
    engine = SweepEngine(backend="counting-test", time_limit=TIME_LIMIT,
                         cache=False, warm_start=False, batch=True)
    tasks = [engine.task(fig1_graph, "reference"),
             engine.task(fig1_graph, "advbist", k=1),
             engine.task(fig1_graph, "advbist", k=2)]
    outcomes, reports = engine.run(tasks)
    assert counting.calls == 1           # one compound call for all three
    assert all(o.stats.batch["size"] == 3 for o in outcomes)
    assert all(r.as_row()["batch_size"] == 3 for r in reports)


def test_batchable_chain_excludes_hinted_and_multi_task_chains(fig1_graph):
    from repro.core.engine import TaskChain

    engine = SweepEngine(time_limit=TIME_LIMIT, cache=False)
    ilp = engine.task(fig1_graph, "advbist", k=1)
    baseline = engine.task(fig1_graph, "baseline", k=1, method="ADVAN")
    assert batchable_chain(TaskChain(tasks=(ilp,), hints=(None,)))
    assert not batchable_chain(TaskChain(tasks=(ilp,), hints=(100.0,)))
    assert not batchable_chain(TaskChain(tasks=(ilp, ilp), hints=(None, None)))
    assert not batchable_chain(TaskChain(tasks=(baseline,), hints=(None,)))


@pytest.mark.parametrize("seed", [0, 7])
def test_batched_matches_serial_objectives_on_random_dfgs(seed, fig1_graph):
    """Property: compound batched solves reproduce serial objectives.

    Random graphs contribute reference models (ADVBIST can be genuinely
    infeasible on generated circuits — the fuzzer treats that as a valid
    outcome); fig1 contributes ADVBIST blocks so the compound model mixes
    both formulation kinds.
    """
    from repro.dfg.generate import generate_corpus

    graphs = list(generate_corpus(3, seed=seed, num_operations=5))
    serial = SweepEngine(time_limit=TIME_LIMIT, cache=False,
                         warm_start=False, batch=False)
    batched = SweepEngine(time_limit=TIME_LIMIT, cache=False,
                          warm_start=False, batch=True)
    tasks_of = lambda engine: (
        [engine.task(graph, "reference") for graph in graphs]
        + [engine.task(fig1_graph, "advbist", k=k) for k in (1, 2)]
    )
    serial_outcomes, _ = serial.run(tasks_of(serial))
    batched_outcomes, _ = batched.run(tasks_of(batched))
    for s, b in zip(serial_outcomes, batched_outcomes):
        assert s.design.optimal and b.design.optimal
        assert s.design.objective == pytest.approx(b.design.objective)
    # the batched engine really took the compound path
    assert any(o.stats is not None and o.stats.batch for o in batched_outcomes)
