"""Unit tests for the Model container and its matrix form."""

import numpy as np
import pytest

from repro.ilp import Model, ModelError, Sense, SolveStatus, VarType


def test_duplicate_variable_names_rejected():
    model = Model()
    model.add_binary("x")
    with pytest.raises(ModelError):
        model.add_binary("x")


def test_invalid_bounds_rejected():
    model = Model()
    with pytest.raises(ModelError):
        model.add_integer("bad", lower=5, upper=2)


def test_invalid_sense_rejected():
    with pytest.raises(ModelError):
        Model(sense="maximise-ish")


def test_add_constr_requires_constraint_object():
    model = Model()
    x = model.add_binary("x")
    with pytest.raises(ModelError):
        model.add_constr(x)  # a bare variable is not a constraint


def test_constraint_auto_naming():
    model = Model()
    x = model.add_binary("x")
    first = model.add_constr(x + 0.0 <= 1.0)
    second = model.add_constr(x + 0.0 >= 0.0, "explicit")
    assert first.name == "c0"
    assert second.name == "explicit"


def test_stats_counts():
    model = Model("counts")
    x = model.add_binary("x")
    y = model.add_integer("y", upper=4)
    model.add_continuous("z", upper=2.5)
    model.add_constr(x + y <= 3)
    stats = model.stats()
    assert stats == {"name": "counts", "variables": 3, "binaries": 1, "constraints": 1}


def test_matrix_form_shapes_and_signs():
    model = Model()
    x = model.add_binary("x")
    y = model.add_integer("y", upper=5)
    model.add_constr(x + 2 * y <= 4)       # ub row
    model.add_constr(x - y >= -1)          # converted to -x + y <= 1
    model.add_constr((x + y) == 2)         # eq row
    model.set_objective(3 * x + y)
    form = model.to_matrix_form()
    assert form.is_sparse
    assert form.A_ub.shape == (2, 2)
    assert form.A_eq.shape == (1, 2)
    A_ub = form.A_ub.toarray()
    A_eq = form.A_eq.toarray()
    np.testing.assert_allclose(A_ub[0], [1.0, 2.0])
    np.testing.assert_allclose(form.b_ub[0], 4.0)
    np.testing.assert_allclose(A_ub[1], [-1.0, 1.0])
    np.testing.assert_allclose(form.b_ub[1], 1.0)
    np.testing.assert_allclose(A_eq[0], [1.0, 1.0])
    np.testing.assert_allclose(form.b_eq[0], 2.0)
    np.testing.assert_allclose(form.c, [3.0, 1.0])
    assert form.integrality.tolist() == [1, 1]
    assert form.nnz == 6


def test_dense_lowering_matches_sparse():
    model = Model()
    x = model.add_binary("x")
    y = model.add_integer("y", upper=5)
    model.add_constr(x + 2 * y <= 4)
    model.add_constr(x - y >= -1)
    model.add_constr((x + y) == 2)
    model.set_objective(3 * x + y)
    sparse_form = model.to_matrix_form()
    dense_form = model.to_matrix_form(sparse_form=False)
    assert not dense_form.is_sparse
    assert isinstance(dense_form.A_ub, np.ndarray)
    np.testing.assert_allclose(dense_form.A_ub, sparse_form.A_ub.toarray())
    np.testing.assert_allclose(dense_form.A_eq, sparse_form.A_eq.toarray())
    np.testing.assert_allclose(dense_form.b_ub, sparse_form.b_ub)
    np.testing.assert_allclose(dense_form.b_eq, sparse_form.b_eq)
    assert dense_form.nnz == sparse_form.nnz
    # to_dense on an already dense form is the identity
    assert dense_form.to_dense() is dense_form


def test_empty_constraint_blocks_have_zero_rows():
    model = Model()
    x = model.add_binary("x")
    model.set_objective(x + 0.0)
    form = model.to_matrix_form()
    assert form.A_ub.shape == (0, 1)
    assert form.A_eq.shape == (0, 1)
    assert form.nnz == 0


def test_repeated_variable_terms_accumulate_in_lowering():
    model = Model()
    x = model.add_integer("x", upper=10)
    expr = x + x + x  # 3x via repeated terms
    model.add_constr(expr <= 6)
    model.set_objective(-1.0 * x)
    form = model.to_matrix_form()
    np.testing.assert_allclose(form.A_ub.toarray(), [[3.0]])
    solution = model.solve()
    assert solution.value(x) == pytest.approx(2.0)


def test_solve_attaches_populated_stats():
    model = Model()
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constr(x + y <= 1)
    model.set_objective(-1.0 * x - 2.0 * y)
    solution = model.solve()
    stats = solution.stats
    assert stats is not None
    assert stats.backend == "scipy"
    assert stats.wall_seconds > 0.0
    assert stats.nnz == 2
    assert stats.num_variables == 2
    assert stats.num_constraints == 1
    row = stats.as_row()
    assert row["nnz"] == 2 and row["backend"] == "scipy"


def test_matrix_form_maximisation_negates_objective():
    model = Model(sense="max")
    x = model.add_binary("x")
    model.set_objective(5 * x)
    form = model.to_matrix_form()
    np.testing.assert_allclose(form.c, [-5.0])


def test_objective_constant_carried_as_offset():
    model = Model()
    x = model.add_binary("x")
    model.set_objective(2 * x + 10)
    form = model.to_matrix_form()
    assert form.offset == pytest.approx(10.0)


def test_maximisation_solution_objective_sign():
    model = Model(sense="max")
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constr(x + y <= 1)
    model.set_objective(3 * x + 2 * y)
    solution = model.solve()
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(3.0)
    assert solution.is_one(x) and not solution.is_one(y)


def test_or_indicator_forces_both_directions():
    model = Model()
    a = model.add_binary("a")
    b = model.add_binary("b")
    flag = model.add_binary("flag")
    model.add_or_indicator(flag, [a, b])
    model.add_constr(a + 0.0 == 1.0)
    # Minimising the flag cannot push it below the OR of its operands.
    model.set_objective(flag + 0.0)
    solution = model.solve()
    assert solution.is_one(flag)

    model2 = Model()
    a2 = model2.add_binary("a")
    flag2 = model2.add_binary("flag")
    model2.add_or_indicator(flag2, [a2])
    model2.add_constr(a2 + 0.0 == 0.0)
    # Maximising the flag cannot push it above the OR of its operands.
    model2.set_objective(-1.0 * flag2)
    solution2 = model2.solve()
    assert not solution2.is_one(flag2)


def test_or_indicator_with_no_operands_is_zero():
    model = Model()
    flag = model.add_binary("flag")
    model.add_or_indicator(flag, [])
    model.set_objective(-1.0 * flag)
    solution = model.solve()
    assert not solution.is_one(flag)


def test_and_indicator_truth_table():
    for a_val, b_val in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        model = Model()
        a = model.add_binary("a")
        b = model.add_binary("b")
        flag = model.add_binary("flag")
        model.add_and_indicator(flag, a, b)
        model.add_constr(a + 0.0 == float(a_val))
        model.add_constr(b + 0.0 == float(b_val))
        model.set_objective(flag + 0.0 if a_val and b_val else -1.0 * flag)
        solution = model.solve()
        assert solution.is_one(flag) == bool(a_val and b_val)


def test_check_solution_flags_violations():
    model = Model()
    x = model.add_binary("x")
    y = model.add_binary("y")
    constraint = model.add_constr(x + y <= 1, "cap")
    model.set_objective(x + y)
    solution = model.solve()
    assert model.check_solution(solution) == []
    # Forge an infeasible assignment and confirm the check notices.
    forged = dict(solution.values)
    forged[x] = 1.0
    forged[y] = 1.0
    solution.values = forged
    assert constraint in model.check_solution(solution)


def test_unknown_backend_rejected():
    model = Model()
    model.add_binary("x")
    with pytest.raises(ValueError):
        model.solve(backend="definitely-not-a-solver")


def test_integer_variable_defaults_to_unbounded_above():
    model = Model()
    y = model.add_integer("y")
    assert y.upper == float("inf")
    assert y.vartype is VarType.INTEGER


def test_sense_enum_roundtrip():
    assert Sense.LE.value == "<="
    assert Sense.GE.value == ">="
    assert Sense.EQ.value == "=="
