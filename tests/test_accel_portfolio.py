"""Tests of the racing portfolio backend and warm-start plumbing."""

from __future__ import annotations

import time

import pytest

from repro.accel import AdaptivePortfolioBackend, PortfolioBackend, WinHistory
from repro.ilp import LinExpr, Model, SolveStatus
from repro.ilp.backends import (
    BackendRegistryError,
    BranchAndBoundBackend,
    backend_info,
    get_backend,
    register_backend,
    resolve_backend_name,
)


def knapsack_model() -> Model:
    model = Model("knapsack")
    weights, values = [3, 4, 5, 6], [4, 5, 6, 7]
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 10.0)
    model.set_objective(LinExpr.sum(-v * x for v, x in zip(values, items)))
    return model


def infeasible_model() -> Model:
    model = Model("infeasible")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(a + b >= 3.0, "impossible")
    model.set_objective(a + b)
    return model


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def test_portfolio_is_registered_with_capabilities():
    info = backend_info("portfolio")
    assert info.cls is PortfolioBackend
    assert info.supports_sparse
    assert info.supports_warm_start
    assert resolve_backend_name("race") == "portfolio"
    assert isinstance(get_backend("portfolio"), PortfolioBackend)


def test_portfolio_validates_its_racers():
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy",))
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy", "portfolio"))
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy", "highs"))  # same backend twice


# ----------------------------------------------------------------------
# racing behaviour
# ----------------------------------------------------------------------
def test_portfolio_matches_single_backend_objective():
    scipy_solution = knapsack_model().solve(backend="scipy")
    race_solution = knapsack_model().solve(backend="portfolio")
    assert race_solution.status is SolveStatus.OPTIMAL
    assert race_solution.objective == pytest.approx(scipy_solution.objective)
    assert race_solution.stats.backend.startswith("portfolio[")
    assert "portfolio winner:" in race_solution.message


def test_portfolio_settles_infeasible_models():
    solution = infeasible_model().solve(backend="portfolio")
    assert solution.status is SolveStatus.INFEASIBLE


def test_portfolio_survives_a_failing_racer(backend_registry_snapshot):
    @register_backend("crash-test", supports_sparse=True,
                      description="always raises")
    class CrashingBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom")

    solution = knapsack_model().solve(
        backend=PortfolioBackend(racers=("crash-test", "scipy")))
    assert solution.status is SolveStatus.OPTIMAL
    assert "failed: crash-test (RuntimeError)" in solution.message


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_portfolio_survives_a_racer_killed_by_non_exception(backend_registry_snapshot):
    # A racer dying on a BaseException (SystemExit here) never reaches the
    # normal result path; the finally-guarded put must still report an
    # outcome so the collection loop cannot block forever on results.get().
    @register_backend("sysexit-test", supports_sparse=True,
                      description="dies on SystemExit")
    class SystemExitBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise SystemExit(1)

    solution = knapsack_model().solve(
        backend=PortfolioBackend(racers=("sysexit-test", "scipy")))
    assert solution.status is SolveStatus.OPTIMAL
    assert "portfolio winner: scipy" in solution.message
    # The dead racer almost always reports before scipy finishes; when it
    # does, the fallback outcome must surface as a RuntimeError failure.
    if "failed:" in solution.message:
        assert "sysexit-test (RuntimeError)" in solution.message


def test_portfolio_raises_when_every_racer_fails(backend_registry_snapshot):
    @register_backend("crash-a", description="always raises")
    class CrashA:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom a")

    @register_backend("crash-b", description="always raises")
    class CrashB:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom b")

    backend = PortfolioBackend(racers=("crash-a", "crash-b"))
    with pytest.raises(RuntimeError):
        knapsack_model().solve(backend=backend)


def test_portfolio_forwards_incumbent_hints():
    optimum = knapsack_model().solve(backend="scipy").objective
    hinted = knapsack_model().solve(backend="portfolio", incumbent_hint=optimum)
    assert hinted.status is SolveStatus.OPTIMAL
    assert hinted.objective == pytest.approx(optimum)


def test_portfolio_merges_nodes_across_finished_racers():
    solution = knapsack_model().solve(backend="portfolio")
    # Whichever racer won, nodes is the sum over every finished racer.
    assert solution.nodes == solution.stats.nodes >= 0


# ----------------------------------------------------------------------
# the adaptive portfolio
# ----------------------------------------------------------------------
def _primed_history(bucket: str, backend: str, wins: int = 3,
                    wall: float = 1.0) -> WinHistory:
    history = WinHistory()
    for _ in range(wins):
        history.record(bucket, backend, wall)
    return history


def _bucket(model: Model) -> str:
    from repro.accel import bucket_of

    return bucket_of(model.to_matrix_form())


def test_adaptive_is_registered_with_capabilities():
    info = backend_info("adaptive")
    assert info.cls is AdaptivePortfolioBackend
    assert info.supports_sparse
    assert info.supports_warm_start
    assert resolve_backend_name("portfolio-adaptive") == "adaptive"


def test_adaptive_empty_history_races_every_arm():
    backend = AdaptivePortfolioBackend(arms=("scipy", "bnb"),
                                       history=WinHistory())
    reference = knapsack_model().solve(backend="scipy")
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(reference.objective)
    portfolio = solution.stats.portfolio
    assert portfolio["mode"] == "race"
    assert portfolio["predicted"] is None
    assert sorted(portfolio["started"]) == ["bnb", "scipy"]


def test_adaptive_thin_history_still_races():
    # One recorded win is below min_samples: no prediction, full race.
    history = _primed_history(_bucket(knapsack_model()), "scipy", wins=1)
    backend = AdaptivePortfolioBackend(arms=("scipy", "bnb"), history=history)
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.stats.portfolio["mode"] == "race"


def test_adaptive_confident_history_runs_the_leader_alone():
    history = _primed_history(_bucket(knapsack_model()), "scipy")
    backend = AdaptivePortfolioBackend(arms=("scipy", "bnb"), history=history)
    reference = knapsack_model().solve(backend="scipy")
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(reference.objective)
    portfolio = solution.stats.portfolio
    assert portfolio["mode"] == "solo"
    assert portfolio["predicted"] == "scipy"
    assert portfolio["winner"] == "scipy"
    assert portfolio["started"] == ["scipy"]
    assert portfolio["samples"] == 3
    # The win flowed back into the history: next prediction is stronger.
    assert history.predict(portfolio["bucket"]).samples == 4


def test_adaptive_prefers_the_circuit_tagged_bucket():
    # Two circuits can share a size class yet want different arms: the
    # circuit-tagged history entry must shadow the generic size bucket.
    from repro.accel.history import bucket_keys

    model = knapsack_model()
    model.tags = {"k": 1, "circuit": "widget"}
    tagged, generic = bucket_keys(model.to_matrix_form())
    assert tagged == f"{generic}@widget"
    history = _primed_history(generic, "bnb")
    for _ in range(3):
        history.record(tagged, "scipy", 1.0)
    backend = AdaptivePortfolioBackend(arms=("scipy", "bnb"), history=history)
    solution = model.solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    portfolio = solution.stats.portfolio
    assert portfolio["mode"] == "solo"
    assert portfolio["predicted"] == "scipy"
    assert portfolio["bucket"] == tagged
    # The win is recorded under both keys, so each tier keeps learning.
    assert history.predict(tagged).samples == 4
    assert history.predict(generic).samples == 4


def test_adaptive_untagged_model_uses_the_generic_bucket_only():
    from repro.accel.history import bucket_keys

    keys = bucket_keys(knapsack_model().to_matrix_form())
    assert len(keys) == 1 and "@" not in keys[0]


def test_adaptive_poisoned_history_falls_back_to_racing():
    # The predicted arm does not exist: the solve must race, not dead-end.
    history = _primed_history(_bucket(knapsack_model()), "no-such-backend")
    backend = AdaptivePortfolioBackend(arms=("scipy", "bnb"), history=history)
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    portfolio = solution.stats.portfolio
    assert portfolio["mode"] == "race"
    assert portfolio["predicted"] is None


def test_adaptive_crashing_leader_escalates_to_the_other_arms(
        backend_registry_snapshot):
    @register_backend("adaptive-crash", supports_sparse=True,
                      description="always raises")
    class CrashingBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom")

    history = _primed_history(_bucket(knapsack_model()), "adaptive-crash")
    backend = AdaptivePortfolioBackend(arms=("adaptive-crash", "scipy"),
                                       history=history)
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    portfolio = solution.stats.portfolio
    assert portfolio["predicted"] == "adaptive-crash"
    assert portfolio["winner"] == "scipy"
    assert portfolio["mode"] == "race"  # escalated after the leader died
    assert "scipy" in portfolio["started"]


def test_adaptive_overrunning_leader_gets_a_challenger(
        backend_registry_snapshot):
    @register_backend("adaptive-slow", supports_sparse=True,
                      description="sleeps before solving")
    class SlowBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            time.sleep(1.0)
            from repro.ilp.backends.scipy_milp import ScipyMilpBackend

            return ScipyMilpBackend().solve(form, time_limit, mip_gap)

    # History promises millisecond solves, so the sleeping leader overruns
    # its challenger delay and the runner-up is released mid-flight.
    history = _primed_history(_bucket(knapsack_model()), "adaptive-slow",
                              wall=0.001)
    backend = AdaptivePortfolioBackend(arms=("adaptive-slow", "scipy"),
                                       history=history)
    solution = knapsack_model().solve(backend=backend)
    assert solution.status is SolveStatus.OPTIMAL
    portfolio = solution.stats.portfolio
    assert portfolio["mode"] == "challenger"
    assert portfolio["winner"] == "scipy"
    assert portfolio["started"] == ["adaptive-slow", "scipy"]


def test_adaptive_settles_infeasible_models():
    solution = infeasible_model().solve(backend="adaptive")
    assert solution.status is SolveStatus.INFEASIBLE


def test_adaptive_forwards_incumbent_hints():
    optimum = knapsack_model().solve(backend="scipy").objective
    hinted = knapsack_model().solve(
        backend=AdaptivePortfolioBackend(history=WinHistory()),
        incumbent_hint=optimum)
    assert hinted.status is SolveStatus.OPTIMAL
    assert hinted.objective == pytest.approx(optimum)


def test_adaptive_cannot_be_raced_inside_a_portfolio():
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy", "adaptive"))


def test_win_history_predict_and_ingest_round_trip():
    history = WinHistory()
    assert history.predict("r4c4k1") is None
    history.record("r4c4k1", "scipy", 0.5)
    assert history.predict("r4c4k1") is None  # below min_samples
    history.record("r4c4k1", "scipy", 0.7)
    history.record("r4c4k1", "bnb", 0.1)
    prediction = history.predict("r4c4k1")
    assert prediction.leader == "scipy"
    assert prediction.challenger == "bnb"
    assert prediction.expected_wall == pytest.approx(0.6)
    clone = WinHistory()
    assert clone.ingest(history.as_dict()) == 3
    assert clone.predict("r4c4k1") == prediction


def test_win_history_ignores_malformed_payloads():
    history = WinHistory()
    assert history.ingest({"buckets": "nope"}) == 0
    assert history.ingest({"buckets": {"b": {"scipy": {"wins": "x"}}}}) == 0
    assert history.ingest({"buckets": {"b": {"scipy": {"wins": -2}}}}) == 0
    assert history.ingest({"buckets": {"b": "nope"}}) == 0
    assert history.predict("b") is None


def test_committed_priors_file_is_loadable():
    history = WinHistory()
    assert history.load_priors() > 0, "committed priors.json should not be empty"
    assert history.as_dict()["buckets"]


def test_missing_priors_file_is_a_noop(tmp_path):
    history = WinHistory()
    assert history.load_priors(tmp_path / "absent.json") == 0
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json", encoding="utf-8")
    assert history.load_priors(corrupt) == 0


# ----------------------------------------------------------------------
# cooperative cancellation
# ----------------------------------------------------------------------
def test_bnb_stop_check_cancels_the_search():
    backend = BranchAndBoundBackend(stop_check=lambda: True)
    solution = backend.solve(knapsack_model().to_matrix_form())
    assert solution.status is SolveStatus.TIME_LIMIT
    assert solution.nodes == 0


def test_bnb_stop_check_after_some_nodes_keeps_incumbent():
    calls = {"n": 0}

    def stop_after(limit=30):
        calls["n"] += 1
        return calls["n"] > limit

    backend = BranchAndBoundBackend(stop_check=stop_after)
    solution = backend.solve(knapsack_model().to_matrix_form())
    # Either it finished before the stop fired (optimal) or it stopped;
    # both are valid races — what matters is it returned promptly.
    assert solution.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                               SolveStatus.TIME_LIMIT)
