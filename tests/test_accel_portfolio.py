"""Tests of the racing portfolio backend and warm-start plumbing."""

from __future__ import annotations

import pytest

from repro.accel import PortfolioBackend
from repro.ilp import LinExpr, Model, SolveStatus
from repro.ilp.backends import (
    BackendRegistryError,
    BranchAndBoundBackend,
    backend_info,
    get_backend,
    register_backend,
    resolve_backend_name,
)


def knapsack_model() -> Model:
    model = Model("knapsack")
    weights, values = [3, 4, 5, 6], [4, 5, 6, 7]
    items = [model.add_binary(f"item{i}") for i in range(4)]
    model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 10.0)
    model.set_objective(LinExpr.sum(-v * x for v, x in zip(values, items)))
    return model


def infeasible_model() -> Model:
    model = Model("infeasible")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(a + b >= 3.0, "impossible")
    model.set_objective(a + b)
    return model


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def test_portfolio_is_registered_with_capabilities():
    info = backend_info("portfolio")
    assert info.cls is PortfolioBackend
    assert info.supports_sparse
    assert info.supports_warm_start
    assert resolve_backend_name("race") == "portfolio"
    assert isinstance(get_backend("portfolio"), PortfolioBackend)


def test_portfolio_validates_its_racers():
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy",))
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy", "portfolio"))
    with pytest.raises(BackendRegistryError):
        PortfolioBackend(racers=("scipy", "highs"))  # same backend twice


# ----------------------------------------------------------------------
# racing behaviour
# ----------------------------------------------------------------------
def test_portfolio_matches_single_backend_objective():
    scipy_solution = knapsack_model().solve(backend="scipy")
    race_solution = knapsack_model().solve(backend="portfolio")
    assert race_solution.status is SolveStatus.OPTIMAL
    assert race_solution.objective == pytest.approx(scipy_solution.objective)
    assert race_solution.stats.backend.startswith("portfolio[")
    assert "portfolio winner:" in race_solution.message


def test_portfolio_settles_infeasible_models():
    solution = infeasible_model().solve(backend="portfolio")
    assert solution.status is SolveStatus.INFEASIBLE


def test_portfolio_survives_a_failing_racer(backend_registry_snapshot):
    @register_backend("crash-test", supports_sparse=True,
                      description="always raises")
    class CrashingBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom")

    solution = knapsack_model().solve(
        backend=PortfolioBackend(racers=("crash-test", "scipy")))
    assert solution.status is SolveStatus.OPTIMAL
    assert "failed: crash-test (RuntimeError)" in solution.message


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_portfolio_survives_a_racer_killed_by_non_exception(backend_registry_snapshot):
    # A racer dying on a BaseException (SystemExit here) never reaches the
    # normal result path; the finally-guarded put must still report an
    # outcome so the collection loop cannot block forever on results.get().
    @register_backend("sysexit-test", supports_sparse=True,
                      description="dies on SystemExit")
    class SystemExitBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise SystemExit(1)

    solution = knapsack_model().solve(
        backend=PortfolioBackend(racers=("sysexit-test", "scipy")))
    assert solution.status is SolveStatus.OPTIMAL
    assert "portfolio winner: scipy" in solution.message
    # The dead racer almost always reports before scipy finishes; when it
    # does, the fallback outcome must surface as a RuntimeError failure.
    if "failed:" in solution.message:
        assert "sysexit-test (RuntimeError)" in solution.message


def test_portfolio_raises_when_every_racer_fails(backend_registry_snapshot):
    @register_backend("crash-a", description="always raises")
    class CrashA:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom a")

    @register_backend("crash-b", description="always raises")
    class CrashB:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise RuntimeError("boom b")

    backend = PortfolioBackend(racers=("crash-a", "crash-b"))
    with pytest.raises(RuntimeError):
        knapsack_model().solve(backend=backend)


def test_portfolio_forwards_incumbent_hints():
    optimum = knapsack_model().solve(backend="scipy").objective
    hinted = knapsack_model().solve(backend="portfolio", incumbent_hint=optimum)
    assert hinted.status is SolveStatus.OPTIMAL
    assert hinted.objective == pytest.approx(optimum)


def test_portfolio_merges_nodes_across_finished_racers():
    solution = knapsack_model().solve(backend="portfolio")
    # Whichever racer won, nodes is the sum over every finished racer.
    assert solution.nodes == solution.stats.nodes >= 0


# ----------------------------------------------------------------------
# cooperative cancellation
# ----------------------------------------------------------------------
def test_bnb_stop_check_cancels_the_search():
    backend = BranchAndBoundBackend(stop_check=lambda: True)
    solution = backend.solve(knapsack_model().to_matrix_form())
    assert solution.status is SolveStatus.TIME_LIMIT
    assert solution.nodes == 0


def test_bnb_stop_check_after_some_nodes_keeps_incumbent():
    calls = {"n": 0}

    def stop_after(limit=30):
        calls["n"] += 1
        return calls["n"] > limit

    backend = BranchAndBoundBackend(stop_check=stop_after)
    solution = backend.solve(knapsack_model().to_matrix_form())
    # Either it finished before the stop fired (optimal) or it stopped;
    # both are valid races — what matters is it returned promptly.
    assert solution.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                               SolveStatus.TIME_LIMIT)
