"""One wire protocol, two transports: the same request lines must come
back with the same response documents whether they travel over the
stdin/stdout pipe daemon or the asyncio TCP daemon.  Every test here is
parametrized over both transports, plus direct unit tests of the shared
protocol engine (:mod:`repro.net.protocol`)."""

import asyncio
import io
import json

import pytest

from repro.api import Session, serve
from repro.net import MAX_LINE_BYTES, ProtocolError, ServeServer
from repro.net.protocol import control_doc, decode_request, error_doc, handle_control

TRANSPORTS = ("pipe", "tcp")


def run_wire(transport, requests, tmp_path, progress=True, step=False):
    """Feed request lines through one transport; return the response docs.

    For TCP a trailing shutdown request drains the daemon so every job
    response is flushed before EOF; its ack and the terminal broadcast
    are filtered out, so both transports return comparable documents.
    ``step=True`` awaits each request's terminal document before sending
    the next — needed on TCP when a later request (e.g. ``stats``) must
    observe an earlier job's completion, because jobs run in the
    executor while control ops are answered inline.
    """
    cache_dir = str(tmp_path / "wire-cache")
    if transport == "pipe":
        # The single-threaded pipe loop is strictly ordered, so stepping
        # is implicit.
        stdin = io.StringIO("".join(line + "\n" for line in requests))
        stdout = io.StringIO()
        with Session(time_limit=60.0, cache_dir=cache_dir) as session:
            serve(session, stdin=stdin, stdout=stdout, progress=progress)
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    async def send_stepped(requests, reader, writer, docs):
        for sequence, line in enumerate(requests, start=1):
            writer.write((line + "\n").encode("utf-8"))
            await writer.drain()
            request_id = json.loads(line).get("id", sequence)
            while True:
                doc = json.loads(await reader.readline())
                docs.append(doc)
                if doc.get("id") == request_id and \
                        doc["type"] in ("result", "error", "control"):
                    break

    async def over_tcp(session):
        server = ServeServer(session, port=0, progress=progress,
                             drain_seconds=60.0)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=1 << 22)
        docs = []
        if step:
            await send_stepped(requests, reader, writer, docs)
            payload = '{"op": "shutdown", "id": "__drain"}\n'
        else:
            payload = "".join(line + "\n" for line in requests)
            payload += '{"op": "shutdown", "id": "__drain"}\n'
        writer.write(payload.encode("utf-8"))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                break
            docs.append(json.loads(line))
        writer.close()
        await server.serve_until_shutdown()
        return docs

    with Session(time_limit=60.0, cache_dir=cache_dir) as session:
        docs = asyncio.run(over_tcp(session))
    return [doc for doc in docs
            if doc.get("id") != "__drain"
            and doc.get("event") != "server_shutdown"]


def by_id(responses, request_id):
    return [doc for doc in responses if doc.get("id") == request_id]


# ----------------------------------------------------------------------
# the same lines through both transports
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_malformed_json_is_an_error_line_and_serving_continues(
        transport, tmp_path):
    responses = run_wire(transport, [
        "this is not json",
        '{"op": "ping", "id": "after"}',
    ], tmp_path)
    [bad] = by_id(responses, 1)  # sequence number of the garbage line
    assert bad["type"] == "error"
    assert bad["error"]["type"] == "ProtocolError"
    [pong] = by_id(responses, "after")
    assert (pong["type"], pong["op"], pong["ok"]) == ("control", "ping", True)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_unknown_op_names_the_valid_ones(transport, tmp_path):
    responses = run_wire(transport, ['{"op": "dance", "id": "d"}'], tmp_path)
    [doc] = by_id(responses, "d")
    assert doc["type"] == "error"
    assert "dance" in doc["error"]["message"]
    assert "ping" in doc["error"]["message"]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_oversized_line_is_rejected_without_killing_the_connection(
        transport, tmp_path):
    huge = '{"job": "sweep", "padding": "' + "x" * MAX_LINE_BYTES + '"}'
    responses = run_wire(transport, [
        huge,
        '{"op": "ping", "id": "still-here"}',
    ], tmp_path)
    [bad] = by_id(responses, 1)
    assert bad["type"] == "error"
    assert bad["error"]["type"] == "ProtocolError"
    assert "limit" in bad["error"]["message"]
    [pong] = by_id(responses, "still-here")
    assert pong["ok"] is True


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_unknown_job_kind_is_a_job_spec_error(transport, tmp_path):
    responses = run_wire(transport, ['{"job": "teleport", "id": "t"}'],
                         tmp_path)
    [doc] = by_id(responses, "t")
    assert doc["type"] == "error"
    assert doc["error"]["type"] in ("JobSpecError", "QuotaExceeded")
    assert "teleport" in doc["error"]["message"]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_job_runs_and_echoes_the_client_id(transport, tmp_path):
    responses = run_wire(transport, [
        '{"job": "synthesize", "circuit": "fig1", "k": 1, "id": "job-1"}',
    ], tmp_path, progress=False)
    [doc] = by_id(responses, "job-1")
    assert doc["type"] == "result"
    assert doc["envelope"]["status"] == "ok"


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_stats_op_reports_per_kind_job_counters(transport, tmp_path):
    responses = run_wire(transport, [
        '{"job": "synthesize", "circuit": "fig1", "k": 1, "id": "warm"}',
        '{"op": "stats", "id": "s"}',
    ], tmp_path, progress=False, step=True)
    [doc] = by_id(responses, "s")
    stats = doc["stats"]
    assert stats["jobs"]["synthesize"]["ok"] == 1
    assert stats["total_jobs"] == 1
    assert sorted(stats["scheduler"]) == [
        "cache_hits", "coalesced", "deduped", "executed", "submitted"]
    assert stats["cache"]["enabled"] is True
    if transport == "tcp":  # the TCP transport merges its own counters
        assert stats["server"]["connections_open"] == 1
        assert stats["server"]["quota"]["max_jobs"] >= 1
    else:
        assert "server" not in stats


# ----------------------------------------------------------------------
# the protocol engine, unit level
# ----------------------------------------------------------------------
def test_decode_request_strips_the_protocol_id():
    request = decode_request('{"job": "sweep", "id": 7}', default_id=1)
    assert (request.id, request.kind) == (7, "job")
    assert "id" not in request.data
    assert request.op is None


def test_decode_request_defaults_to_the_sequence_id():
    request = decode_request('{"op": "ping"}', default_id=42)
    assert (request.id, request.kind, request.op) == (42, "control", "ping")


def test_decode_request_passes_non_object_payloads_to_the_job_parser():
    request = decode_request("[1, 2, 3]", default_id=1)
    assert (request.kind, request.data) == ("job", [1, 2, 3])


def test_decode_request_rejects_oversized_and_invalid_lines():
    with pytest.raises(ProtocolError, match="exceeds the 10-byte limit"):
        decode_request('{"op": "ping"}', 1, max_line_bytes=10)
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_request("{nope", 1)


def test_handle_control_answers_unknown_ops_with_an_error_doc():
    request = decode_request('{"op": "levitate", "id": "x"}', 1)
    doc = handle_control(None, request)  # unknown op never touches session
    assert doc == error_doc("x", "ProtocolError", doc["error"]["message"])
    assert "levitate" in doc["error"]["message"]


def test_document_shapes_are_stable():
    assert control_doc("a", "ping") == \
        {"type": "control", "id": "a", "op": "ping", "ok": True}
    assert error_doc(3, "Boom", "went boom") == \
        {"type": "error", "id": 3,
         "error": {"type": "Boom", "message": "went boom"}}
