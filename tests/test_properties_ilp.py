"""Property-based tests of the ILP layer: the two backends must agree."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ilp import LinExpr, Model, SolveStatus


@st.composite
def random_covering_problem(draw):
    """A random weighted set-cover-style ILP (always feasible)."""
    num_items = draw(st.integers(min_value=2, max_value=5))
    num_sets = draw(st.integers(min_value=2, max_value=6))
    weights = [draw(st.integers(min_value=1, max_value=9)) for _ in range(num_sets)]
    membership = []
    for item in range(num_items):
        row = [draw(st.booleans()) for _ in range(num_sets)]
        if not any(row):
            row[draw(st.integers(min_value=0, max_value=num_sets - 1))] = True
        membership.append(row)
    return weights, membership


def build_cover_model(weights, membership) -> Model:
    model = Model("cover")
    picks = [model.add_binary(f"s{j}") for j in range(len(weights))]
    for item, row in enumerate(membership):
        covering = [picks[j] for j, member in enumerate(row) if member]
        model.add_constr(LinExpr.sum(covering) >= 1, f"cover_{item}")
    model.set_objective(LinExpr.sum(w * s for w, s in zip(weights, picks)))
    return model


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(problem=random_covering_problem())
def test_backends_agree_on_cover_objective(problem):
    weights, membership = problem
    scipy_solution = build_cover_model(weights, membership).solve(backend="scipy")
    bnb_solution = build_cover_model(weights, membership).solve(backend="bnb")
    assert scipy_solution.status is SolveStatus.OPTIMAL
    assert bnb_solution.status is SolveStatus.OPTIMAL
    assert abs(scipy_solution.objective - bnb_solution.objective) < 1e-6


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(problem=random_covering_problem())
def test_solutions_satisfy_all_constraints(problem):
    weights, membership = problem
    model = build_cover_model(weights, membership)
    solution = model.solve()
    assert model.check_solution(solution) == []
    # Binary variables must take exactly 0/1 values.
    for value in solution.values.values():
        assert value in (0.0, 1.0)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    coefficients=st.lists(st.integers(min_value=-5, max_value=5), min_size=2, max_size=5),
    bound=st.integers(min_value=0, max_value=6),
)
def test_relaxation_bounds_integer_optimum(coefficients, bound):
    """The LP relaxation of a minimisation ILP is a valid lower bound."""
    from scipy.optimize import linprog

    model = Model("bounded")
    xs = [model.add_binary(f"x{i}") for i in range(len(coefficients))]
    model.add_constr(LinExpr.sum(xs) >= min(bound, len(xs)))
    model.set_objective(LinExpr.sum(c * x for c, x in zip(coefficients, xs)))
    form = model.to_matrix_form()
    relaxed = linprog(
        c=form.c,
        A_ub=form.A_ub if form.A_ub.shape[0] else None,
        b_ub=form.b_ub if form.A_ub.shape[0] else None,
        bounds=form.bounds,
        method="highs",
    )
    solution = model.solve()
    assert solution.status is SolveStatus.OPTIMAL
    assert relaxed.fun <= solution.objective + 1e-6
