"""Tests of the formulation options: ablations of the paper's design choices."""

import pytest

from repro.core import AdvBistFormulation, FormulationOptions
from repro.hls import left_edge_binding


@pytest.fixture(scope="module")
def concurrent_optimum(fig1_graph):
    return AdvBistFormulation(fig1_graph, k=2).solve().solution.objective


def test_fixed_register_assignment_is_never_better(fig1_graph, concurrent_optimum):
    """Freezing the register assignment (the non-concurrent ablation) can only
    match or worsen the optimal concurrent objective — the paper's core claim."""
    fixed = left_edge_binding(fig1_graph).assignment
    options = FormulationOptions(fixed_register_assignment=fixed)
    result = AdvBistFormulation(fig1_graph, k=2, options=options).solve()
    assert result.solution.proven_optimal
    assert result.solution.objective >= concurrent_optimum - 1e-6
    # the decoded design actually uses the imposed assignment
    assert result.design.datapath.register_of_variable == dict(fixed)


def test_fixed_assignment_outside_register_range_rejected(fig1_graph):
    options = FormulationOptions(fixed_register_assignment={0: 99})
    with pytest.raises(Exception):
        AdvBistFormulation(fig1_graph, k=1, options=options)


def test_symmetry_reduction_preserves_optimum(fig1_graph, concurrent_optimum):
    options = FormulationOptions(symmetry_reduction=False)
    result = AdvBistFormulation(fig1_graph, k=2, options=options).solve()
    assert result.solution.objective == pytest.approx(concurrent_optimum)


def test_symmetry_reduction_adds_pinning_constraints(fig1_graph):
    with_pins = AdvBistFormulation(fig1_graph, k=2)
    without_pins = AdvBistFormulation(
        fig1_graph, k=2, options=FormulationOptions(symmetry_reduction=False)
    )
    pinned = [c for c in with_pins.model.constraints if c.name.startswith("pin_")]
    unpinned = [c for c in without_pins.model.constraints if c.name.startswith("pin_")]
    assert len(pinned) == len(with_pins.registers)
    assert not unpinned


def test_disallowing_commutative_swap_cannot_improve(fig1_graph, concurrent_optimum):
    options = FormulationOptions(allow_commutative_swap=False)
    result = AdvBistFormulation(fig1_graph, k=2, options=options).solve()
    assert result.solution.objective >= concurrent_optimum - 1e-6
    assert not AdvBistFormulation(fig1_graph, k=2, options=options).s_perm


def test_extra_registers_allowed_but_not_chosen_for_free(fig1_graph, concurrent_optimum):
    """Allowing one spare register cannot worsen the optimum, and because a
    register costs 208 transistors the solver should not beat the 3-register
    optimum by more than it saves in muxes."""
    options = FormulationOptions(num_registers=4)
    result = AdvBistFormulation(fig1_graph, k=2, options=options).solve()
    assert result.solution.proven_optimal
    assert result.solution.objective >= concurrent_optimum - 1e-6


def test_adverse_path_constraints_guard_testability(fig1_graph):
    """Dropping equations (1)-(3) lets the solver invent test-only wires: the
    relaxed optimum is lower or equal, but the decoded result either violates
    the no-extra-path rule or coincides with the faithful optimum.  This is
    the ablation that shows why the paper needs those constraints."""
    from repro.core import FormulationError

    full = AdvBistFormulation(fig1_graph, k=1).solve()
    relaxed = AdvBistFormulation(
        fig1_graph, k=1, options=FormulationOptions(adverse_path_constraints=False)
    )
    relaxed_solution = relaxed.model.solve()
    assert relaxed_solution.objective <= full.solution.objective + 1e-6

    try:
        design = relaxed.extract_design(relaxed_solution)
    except FormulationError:
        design = None   # the relaxed model cheated with an adverse path
    if design is not None:
        # If it did not cheat, it must simply be the faithful optimum.
        assert design.verify().ok
        assert relaxed_solution.objective == pytest.approx(full.solution.objective)
    # The faithful model's design passes the adverse-path check by design.
    full.design.datapath.validate()


def test_from_start_lifetime_policy_uses_more_registers(fig1_graph):
    options = FormulationOptions(primary_input_policy="from_start")
    formulation = AdvBistFormulation(fig1_graph, k=1, options=options)
    assert len(formulation.registers) >= 3
    result = formulation.solve()
    assert result.design is not None
    assert result.design.verify().ok
