"""Tests of the constant-only-port analysis (paper section 3.3.4)."""

from repro.core import analyse_constant_ports
from repro.dfg import DFGBuilder
from repro.hls import bind_modules


def test_no_constants_means_no_special_ports(fig1_graph):
    analysis = analyse_constant_ports(fig1_graph)
    assert analysis.constant_only_ports == ()
    assert analysis.mixed_ports == ()
    assert analysis.num_constant_tpgs == 0


def test_constant_only_port_detected(constant_port_graph):
    analysis = analyse_constant_ports(constant_port_graph)
    # the single multiplier's port 1 only ever sees the constant 5.0
    assert len(analysis.constant_only_ports) == 1
    module, port = analysis.constant_only_ports[0]
    assert port == 1
    assert constant_port_graph.module_class_of(module) == "mult"
    assert analysis.num_constant_tpgs == 1


def test_mixed_port_detected():
    builder = DFGBuilder("mixed")
    a = builder.input("a")
    b = builder.input("b")
    # Two multiplications share a module; port 1 sees a constant for one of
    # them and a variable for the other -> "mixed", not "constant only".
    m1 = builder.op("mul", a, builder.constant(2.0), cstep=0)
    m2 = builder.op("mul", m1, b, cstep=1)
    s = builder.op("add", m2, a, cstep=2)
    builder.output(s)
    graph = builder.build()
    graph = bind_modules(graph).apply(graph)
    analysis = analyse_constant_ports(graph)
    assert analysis.constant_only_ports == ()
    assert len(analysis.mixed_ports) == 1
