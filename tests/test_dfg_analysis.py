"""Tests for lifetime / compatibility / crossing analysis (paper section 2)."""

import pytest

from repro.dfg import (
    DFGBuilder,
    DFGError,
    Lifetime,
    check_register_assignment,
    compatibility_graph,
    concurrent_operation_pairs,
    horizontal_crossings,
    incompatibility_graph,
    incompatible_variable_clique,
    minimum_module_counts,
    minimum_register_count,
    self_adjacency_candidates,
    variable_lifetimes,
)


def test_lifetime_validation():
    with pytest.raises(DFGError):
        Lifetime(birth=3, death=1)


def test_lifetime_overlap_and_span():
    a = Lifetime(0, 2)
    b = Lifetime(2, 4)
    c = Lifetime(3, 5)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert a.span == 3
    assert list(b.boundaries()) == [2, 3, 4]


def test_fig1_minimum_registers_is_three(fig1_graph):
    """Section 2: the Fig. 1 data path uses the minimal three registers."""
    assert minimum_register_count(fig1_graph) == 3


def test_fig1_paper_register_grouping_is_compatible(fig1_graph):
    """The register assignment quoted in the paper (R0={0,4}, R1={1,3,6},
    R2={2,5,7}) must be conflict-free under our lifetime model."""
    assignment = {0: 0, 4: 0, 1: 1, 3: 1, 6: 1, 2: 2, 5: 2, 7: 2}
    assert check_register_assignment(fig1_graph, assignment) == []


def test_fig1_overlapping_grouping_is_flagged(fig1_graph):
    """Putting an operation's two concurrent inputs in one register must fail."""
    assignment = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 1, 7: 0}
    problems = check_register_assignment(fig1_graph, assignment)
    assert problems  # variables 0 and 1 are both live at boundary 0


def test_check_register_assignment_reports_missing_variables(fig1_graph):
    problems = check_register_assignment(fig1_graph, {0: 0})
    assert any("without a register" in p for p in problems)


def test_lifetimes_require_schedule(fig1_behavioral):
    with pytest.raises(DFGError):
        variable_lifetimes(fig1_behavioral)


def test_primary_input_policies_differ(fig1_graph):
    at_use = variable_lifetimes(fig1_graph, "at_first_use")
    from_start = variable_lifetimes(fig1_graph, "from_start")
    for var, lifetime in from_start.items():
        if fig1_graph.variables[var].is_primary_input:
            assert lifetime.birth == 0
            assert lifetime.death == at_use[var].death
    assert minimum_register_count(fig1_graph, "from_start") >= minimum_register_count(
        fig1_graph, "at_first_use"
    )


def test_unconsumed_primary_input_rejected():
    builder = DFGBuilder("dangling")
    a = builder.input("a")
    builder.input("never_used")
    out = builder.op("add", a, a, cstep=0)
    builder.output(out)
    graph = builder.build()
    with pytest.raises(DFGError):
        variable_lifetimes(graph)


def test_horizontal_crossings_cover_all_boundaries(fig1_graph):
    crossings = horizontal_crossings(fig1_graph)
    lifetimes = variable_lifetimes(fig1_graph)
    assert set(crossings) == set(range(max(lt.death for lt in lifetimes.values()) + 1))
    assert max(crossings.values()) == minimum_register_count(fig1_graph)
    assert sum(crossings.values()) == sum(lt.span for lt in lifetimes.values())


def test_minimum_module_counts(fig1_graph):
    counts = minimum_module_counts(fig1_graph)
    assert counts == {"alu": 1, "mult": 1}


def test_incompatibility_and_compatibility_are_complements(fig1_graph):
    conflict = incompatibility_graph(fig1_graph)
    compatible = compatibility_graph(fig1_graph)
    n = len(fig1_graph.variable_ids)
    assert conflict.number_of_nodes() == n
    assert conflict.number_of_edges() + compatible.number_of_edges() == n * (n - 1) // 2


def test_incompatible_clique_is_pairwise_conflicting(fig1_graph):
    clique = incompatible_variable_clique(fig1_graph)
    assert len(clique) == minimum_register_count(fig1_graph)
    conflict = incompatibility_graph(fig1_graph)
    for i, u in enumerate(clique):
        for v in clique[i + 1:]:
            assert conflict.has_edge(u, v)


def test_concurrent_operation_pairs(fig1_graph):
    pairs = concurrent_operation_pairs(fig1_graph)
    for a, b in pairs:
        assert fig1_graph.operations[a].cstep == fig1_graph.operations[b].cstep


def test_self_adjacency_candidates(fig1_graph):
    pairs = self_adjacency_candidates(fig1_graph)
    # Every operation with two variable inputs contributes two pairs.
    expected = sum(len(op.variable_inputs) for op in fig1_graph.operations.values())
    assert len(pairs) == expected
    for input_var, output_var in pairs:
        producer = fig1_graph.variables[output_var].producer
        consumed = [v for _p, v in fig1_graph.operations[producer].variable_inputs]
        assert input_var in consumed


def test_larger_circuit_crossing_consistency(tseng_graph):
    crossings = horizontal_crossings(tseng_graph)
    assert max(crossings.values()) == minimum_register_count(tseng_graph)
    assert all(value >= 0 for value in crossings.values())
