"""Tests of the Table 1 cost model and area accounting."""

import pytest

from repro.cost import (
    CostModel,
    CostModelError,
    PAPER_COST_MODEL,
    TABLE1_MUXES_8BIT,
    TABLE1_REGISTERS_8BIT,
    area_overhead,
    datapath_area,
)
from repro.datapath import Datapath, TestRegisterKind
from repro.hls import left_edge_binding


def test_table1_register_costs_exact():
    """Table 1(a): Reg 208, TPG 256, SR 304, BILBO 388, CBILBO 596."""
    assert PAPER_COST_MODEL.register_cost(TestRegisterKind.NONE) == 208
    assert PAPER_COST_MODEL.register_cost(TestRegisterKind.TPG) == 256
    assert PAPER_COST_MODEL.register_cost(TestRegisterKind.SR) == 304
    assert PAPER_COST_MODEL.register_cost(TestRegisterKind.BILBO) == 388
    assert PAPER_COST_MODEL.register_cost(TestRegisterKind.CBILBO) == 596


def test_table1_mux_costs_exact():
    """Table 1(b): 2..7-input multiplexers."""
    expected = {2: 80, 3: 176, 4: 208, 5: 300, 6: 320, 7: 350}
    for inputs, cost in expected.items():
        assert PAPER_COST_MODEL.mux_cost(inputs) == cost


def test_trivial_mux_costs_nothing():
    assert PAPER_COST_MODEL.mux_cost(0) == 0
    assert PAPER_COST_MODEL.mux_cost(1) == 0


def test_mux_cost_extrapolation_beyond_table():
    base = PAPER_COST_MODEL.mux_cost(7)
    assert PAPER_COST_MODEL.mux_cost(8) == base + 50
    assert PAPER_COST_MODEL.mux_cost(10) == base + 3 * 50


def test_negative_mux_size_rejected():
    with pytest.raises(CostModelError):
        PAPER_COST_MODEL.mux_cost(-1)


def test_invalid_bit_width_rejected():
    with pytest.raises(CostModelError):
        CostModel(bit_width=0)


def test_missing_register_kind_rejected():
    with pytest.raises(CostModelError):
        CostModel(register_costs={TestRegisterKind.NONE: 208})


def test_cost_scaling_with_bit_width():
    wide = CostModel(bit_width=16)
    assert wide.register_cost(TestRegisterKind.NONE) == 416
    assert wide.mux_cost(2) == 160
    narrow = CostModel(bit_width=4)
    assert narrow.register_cost(TestRegisterKind.CBILBO) == 298


def test_incremental_weights_reproduce_table1():
    inc = PAPER_COST_MODEL.incremental_weights()
    w = PAPER_COST_MODEL.w_reg
    assert w + inc["tpg"] == PAPER_COST_MODEL.w_tpg
    assert w + inc["sr"] == PAPER_COST_MODEL.w_sr
    assert w + inc["tpg"] + inc["sr"] + inc["bilbo"] == PAPER_COST_MODEL.w_bilbo
    assert (w + inc["tpg"] + inc["sr"] + inc["bilbo"] + inc["cbilbo"]
            == PAPER_COST_MODEL.w_cbilbo)
    assert all(value > 0 for value in inc.values())


def test_describe_contains_table(tmp_path):
    table = PAPER_COST_MODEL.describe()
    assert table["registers"]["NONE"] == 208
    assert table["multiplexers"][7] == 350
    assert table["bit_width"] == 8


def test_module_constants_match_defaults():
    assert TABLE1_REGISTERS_8BIT[TestRegisterKind.BILBO] == 388
    assert TABLE1_MUXES_8BIT[5] == 300


def test_datapath_area_without_plan(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    datapath = Datapath.from_bindings(fig1_graph, binding.assignment)
    breakdown = datapath_area(datapath)
    assert breakdown.register_count == 3
    assert breakdown.register_area == 3 * 208
    assert breakdown.kind_counts[TestRegisterKind.NONE] == 3
    assert breakdown.total == breakdown.register_area + breakdown.mux_area
    row = breakdown.counts_row()
    assert row["R"] == 3 and row["Area"] == breakdown.total


def test_area_overhead_math():
    assert area_overhead(150, 100) == pytest.approx(50.0)
    assert area_overhead(100, 100) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        area_overhead(100, 0)
