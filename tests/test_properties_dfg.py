"""Property-based tests over randomly generated data flow graphs.

The strategies build random layered DAGs through the public builder, schedule
and bind them with the HLS substrate, and then check the structural
invariants the rest of the package relies on:

* lifetimes are well-formed and consistent with the schedule,
* the maximal horizontal crossing equals the left-edge register count,
* left-edge and colouring register bindings are conflict-free,
* the derived data path is structurally consistent (no missing wires, no
  adverse paths) and its area decomposes as registers + multiplexers,
* DFG serialisation round-trips.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cost import PAPER_COST_MODEL, datapath_area
from repro.datapath import Datapath
from repro.dfg import (
    DFGBuilder,
    check_register_assignment,
    horizontal_crossings,
    minimum_module_counts,
    minimum_register_count,
    textio,
    variable_lifetimes,
)
from repro.hls import bind_modules, coloring_binding, left_edge_binding, list_schedule

KINDS = ["add", "sub", "mul", "and"]


@st.composite
def random_behavioral_dfg(draw):
    """A random small DAG built through the public builder API."""
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    num_ops = draw(st.integers(min_value=1, max_value=8))
    builder = DFGBuilder("random")
    inputs = [builder.input(f"in{i}") for i in range(num_inputs)]
    handles = list(inputs)
    consumed: set[int] = set()
    for index in range(num_ops):
        kind = draw(st.sampled_from(KINDS))
        left = handles[draw(st.integers(min_value=0, max_value=len(handles) - 1))]
        right = handles[draw(st.integers(min_value=0, max_value=len(handles) - 1))]
        consumed.update({int(left), int(right)})
        handles.append(builder.op(kind, left, right, name=f"t{index}"))
    # Every primary input must be consumed somewhere (a dangling input has no
    # lifetime); feed any unused ones into extra accumulating additions.
    for extra, handle in enumerate(h for h in inputs if int(h) not in consumed):
        handles.append(builder.op("add", handle, handles[-1], name=f"fixup{extra}"))
    builder.output(handles[-1])
    return builder.build()


@st.composite
def random_scheduled_dfg(draw):
    """A random DFG scheduled and module bound by the HLS substrate."""
    graph = draw(random_behavioral_dfg())
    limits = {
        "alu": draw(st.integers(min_value=1, max_value=2)),
        "mult": draw(st.integers(min_value=1, max_value=2)),
        "logic": 1,
    }
    graph = list_schedule(graph, limits).apply(graph)
    graph = bind_modules(graph).apply(graph)
    return graph


COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_lifetimes_are_consistent_with_schedule(graph):
    lifetimes = variable_lifetimes(graph)
    for var_id, lifetime in lifetimes.items():
        assert lifetime.birth <= lifetime.death
        producer = graph.variables[var_id].producer
        if producer is not None:
            assert lifetime.birth == graph.operations[producer].cstep + 1
        for op_id, _port in graph.consumers_of(var_id):
            consumer_step = graph.operations[op_id].cstep
            assert lifetime.birth <= consumer_step <= lifetime.death


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_left_edge_matches_max_crossing(graph):
    binding = left_edge_binding(graph)
    assert binding.register_count == minimum_register_count(graph)
    assert check_register_assignment(graph, binding.assignment) == []


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_coloring_binding_is_conflict_free(graph):
    binding = coloring_binding(graph)
    assert check_register_assignment(graph, binding.assignment) == []
    assert binding.register_count >= minimum_register_count(graph)


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_crossing_histogram_totals(graph):
    lifetimes = variable_lifetimes(graph)
    crossings = horizontal_crossings(graph)
    assert sum(crossings.values()) == sum(lt.span for lt in lifetimes.values())
    assert max(crossings.values()) <= len(graph.variable_ids)


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_schedule_respects_resources_and_dependencies(graph):
    counts = minimum_module_counts(graph)
    for cstep in graph.control_steps:
        per_class: dict[str, int] = {}
        for op_id in graph.operations_in_step(cstep):
            cls = graph.operations[op_id].module_class
            per_class[cls] = per_class.get(cls, 0) + 1
        for cls, used in per_class.items():
            assert used <= counts[cls]
    for op in graph.operations.values():
        for _port, var in op.variable_inputs:
            producer = graph.variables[var].producer
            if producer is not None:
                assert graph.operations[producer].cstep < op.cstep


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_datapath_consistency_and_area_decomposition(graph):
    binding = left_edge_binding(graph)
    datapath = Datapath.from_bindings(graph, binding.assignment)
    datapath.validate()
    breakdown = datapath_area(datapath)
    expected_register_area = len(datapath.register_ids) * PAPER_COST_MODEL.w_reg
    assert breakdown.register_area == expected_register_area
    expected_mux_area = sum(
        PAPER_COST_MODEL.mux_cost(mux.inputs)
        for mux in datapath.multiplexers() if mux.is_real
    )
    assert breakdown.mux_area == expected_mux_area
    assert breakdown.total == breakdown.register_area + breakdown.mux_area
    assert breakdown.mux_inputs == datapath.mux_input_total()


@COMMON_SETTINGS
@given(graph=random_scheduled_dfg())
def test_serialisation_round_trip(graph):
    text = textio.to_json(graph)
    json.loads(text)  # must be valid JSON
    rebuilt = textio.from_json(text)
    assert rebuilt.input_edges == graph.input_edges
    assert rebuilt.output_edges == graph.output_edges
    assert rebuilt.control_steps == graph.control_steps


@COMMON_SETTINGS
@given(graph=random_behavioral_dfg())
def test_behavioral_graphs_validate_and_summarise(graph):
    graph.validate()
    summary = graph.summary()
    assert summary["operations"] == len(graph.operation_ids)
    assert summary["scheduled"] is False or len(graph.operation_ids) == 0
