"""Percentile math behind the serve-load latency report."""

import pytest

from repro.net.load import _latency_block, _percentile, default_spec_pool


def test_percentile_empty_sample_is_none():
    assert _percentile([], 50) is None
    assert _percentile([], 99) is None


def test_percentile_singleton_returns_its_value():
    for q in (0, 50, 90, 99, 100):
        assert _percentile([0.25], q) == 0.25


def test_percentile_interpolates_between_ranks():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(values, 50) == pytest.approx(2.5)
    assert _percentile(values, 0) == 1.0
    assert _percentile(values, 100) == 4.0
    assert _percentile(values, 25) == pytest.approx(1.75)
    assert _percentile([0.0, 10.0], 90) == pytest.approx(9.0)


def test_percentile_exact_ranks_need_no_interpolation():
    values = [1.0, 2.0, 3.0]
    assert _percentile(values, 50) == 2.0
    assert _percentile(values, 100) == 3.0


def test_percentiles_are_monotone():
    values = sorted([0.004, 0.001, 0.09, 0.02, 0.3, 0.015, 0.007])
    p50 = _percentile(values, 50)
    p90 = _percentile(values, 90)
    p99 = _percentile(values, 99)
    assert p50 <= p90 <= p99 <= values[-1]


def test_latency_block_handles_no_samples():
    block = _latency_block([])
    assert block == {"p50_ms": None, "p90_ms": None, "p99_ms": None,
                     "max_ms": None, "mean_ms": None}


def test_latency_block_reports_milliseconds():
    block = _latency_block([0.001, 0.002, 0.003, 0.004])
    assert block["p50_ms"] == pytest.approx(2.5)
    assert block["max_ms"] == pytest.approx(4.0)
    assert block["mean_ms"] == pytest.approx(2.5)
    assert block["p50_ms"] <= block["p90_ms"] <= block["p99_ms"]


def test_default_spec_pool_is_duplicate_heavy():
    pool = default_spec_pool(circuit="fig2", max_k=3)
    assert len(pool) == 2
    assert all(spec["circuit"] == "fig2" for spec in pool)
