"""Serialisation round-trip tests for DFGs."""

import pytest

from repro.dfg import DFGBuilder, DFGError, textio


def test_round_trip_preserves_structure(fig1_graph):
    data = textio.to_dict(fig1_graph)
    rebuilt = textio.from_dict(data)
    assert rebuilt.name == fig1_graph.name
    assert rebuilt.operation_ids == fig1_graph.operation_ids
    assert rebuilt.variable_ids == fig1_graph.variable_ids
    assert rebuilt.input_edges == fig1_graph.input_edges
    assert rebuilt.output_edges == fig1_graph.output_edges
    for op_id in fig1_graph.operation_ids:
        assert rebuilt.operations[op_id].cstep == fig1_graph.operations[op_id].cstep
        assert rebuilt.operations[op_id].module == fig1_graph.operations[op_id].module


def test_json_round_trip(fig1_graph):
    text = textio.to_json(fig1_graph)
    rebuilt = textio.from_json(text)
    assert textio.to_dict(rebuilt) == textio.to_dict(fig1_graph)


def test_round_trip_with_constants_and_outputs():
    builder = DFGBuilder("with_consts")
    a = builder.input("a")
    scaled = builder.op("mul", a, builder.constant(2.5, "gain"), cstep=0)
    builder.output(scaled)
    graph = builder.build()
    rebuilt = textio.from_json(textio.to_json(graph))
    assert len(rebuilt.constants) == 1
    assert rebuilt.constants[0].value == pytest.approx(2.5)
    assert rebuilt.primary_outputs() == graph.primary_outputs()


def test_file_round_trip(tmp_path, fig1_graph):
    path = tmp_path / "fig1.json"
    textio.save(fig1_graph, path)
    rebuilt = textio.load(path)
    assert textio.to_dict(rebuilt) == textio.to_dict(fig1_graph)


def test_malformed_dictionary_raises():
    with pytest.raises(DFGError):
        textio.from_dict({"name": "broken", "variables": [{"oops": 1}], "operations": []})


def test_unscheduled_graph_round_trips(fig1_behavioral):
    rebuilt = textio.from_json(textio.to_json(fig1_behavioral))
    assert not rebuilt.is_scheduled
    assert rebuilt.operation_ids == fig1_behavioral.operation_ids
