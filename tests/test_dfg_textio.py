"""Serialisation round-trip tests for DFGs."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import DFGBuilder, DFGError, textio
from repro.dfg.generate import generate_behavioral, generate_scheduled


def test_round_trip_preserves_structure(fig1_graph):
    data = textio.to_dict(fig1_graph)
    rebuilt = textio.from_dict(data)
    assert rebuilt.name == fig1_graph.name
    assert rebuilt.operation_ids == fig1_graph.operation_ids
    assert rebuilt.variable_ids == fig1_graph.variable_ids
    assert rebuilt.input_edges == fig1_graph.input_edges
    assert rebuilt.output_edges == fig1_graph.output_edges
    for op_id in fig1_graph.operation_ids:
        assert rebuilt.operations[op_id].cstep == fig1_graph.operations[op_id].cstep
        assert rebuilt.operations[op_id].module == fig1_graph.operations[op_id].module


def test_json_round_trip(fig1_graph):
    text = textio.to_json(fig1_graph)
    rebuilt = textio.from_json(text)
    assert textio.to_dict(rebuilt) == textio.to_dict(fig1_graph)


def test_round_trip_with_constants_and_outputs():
    builder = DFGBuilder("with_consts")
    a = builder.input("a")
    scaled = builder.op("mul", a, builder.constant(2.5, "gain"), cstep=0)
    builder.output(scaled)
    graph = builder.build()
    rebuilt = textio.from_json(textio.to_json(graph))
    assert len(rebuilt.constants) == 1
    assert rebuilt.constants[0].value == pytest.approx(2.5)
    assert rebuilt.primary_outputs() == graph.primary_outputs()


def test_file_round_trip(tmp_path, fig1_graph):
    path = tmp_path / "fig1.json"
    textio.save(fig1_graph, path)
    rebuilt = textio.load(path)
    assert textio.to_dict(rebuilt) == textio.to_dict(fig1_graph)


def test_malformed_dictionary_raises():
    with pytest.raises(DFGError):
        textio.from_dict({"name": "broken", "variables": [{"oops": 1}], "operations": []})


def test_unscheduled_graph_round_trips(fig1_behavioral):
    rebuilt = textio.from_json(textio.to_json(fig1_behavioral))
    assert not rebuilt.is_scheduled
    assert rebuilt.operation_ids == fig1_behavioral.operation_ids


# ----------------------------------------------------------------------
# property-based round trips driven by the random generator
# ----------------------------------------------------------------------
def _assert_exact_round_trip(graph):
    """to_dict → from_dict must be the identity on every field."""
    data = textio.to_dict(graph)
    rebuilt = textio.from_dict(json.loads(json.dumps(data)))  # via real JSON
    assert textio.to_dict(rebuilt) == data
    assert rebuilt.name == graph.name
    for op_id, op in graph.operations.items():
        other = rebuilt.operations[op_id]
        assert other.kind == op.kind
        assert other.inputs == op.inputs          # constants compare by value+name
        assert other.cstep == op.cstep            # None survives for unscheduled
        assert other.module == op.module          # None survives for unbound
        assert other.commutative == op.commutative
    for var_id, var in graph.variables.items():
        other = rebuilt.variables[var_id]
        assert other.name == var.name
        assert other.producer == var.producer
        assert other.is_primary_output == var.is_primary_output


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=1, max_value=12),
       const_p=st.floats(min_value=0.0, max_value=0.9),
       out_p=st.floats(min_value=0.0, max_value=1.0))
def test_generated_behavioral_graphs_round_trip(seed, ops, const_p, out_p):
    graph = generate_behavioral(seed=seed, num_operations=ops,
                                constant_probability=const_p,
                                output_density=out_p)
    _assert_exact_round_trip(graph)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=1, max_value=10),
       pressure=st.floats(min_value=0.0, max_value=1.0))
def test_generated_scheduled_graphs_round_trip(seed, ops, pressure):
    graph = generate_scheduled(seed=seed, num_operations=ops,
                               sharing_pressure=pressure)
    _assert_exact_round_trip(graph)


def test_explicit_commutative_override_round_trips():
    builder = DFGBuilder("override")
    a = builder.input("a")
    b = builder.input("b")
    # an add forced non-commutative and a sub forced commutative
    frozen = builder.op("add", a, b, commutative=False)
    odd = builder.op("sub", frozen, b, commutative=True)
    builder.output(odd)
    graph = builder.build()
    rebuilt = textio.from_json(textio.to_json(graph))
    assert rebuilt.operations[0].commutative is False
    assert rebuilt.operations[1].commutative is True
