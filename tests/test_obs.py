"""repro.obs: metrics registry, per-solve traces, drift detection."""

import json
import threading

import pytest

from repro.core.engine import DesignCache, SweepEngine, TaskScheduler
from repro.obs.drift import (
    DriftReport,
    detect_drift,
    render_drift,
    series_from_metrics,
    series_from_reports,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsError,
    get_registry,
    record_cache,
    record_scheduler,
    record_solve,
    use_registry,
)
from repro.obs.trace import Tracer

TIME_LIMIT = 60.0


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
def test_counter_labels_and_totals():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "jobs", labels=("kind",))
    jobs.inc(kind="sweep")
    jobs.inc(2, kind="compare")
    assert jobs.value(kind="sweep") == 1.0
    assert jobs.value(kind="compare") == 2.0
    assert jobs.total() == 3.0
    with pytest.raises(MetricsError):
        jobs.inc(-1, kind="sweep")          # counters are monotone
    with pytest.raises(MetricsError):
        jobs.inc(wrong_label="x")


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    depth = registry.gauge("depth", "queue depth")
    depth.inc(3)
    depth.dec()
    assert depth.value() == 2.0
    depth.set(7)
    assert depth.value() == 7.0


def test_histogram_bucket_math():
    registry = MetricsRegistry()
    wall = registry.histogram("wall", "seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        wall.observe(value)
    assert wall.count() == 5
    text = registry.render()
    assert 'wall_bucket{le="0.1"} 1' in text
    assert 'wall_bucket{le="1"} 3' in text          # cumulative
    assert 'wall_bucket{le="10"} 4' in text
    assert 'wall_bucket{le="+Inf"} 5' in text
    assert "wall_count 5" in text
    snap = registry.snapshot()["metrics"][0]["series"][0]
    assert snap["count"] == 5 and snap["overflow"] == 1
    assert snap["mean"] == pytest.approx(56.05 / 5)


def test_registry_get_or_create_and_type_clash():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "x")
    assert registry.counter("x_total", "x") is a
    with pytest.raises(MetricsError):
        registry.gauge("x_total", "x")              # name reuse across types
    with pytest.raises(MetricsError):
        registry.counter("x_total", "x", labels=("kind",))  # label clash


def test_render_exposition_shape():
    registry = MetricsRegistry()
    registry.counter("c_total", "help text", labels=("a",)).inc(a="1")
    text = registry.render()
    assert "# HELP c_total help text" in text
    assert "# TYPE c_total counter" in text
    assert 'c_total{a="1"} 1' in text               # integral: no ".0"


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    with use_registry(registry):
        record_scheduler("submitted", 5)
        record_solve("bnb", 0.1, None)
        record_cache("memory", "hit")
    assert registry.snapshot()["metrics"] == []


def test_use_registry_scopes_and_restores():
    outer = get_registry()
    private = MetricsRegistry()
    with use_registry(private):
        assert get_registry() is private
        record_scheduler("submitted")
    assert get_registry() is outer
    assert private.get("repro_scheduler_tasks_total").total() == 1.0


def test_record_solve_presolve_ratio():
    registry = MetricsRegistry()
    with use_registry(registry):
        record_solve("scipy", 0.2, {"original_variables": 100,
                                    "reduced_variables": 40})
    ratio = registry.get("repro_presolve_reduction_ratio")
    assert ratio is not None and ratio.count() == 1
    snap = [m for m in registry.snapshot()["metrics"]
            if m["name"] == "repro_presolve_reduction_ratio"][0]
    assert snap["series"][0]["mean"] == pytest.approx(0.6)


# ----------------------------------------------------------------------
# the trace ring + JSONL sink
# ----------------------------------------------------------------------
def _event(tracer, **overrides):
    fields = dict(task_key="ab" * 32, circuit="fig1", kind="advbist", k=1,
                  backend="bnb", status="executed", wall_seconds=0.01,
                  cached=False, coalesced=False)
    fields.update(overrides)
    tracer.record(**fields)


def test_trace_ring_is_bounded_and_sequenced():
    tracer = Tracer(capacity=3)
    for k in range(5):
        _event(tracer, k=k)
    events = tracer.events()
    assert [e.k for e in events] == [2, 3, 4]
    assert [e.seq for e in events] == [3, 4, 5]
    snap = tracer.snapshot()
    assert snap["recorded"] == 5 and snap["retained"] == 3
    assert snap["sink"] is None


def test_trace_jsonl_sink_writes_header_and_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(capacity=8, sink=str(path))
    _event(tracer, presolve={"original_variables": 10,
                             "reduced_variables": 4, "rounds": 1})
    _event(tracer, status="cached", cached=True)
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["trace_schema"] == 1
    assert "python" in lines[0]["environment"]       # bench schema-2 fingerprint
    assert lines[1]["kind"] == "advbist"
    assert lines[1]["presolve"]["original_variables"] == 10
    assert lines[2]["cached"] is True
    assert lines[1]["task_key"] == "ab" * 6          # shortened key


def test_trace_record_survives_closed_sink(tmp_path):
    tracer = Tracer(capacity=4, sink=str(tmp_path / "t.jsonl"))
    tracer.close()
    _event(tracer)                                   # must not raise
    assert len(tracer.events()) == 1


# ----------------------------------------------------------------------
# metrics under concurrency: the 8-thread stampede must stay consistent
# ----------------------------------------------------------------------
def test_stampede_metrics_exactly_consistent(tmp_path, fig1_graph,
                                             backend_registry_snapshot):
    """Counter totals after a coalescing stampede partition exactly:
    submitted == cache_hits + deduped + coalesced + executed, the solve
    histogram holds one observation per executed task, and the tracer saw
    every job."""
    from test_sched import _register_counting_backend

    counting = _register_counting_backend(name="counting-obs")
    registry = MetricsRegistry()
    with use_registry(registry):
        cache = DesignCache(tmp_path / "cache")
        scheduler = TaskScheduler()
        scheduler.tracer = Tracer(capacity=64)
        barrier = threading.Barrier(8)
        errors = []

        def worker():
            try:
                engine = SweepEngine(backend="counting-obs",
                                     time_limit=TIME_LIMIT, cache=cache,
                                     scheduler=scheduler)
                barrier.wait()
                engine.run([engine.task(fig1_graph, "advbist", k=1)])
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert not errors
    assert counting.calls == 1
    tasks = registry.get("repro_scheduler_tasks_total")
    submitted = tasks.value(event="submitted")
    assert submitted == 8.0
    parts = sum(tasks.value(event=event) for event in
                ("cache_hits", "deduped", "coalesced", "executed"))
    assert parts == submitted                        # exact partition
    assert tasks.value(event="executed") == 1.0
    solves = registry.get("repro_solve_wall_seconds")
    assert solves.total_count() == 1                 # jobs in == observations
    assert registry.get("repro_scheduler_inflight").value() == 0.0
    events = scheduler.tracer.events()
    assert len(events) == 8                          # every job traced
    computed = [e for e in events if not e.cached and not e.coalesced]
    assert len(computed) == 1
    # and the scheduler's own stats agree with the mirrored counters
    stats = scheduler.stats_snapshot()
    assert stats["submitted"] == 8 and stats["executed"] == 1


# ----------------------------------------------------------------------
# the cache tiers feed both the registry and Session.stats()
# ----------------------------------------------------------------------
def test_two_tier_counters_and_combined_hit_rate(tmp_path,
                                                 backend_registry_snapshot):
    from repro.api import Session, SynthesizeJob

    registry = MetricsRegistry()
    with use_registry(registry):
        cache_dir = str(tmp_path / "cache")
        with Session(cache_dir=cache_dir, time_limit=TIME_LIMIT) as session:
            assert session.run(SynthesizeJob(circuit="fig1", k=1)).ok
            assert session.run(SynthesizeJob(circuit="fig1", k=1)).ok
            stats = session.stats()
        # run 1: each leader probes twice (miss + post-claim double-check)
        # → 4 memory misses; run 2: 2 memory hits
        cache_stats = stats["cache"]
        assert cache_stats["memory_hits"] == 2
        assert cache_stats["memory_misses"] == 4
        assert cache_stats["disk_hits"] == 0
        assert cache_stats["hit_rate"] == pytest.approx(2 / 6, abs=1e-4)

        # A fresh session over the same disk store: cold memory, warm disk.
        with Session(cache_dir=cache_dir, time_limit=TIME_LIMIT) as session:
            assert session.run(SynthesizeJob(circuit="fig1", k=1)).ok
            stats = session.stats()
        assert stats["cache"]["disk_hits"] == 2
        assert stats["cache"]["memory_hits"] == 0
        assert stats["cache"]["hit_rate"] == 1.0     # disk answered them all

    requests = registry.get("repro_cache_requests_total")
    assert requests.value(tier="memory", outcome="miss") == 6.0
    assert requests.value(tier="memory", outcome="hit") == 2.0
    assert requests.value(tier="disk", outcome="miss") == 4.0
    assert requests.value(tier="disk", outcome="hit") == 2.0


# ----------------------------------------------------------------------
# the {"op": "metrics"} control operation
# ----------------------------------------------------------------------
def test_metrics_control_op(backend_registry_snapshot):
    from repro.api import Session, SynthesizeJob
    from repro.net.protocol import Request, handle_control

    with use_registry(MetricsRegistry()):
        with Session(cache=False, time_limit=TIME_LIMIT) as session:
            assert session.run(SynthesizeJob(circuit="fig1", k=1)).ok
            doc = handle_control(
                session, Request(id=7, kind="control",
                                 data={"op": "metrics"}))
    assert doc["type"] == "control" and doc["op"] == "metrics"
    assert doc["id"] == 7 and doc["ok"] is True
    assert "repro_solve_wall_seconds_count" in doc["text"]
    assert "repro_jobs_total" in doc["text"]
    names = {metric["name"] for metric in doc["snapshot"]["metrics"]}
    assert "repro_solve_wall_seconds" in names
    json.dumps(doc)                                  # wire-serialisable


# ----------------------------------------------------------------------
# drift detection
# ----------------------------------------------------------------------
def test_detect_drift_requires_consistent_walkoff():
    baseline = {"cold/a": 1.0}
    # One noisy spike inside the window is NOT drift.
    noisy = [("r1", {"cold/a": 2.0}), ("r2", {"cold/a": 0.9}),
             ("r3", {"cold/a": 2.0})]
    report = detect_drift(baseline, noisy, drift_ratio=1.25, window=3)
    assert report.rows[0].verdict == "ok" and report.ok
    # A consistent creep past the ratio IS drift.
    creep = [("r1", {"cold/a": 1.3}), ("r2", {"cold/a": 1.35}),
             ("r3", {"cold/a": 1.4})]
    report = detect_drift(baseline, creep, drift_ratio=1.25, window=3)
    assert report.rows[0].verdict == "drifting" and not report.ok


def test_detect_drift_verdict_edges():
    baseline = {"cold/known": 1.0, "cold/tiny": 0.001}
    series = [("r", {"cold/known": 0.5, "cold/tiny": 0.1,
                     "cold/unseen": 3.0})]
    report = detect_drift(baseline, series, drift_ratio=1.25, window=3)
    verdicts = {row.unit: row.verdict for row in report.rows}
    assert verdicts == {"cold/known": "improved", "cold/tiny": "noise",
                        "cold/unseen": "new"}
    assert report.ok                                 # only "drifting" gates
    rendered = render_drift(report, verbose=True)
    assert "improved" in rendered and "no drift" in rendered
    json.dumps(report.as_dict())


def test_detect_drift_rejects_bad_parameters():
    with pytest.raises(ValueError):
        detect_drift({}, [], drift_ratio=1.0)
    with pytest.raises(ValueError):
        detect_drift({}, [], window=0)


def test_series_from_reports_and_metrics():
    report = {"suites": {"s": {"scenarios": {"cold": {
        "per_unit_seconds": {"sweep:fig1": 0.4}}}}}}
    assert series_from_reports([("a.json", report)]) == \
        [("a.json", {"cold/sweep:fig1": 0.4})]
    snapshot = {"metrics": [
        {"name": "repro_solve_wall_seconds", "type": "histogram",
         "series": [{"labels": {"backend": "bnb"}, "sum": 2.0, "count": 4},
                    {"labels": {"backend": "scipy"}, "sum": 0.0, "count": 0}]},
        {"name": "repro_jobs_total", "type": "counter",
         "series": [{"labels": 'kind="sweep"', "value": 3}]},
    ]}
    series = series_from_metrics([("live", snapshot)])
    # counters skipped, empty histogram series skipped, mean = sum/count
    assert series == [("live", {
        "metrics/repro_solve_wall_seconds{backend=bnb}": 0.5})]


def test_drift_cli_gate(tmp_path):
    """history --drift: exit 0 on the committed baseline vs itself, exit 1
    against a synthetically walked-off series."""
    from pathlib import Path

    from repro.cli import main

    baseline_path = Path(__file__).resolve().parent.parent / "BENCH_regress.json"
    baseline = json.loads(baseline_path.read_text())
    assert main(["bench", "history", "--drift", str(baseline_path)]) == 0

    perturbed_paths = []
    for i, factor in enumerate((1.6, 1.7, 1.8)):
        doc = json.loads(json.dumps(baseline))
        for suite in doc["suites"].values():
            for scenario in suite["scenarios"].values():
                scenario["per_unit_seconds"] = {
                    unit: seconds * factor
                    for unit, seconds in scenario["per_unit_seconds"].items()}
        path = tmp_path / f"perturbed{i}.json"
        path.write_text(json.dumps(doc))
        perturbed_paths.append(str(path))

    out = tmp_path / "drift.json"
    code = main(["bench", "history", "--drift",
                 "--baseline", str(baseline_path), *perturbed_paths,
                 "--drift-out", str(out)])
    assert code == 1
    summary = json.loads(out.read_text())
    assert summary["ok"] is False and summary["drifting"]
    assert all(len(row["ratios"]) <= 3 for row in summary["rows"])


def test_drift_report_dataclass_roundtrip():
    report = DriftReport(drift_ratio=1.25, window=3, min_seconds=0.05,
                         baseline_source="b.json")
    assert report.ok and report.as_dict()["drifting"] == []
