"""Tests of dynamic circuit registration and JSON loading."""

from __future__ import annotations

import json

import pytest

from repro.circuits import (
    BUILTIN_CIRCUITS,
    get_circuit,
    get_spec,
    list_circuits,
    load_circuit,
    register_graph,
    unregister_circuit,
)
from repro.dfg import DFGError, textio
from repro.dfg.generate import generate_behavioral, generate_scheduled


@pytest.fixture()
def _clean_registry():
    """Remove any dynamically registered circuits after the test."""
    before = set(list_circuits())
    yield
    for name in set(list_circuits()) - before:
        unregister_circuit(name)


def test_register_graph_makes_circuit_retrievable(_clean_registry):
    graph = generate_scheduled(seed=42, num_operations=5)
    spec = register_graph(graph, description="a fuzzed circuit")
    assert spec.name == graph.name
    assert graph.name in list_circuits()
    assert get_circuit(graph.name) is graph
    assert not get_spec(graph.name).in_paper_table


def test_register_behavioral_graph_is_elaborated(_clean_registry):
    graph = generate_behavioral(seed=43, num_operations=5)
    register_graph(graph)
    prepared = get_circuit(graph.name)
    assert prepared.is_scheduled and prepared.is_module_bound
    assert get_spec(graph.name).build_behavioral() is graph


def test_register_rejects_builtin_names():
    clash = generate_scheduled(seed=0, num_operations=4, name="tseng")
    with pytest.raises(ValueError):
        register_graph(clash)
    # even with replace=True the benchmarks stay protected
    with pytest.raises(ValueError):
        register_graph(clash, replace=True)


def test_register_duplicate_requires_replace(_clean_registry):
    graph = generate_scheduled(seed=44, num_operations=5)
    register_graph(graph)
    with pytest.raises(ValueError):
        register_graph(graph)
    register_graph(graph, replace=True)  # explicit replacement is fine


def test_unregister_protects_builtins(_clean_registry):
    graph = generate_scheduled(seed=45, num_operations=5)
    register_graph(graph)
    unregister_circuit(graph.name)
    assert graph.name not in list_circuits()
    with pytest.raises(ValueError):
        unregister_circuit("fig1")
    assert BUILTIN_CIRCUITS <= set(list_circuits())


def test_load_circuit_from_file(tmp_path, _clean_registry):
    graph = generate_behavioral(seed=46, num_operations=6)
    path = tmp_path / "circuit.json"
    textio.save(graph, path)
    loaded = load_circuit(path)
    assert loaded.is_scheduled and loaded.is_module_bound
    assert graph.name in list_circuits()


def test_load_circuit_accepts_fuzz_failure_envelope(tmp_path, _clean_registry):
    graph = generate_scheduled(seed=47, num_operations=5)
    payload = {"kind": "repro-fuzz-failure", "seed": 47,
               "graph": textio.to_dict(graph)}
    path = tmp_path / "case.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    loaded = load_circuit(path)
    assert textio.to_dict(loaded) == textio.to_dict(graph)


def test_load_circuit_without_registration(tmp_path):
    graph = generate_behavioral(seed=48, num_operations=5)
    path = tmp_path / "anon.json"
    textio.save(graph, path)
    loaded = load_circuit(path, register=False)
    assert loaded.is_scheduled
    assert graph.name not in list_circuits()


def test_load_circuit_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(DFGError):
        load_circuit(path)
    path2 = tmp_path / "list.json"
    path2.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(DFGError):
        load_circuit(path2)
