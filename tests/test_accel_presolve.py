"""Unit tests of the repro.accel presolve pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.presolve import PresolveError, presolve_form
from repro.ilp import LinExpr, Model, SolveStatus


def _model_with_pins() -> Model:
    """Three binaries, one pinned by an equality row (a symmetry pin)."""
    model = Model("pins")
    a, b, c = (model.add_binary(name) for name in "abc")
    model.add_constr(a + 0.0 == 1.0, "pin_a")
    model.add_constr(a + b + c <= 2.0, "cap")
    model.set_objective(2.0 * a + 3.0 * b + 5.0 * c)
    return model


def test_singleton_equality_row_fixes_variable():
    form = _model_with_pins().to_matrix_form()
    presolved = presolve_form(form)
    assert not presolved.infeasible
    assert presolved.fixed == {0: 1.0}
    assert presolved.stats.fixed_variables == 1
    # The pin row is gone; so is the pinned column.
    assert presolved.reduced.A_eq.shape[0] == 0
    assert len(presolved.reduced.variables) == 2
    # The fixed objective contribution moved into the offset.
    assert presolved.reduced.offset == pytest.approx(form.offset + 2.0)


def test_forcing_row_fixes_all_its_variables():
    model = Model("forcing")
    z1, z2 = model.add_binary("z1"), model.add_binary("z2")
    free = model.add_binary("free")
    model.add_constr(z1 + z2 <= 0.0, "nowire")
    model.add_constr(free + z1 <= 1.0, "other")
    model.set_objective(free + z1 + z2)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.fixed == {0: 0.0, 1: 0.0}
    assert [v.name for v in presolved.reduced.variables] == ["free"]


def _clashing_forcing_model() -> Model:
    """Two interacting forcing rows of opposite sign over the same binaries.

    ``x + y <= 0`` forces ``x = y = 0``; ``-x - y <= -2`` then demands
    ``x + y >= 2``.  A stale activity vector (computed once before the
    forcing loop) treats *both* rows as forcing, fixes the variables twice
    and drops the rows — reporting OPTIMAL for an infeasible model.
    """
    model = Model("clash")
    x, y = model.add_binary("x"), model.add_binary("y")
    model.add_constr(x + y <= 0.0, "zero")
    model.add_constr(-1.0 * x - 1.0 * y <= -2.0, "two")
    model.set_objective(x + y)
    return model


def test_interacting_forcing_rows_prove_infeasibility():
    presolved = presolve_form(_clashing_forcing_model().to_matrix_form())
    assert presolved.infeasible
    assert presolved.infeasible_solution().status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("backend", ["scipy", "bnb"])
def test_interacting_forcing_rows_match_backend_status(backend):
    plain = _clashing_forcing_model().solve(backend=backend)
    accel = _clashing_forcing_model().solve(backend=backend, presolve=True)
    assert plain.status is SolveStatus.INFEASIBLE
    assert accel.status is SolveStatus.INFEASIBLE


def test_forcing_row_fixings_propagate_within_one_pass():
    # Fixing x = y = 1 from the first forcing row turns `x + w <= 1` into a
    # forcing row too — the fresh per-row activity picks that up in the same
    # pass (a stale precomputed activity of 0 would not).
    model = Model("cascade")
    x, y = model.add_binary("x"), model.add_binary("y")
    w = model.add_binary("w")
    model.add_constr(-1.0 * x - 1.0 * y <= -2.0, "both_on")
    model.add_constr(x + w <= 1.0, "cap")
    model.set_objective(x + y + w)
    presolved = presolve_form(model.to_matrix_form())
    assert not presolved.infeasible
    assert presolved.solved
    assert presolved.fixed == {0: 1.0, 1: 1.0, 2: 0.0}
    assert presolved.fixed_solution().objective == pytest.approx(2.0)


def test_round_cap_cannot_mask_violated_rows():
    # A dependency chain needing exactly _MAX_ROUNDS (25) fixpoint rounds:
    # each equality becomes a singleton only after the previous round's
    # substitution, and the final round fixes a = b = 1 — turning the
    # clashing `a + b == 1` row into an *empty* violated row only at the
    # very last substitution, after the round's passes have already run.
    # With the loop cut by the cap, only the post-loop guard can notice.
    model = Model("roundcap")
    xs = [model.add_binary(f"x{i}") for i in range(1, 25)]
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(xs[0] + 0.0 == 1.0, "pin")
    for prev, cur in zip(xs, xs[1:]):
        model.add_constr(prev + cur == 2.0, f"chain_{cur.name}")
    model.add_constr(xs[-1] + a == 2.0, "fan_a")
    model.add_constr(xs[-1] + b == 2.0, "fan_b")
    model.add_constr(a + b == 1.0, "clash")
    model.set_objective(LinExpr.sum(xs) + a + b)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.infeasible
    assert not presolved.solved


def test_singleton_inequality_becomes_bound_and_integer_bounds_round():
    model = Model("tighten")
    x = model.add_integer("x", lower=0, upper=10)
    y = model.add_integer("y", lower=0, upper=10)
    model.add_constr(2.0 * x <= 7.0, "half")      # x <= 3.5 -> x <= 3
    model.add_constr(x + y <= 9.0, "joint")
    model.set_objective(-1.0 * x - 1.0 * y + 0.0)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.stats.tightened_bounds >= 1
    reduced = presolved.reduced
    x_reduced = next(v for v in reduced.variables if v.name == "x")
    assert reduced.bounds[x_reduced.index] == (0.0, 3.0)
    # The singleton row itself is gone, the joint row survives.
    assert reduced.A_ub.shape[0] == 1


def test_duplicate_and_scaled_dominated_rows_collapse():
    model = Model("dup")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(a + b <= 1.0, "tight")
    model.add_constr(a + b <= 2.0, "loose")        # duplicate, dominated
    model.add_constr(2.0 * a + 2.0 * b <= 3.0, "scaled")  # = a + b <= 1.5
    model.set_objective(-1.0 * a - 1.0 * b + 0.0)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.reduced.A_ub.shape[0] == 1
    # The tightest right-hand side won.
    assert presolved.reduced.b_ub[0] == pytest.approx(1.0)


def test_conflicting_equality_rows_prove_infeasibility():
    model = Model("conflict")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(a + b == 1.0, "one")
    model.add_constr(2.0 * a + 2.0 * b == 4.0, "two")      # a + b == 2
    model.set_objective(a + b)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.infeasible
    assert presolved.infeasible_solution().status is SolveStatus.INFEASIBLE


def test_pin_outside_bounds_proves_infeasibility():
    model = Model("badpin")
    a = model.add_binary("a")
    model.add_constr(a + 0.0 == 2.0, "impossible")
    model.set_objective(a + 0.0)
    assert presolve_form(model.to_matrix_form()).infeasible


def test_fully_fixed_model_is_solved_by_presolve():
    model = Model("solved")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constr(a + 0.0 == 1.0, "pin_a")
    model.add_constr(b + 0.0 == 0.0, "pin_b")
    model.set_objective(3.0 * a + 7.0 * b + 1.0)
    presolved = presolve_form(model.to_matrix_form())
    assert presolved.solved
    solution = presolved.fixed_solution()
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(4.0)
    with pytest.raises(PresolveError):
        presolved.infeasible_solution()


def test_lift_solution_restores_original_variable_space():
    model = _model_with_pins()
    plain = model.solve(backend="scipy")
    presolved_solution = model.solve(backend="scipy", presolve=True)
    assert presolved_solution.status is SolveStatus.OPTIMAL
    assert presolved_solution.objective == pytest.approx(plain.objective)
    # Values are keyed by the *original* variables and satisfy the model.
    assert {v.name for v in presolved_solution.values} == {"a", "b", "c"}
    assert model.check_solution(presolved_solution) == []


@pytest.mark.parametrize("backend", ["scipy", "bnb"])
def test_presolve_preserves_knapsack_optimum(backend):
    def build():
        model = Model("knapsack")
        weights, values = [3, 4, 5, 6], [4, 5, 6, 7]
        items = [model.add_binary(f"item{i}") for i in range(4)]
        model.add_constr(LinExpr.sum(w * x for w, x in zip(weights, items)) <= 10.0)
        model.add_constr(items[0] + 0.0 == 1.0, "pin")
        model.set_objective(
            LinExpr.sum(-v * x for v, x in zip(values, items)))
        return model

    plain = build().solve(backend=backend)
    accel = build().solve(backend=backend, presolve=True)
    assert plain.status is SolveStatus.OPTIMAL
    assert accel.status is SolveStatus.OPTIMAL
    assert accel.objective == pytest.approx(plain.objective)


def test_presolve_handles_maximisation_models():
    def build():
        model = Model("maximise", sense="max")
        a, b = model.add_binary("a"), model.add_binary("b")
        model.add_constr(a + 0.0 == 1.0, "pin")
        model.add_constr(a + b <= 2.0, "cap")
        model.set_objective(3.0 * a + 2.0 * b)
        return model

    plain = build().solve(backend="scipy")
    accel = build().solve(backend="scipy", presolve=True)
    assert accel.objective == pytest.approx(plain.objective) == pytest.approx(5.0)


def test_presolve_accepts_dense_lowerings():
    form = _model_with_pins().to_matrix_form(sparse_form=False)
    presolved = presolve_form(form)
    assert not presolved.reduced.is_sparse
    assert isinstance(presolved.reduced.A_ub, np.ndarray)
    assert presolved.fixed == {0: 1.0}


def test_presolve_stats_surface_in_solve_stats():
    solution = _model_with_pins().solve(backend="scipy", presolve=True)
    summary = solution.stats.presolve
    assert summary is not None
    assert summary["original_variables"] == 3
    assert summary["reduced_variables"] == 2
    assert summary["fixed_variables"] == 1
    assert summary["rounds"] >= 1
    assert any(entry["pass"] == "fix_variables" for entry in summary["passes"])


def test_presolve_stats_absent_without_presolve():
    solution = _model_with_pins().solve(backend="scipy")
    assert solution.stats.presolve is None
