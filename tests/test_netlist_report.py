"""Tests of the structural netlist-style design reports."""

import json

import pytest

from repro.core import synthesize_bist, synthesize_reference
from repro.reporting.netlist import describe_design, describe_reference, design_to_dict


@pytest.fixture(scope="module")
def fig1_design(fig1_graph):
    return synthesize_bist(fig1_graph, k=2)


def test_design_to_dict_is_json_serialisable(fig1_design):
    data = design_to_dict(fig1_design)
    text = json.dumps(data)
    assert json.loads(text)["circuit"] == "fig1"


def test_design_to_dict_structure(fig1_design):
    data = design_to_dict(fig1_design)
    assert data["k"] == 2
    assert data["method"] == "ADVBIST"
    assert len(data["registers"]) == 3
    assert len(data["modules"]) == 2
    assert len(data["test_sessions"]) == 2
    # every register's variable list is non-empty and every module lists sinks
    assert all(register["variables"] for register in data["registers"])
    assert all(module["output_sinks"] for module in data["modules"])
    # the area in the report matches the design's own accounting
    assert data["area"] == fig1_design.area().total


def test_register_kinds_in_dict_match_plan(fig1_design):
    data = design_to_dict(fig1_design)
    kinds = fig1_design.plan.register_kinds(fig1_design.datapath)
    for register in data["registers"]:
        assert register["kind"] == kinds[register["id"]].name


def test_describe_design_text(fig1_design):
    text = describe_design(fig1_design)
    assert "Registers:" in text
    assert "Test schedule:" in text
    assert "session 1" in text and "session 2" in text
    for register in fig1_design.datapath.registers:
        assert f"R{register.reg_id}" in text


def test_describe_reference_text(fig1_graph):
    reference = synthesize_reference(fig1_graph)
    text = describe_reference(reference)
    assert "Reference data path" in text
    assert "Modules:" in text


def test_sessions_cover_all_modules(fig1_design):
    data = design_to_dict(fig1_design)
    tested = [m for session in data["test_sessions"] for m in session["modules"]]
    assert sorted(tested) == fig1_design.datapath.module_ids
