"""Tests of module binding and register binding."""

import pytest

from repro.dfg import (
    DFGBuilder,
    DFGError,
    check_register_assignment,
    minimum_module_counts,
    minimum_register_count,
    self_adjacency_candidates,
)
from repro.hls import bind_modules, coloring_binding, left_edge_binding, list_schedule


def test_bind_modules_requires_schedule(fig1_behavioral):
    with pytest.raises(DFGError):
        bind_modules(fig1_behavioral)


def test_bind_modules_minimum_counts(fig1_graph):
    binding = bind_modules(fig1_graph)
    expected = sum(minimum_module_counts(fig1_graph).values())
    assert binding.module_count == expected
    bound = binding.apply(fig1_graph)
    assert bound.is_module_bound


def test_bind_modules_no_concurrent_sharing(tseng_graph):
    # tseng is already bound by the circuit builder; rebinding must also hold.
    binding = bind_modules(tseng_graph)
    graph = tseng_graph.with_module_binding(binding.binding)
    for cstep in graph.control_steps:
        ops = graph.operations_in_step(cstep)
        modules = [graph.operations[o].module for o in ops]
        assert len(modules) == len(set(modules))


def test_bind_modules_same_class_per_module(tseng_graph):
    binding = bind_modules(tseng_graph)
    for module in binding.modules:
        kinds = {tseng_graph.operations[o].module_class for o in module.operations}
        assert kinds == {module.module_class}


def test_bind_modules_with_extra_units(fig1_graph):
    binding = bind_modules(fig1_graph, extra_modules={"mult": 1})
    graph = fig1_graph.with_module_binding(binding.binding)
    # The extra multiplier may or may not be used, but the binding stays valid.
    assert graph.is_module_bound
    assert binding.module_count >= 2


def test_bind_modules_first_module_id(fig1_graph):
    binding = bind_modules(fig1_graph, first_module_id=3)
    assert min(info.module_id for info in binding.modules) == 3


def test_left_edge_binding_optimal(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    assert binding.register_count == minimum_register_count(fig1_graph)
    assert check_register_assignment(fig1_graph, binding.assignment) == []
    groups = binding.registers()
    assert sorted(v for members in groups.values() for v in members) == fig1_graph.variable_ids


def test_coloring_binding_with_extra_conflicts(fig1_graph):
    plain = coloring_binding(fig1_graph)
    adjacent = coloring_binding(fig1_graph,
                                extra_conflicts=self_adjacency_candidates(fig1_graph))
    assert check_register_assignment(fig1_graph, adjacent.assignment) == []
    assert adjacent.register_count >= plain.register_count
    # Self-adjacency pairs must be separated.
    for input_var, output_var in self_adjacency_candidates(fig1_graph):
        assert adjacent.assignment[input_var] != adjacent.assignment[output_var]


def test_coloring_binding_ignores_self_loops(fig1_graph):
    binding = coloring_binding(fig1_graph, extra_conflicts=[(0, 0)])
    assert check_register_assignment(fig1_graph, binding.assignment) == []


def test_register_binding_dense_numbering(tseng_graph):
    binding = left_edge_binding(tseng_graph)
    used = sorted(set(binding.assignment.values()))
    assert used == list(range(binding.register_count))


def test_binding_on_multioutput_graph():
    builder = DFGBuilder("two_outputs")
    a = builder.input("a")
    b = builder.input("b")
    s = builder.op("add", a, b)
    p = builder.op("mul", a, b)
    builder.output(s)
    builder.output(p)
    graph = builder.build()
    graph = list_schedule(graph, {"alu": 1, "mult": 1}).apply(graph)
    graph = bind_modules(graph).apply(graph)
    binding = left_edge_binding(graph)
    assert check_register_assignment(graph, binding.assignment) == []
