"""Link and reference checks for the ``docs/`` site (the docs CI job).

Three contracts:

* every relative markdown link in ``docs/`` and ``README.md`` resolves to
  a real file (and a real anchor-less target — external http(s) links are
  out of scope);
* every ``path:line``-style source reference in the docs names an
  existing file, with the line number inside the file;
* ``docs/paper-mapping.md`` covers every built-in circuit and both the
  Table 2 and Table 3 reproductions.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.circuits import list_circuits

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
PAGES = DOCS + [REPO_ROOT / "README.md"]

#: [text](target) — excluding images and external/absolute targets.
_MD_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

#: `path/to/file.py:123` or `path/to/file.py` references in backticks.
_SOURCE_REF = re.compile(
    r"`((?:src|tests|benchmarks|examples)/[\w./\-]+?\.(?:py|json|md|txt))"
    r"(?::(\d+))?`")


def test_docs_directory_is_complete():
    names = {path.name for path in DOCS}
    assert {"architecture.md", "paper-mapping.md", "wire-protocol.md",
            "benchmarking.md"} <= names, names


@pytest.mark.parametrize("page", PAGES, ids=[p.name for p in PAGES])
def test_relative_links_resolve(page):
    text = page.read_text(encoding="utf-8")
    broken = []
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (page.parent / target).exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken relative links: {broken}"


@pytest.mark.parametrize("page", PAGES, ids=[p.name for p in PAGES])
def test_source_references_exist(page):
    text = page.read_text(encoding="utf-8")
    problems = []
    for match in _SOURCE_REF.finditer(text):
        path = REPO_ROOT / match.group(1)
        if not path.exists():
            problems.append(f"{match.group(0)}: no such file")
            continue
        if match.group(2) is not None:
            line = int(match.group(2))
            length = len(path.read_text(encoding="utf-8").splitlines())
            if not (1 <= line <= length):
                problems.append(f"{match.group(0)}: line {line} out of "
                                f"range (file has {length} lines)")
    assert not problems, f"{page.name}: stale source references: {problems}"


def test_paper_mapping_has_file_line_references():
    """The mapping must anchor claims to code, not prose."""
    text = (REPO_ROOT / "docs" / "paper-mapping.md").read_text(encoding="utf-8")
    with_line = [m for m in _SOURCE_REF.finditer(text) if m.group(2)]
    assert len(with_line) >= 10, \
        "paper-mapping.md should carry file:line-style references"


def test_paper_mapping_covers_every_builtin_circuit():
    text = (REPO_ROOT / "docs" / "paper-mapping.md").read_text(encoding="utf-8")
    missing = [name for name in list_circuits() if f"`{name}`" not in text]
    assert not missing, f"paper-mapping.md does not mention circuits: {missing}"


def test_paper_mapping_covers_table2_and_table3():
    text = (REPO_ROOT / "docs" / "paper-mapping.md").read_text(encoding="utf-8")
    for needle in ("Table 2", "Table 3",
                   "benchmarks/bench_table2_advbist_sweep.py",
                   "benchmarks/bench_table3_comparison.py",
                   "repro sweep", "repro compare"):
        assert needle in text, f"paper-mapping.md lost its {needle!r} coverage"


def test_readme_links_into_docs():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/paper-mapping.md",
                 "docs/wire-protocol.md", "docs/benchmarking.md"):
        assert page in text, f"README.md must link to {page}"


def test_readme_has_no_stale_sweepengine_usage():
    """Front-end examples must go through repro.api, not the engine."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "SweepEngine(" not in text
    assert "DesignCache(" not in text
