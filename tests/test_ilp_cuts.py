"""Deterministic regression tests of the cutting-plane machinery.

Two layers of guarantees are pinned here:

* **validity** — every generated cut must hold at *every* integer-feasible
  point (not merely the optimum), verified by exhaustive 0/1 enumeration
  on hand-built rows with known cover/clique/implication cuts;
* **usefulness** — the root cutting-plane loop must tighten the LP
  relaxation bound of the paper circuits without ever changing the MILP
  optimum.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.core.formulation import AdvBistFormulation
from repro.ilp import LinExpr, Model, SolveStatus
from repro.ilp.cuts import (
    Cut,
    CutPool,
    apply_cuts,
    clique_cuts,
    cover_cuts,
    generate_cuts,
    implication_cuts,
    objective_cutoff_form,
    objective_is_integral,
    or_indicator_rows,
    packing_rows,
    root_cut_loop,
    safe_hint_gap,
    static_strengthening_cuts,
    _lp_optimum,
)

PAPER_CIRCUITS = ("fig1", "tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6")


def _enumerate_integer_points(form):
    """All 0/1 points of a small all-binary form satisfying its constraints."""
    n = len(form.variables)
    A_ub = np.asarray(form.A_ub.todense() if hasattr(form.A_ub, "todense")
                      else form.A_ub, dtype=float).reshape(-1, n)
    A_eq = np.asarray(form.A_eq.todense() if hasattr(form.A_eq, "todense")
                      else form.A_eq, dtype=float).reshape(-1, n)
    for bits in itertools.product((0.0, 1.0), repeat=n):
        x = np.array(bits)
        if A_ub.shape[0] and np.any(A_ub @ x > form.b_ub + 1e-6):
            continue
        if A_eq.shape[0] and np.any(np.abs(A_eq @ x - form.b_eq) > 1e-6):
            continue
        yield x


def _assert_cuts_valid(form, cuts):
    """No integer-feasible point of ``form`` may violate any cut."""
    points = 0
    for x in _enumerate_integer_points(form):
        points += 1
        for cut in cuts:
            assert cut.violation(x) <= 1e-6, (
                f"{cut.kind} cut {cut} cuts off integer point {x}")
    assert points, "enumeration found no feasible point — broken fixture"


# ----------------------------------------------------------------------
# hand-built rows with known cuts
# ----------------------------------------------------------------------
def or_model() -> Model:
    """Three operands ORed into one indicator (the eq-(14) shape)."""
    model = Model("or")
    xs = [model.add_binary(f"x{i}") for i in range(3)]
    y = model.add_binary("y")
    model.add_or_indicator(y, xs, "or")
    model.set_objective(LinExpr.sum(xs) + y)
    return model


def triangle_model() -> Model:
    """Pairwise packing rows whose conflict graph is a triangle."""
    model = Model("triangle")
    a, b, c = (model.add_binary(name) for name in "abc")
    model.add_constr(a + b <= 1.0, "ab")
    model.add_constr(b + c <= 1.0, "bc")
    model.add_constr(a + c <= 1.0, "ac")
    model.set_objective(-1.0 * a - 1.0 * b - 1.0 * c)
    return model


def knapsack_form():
    model = Model("knapsack")
    x, y, z = (model.add_binary(name) for name in "xyz")
    model.add_constr(3.0 * x + 4.0 * y + 5.0 * z <= 8.0, "cap")
    model.set_objective(-3.0 * x - 4.0 * y - 5.0 * z)
    return model.to_matrix_form()


def test_or_rows_are_recognised():
    form = or_model().to_matrix_form()
    rows = or_indicator_rows(form)
    assert len(rows) == 1
    operands, indicator = rows[0]
    assert len(operands) == 3 and indicator not in operands


def test_implication_cuts_disaggregate_the_or_row():
    form = or_model().to_matrix_form()
    cuts = implication_cuts(form)
    assert len(cuts) == 3
    assert all(cut.kind == "implication" for cut in cuts)
    assert static_strengthening_cuts(form) == cuts
    _assert_cuts_valid(form, cuts)
    # Separation mode: a fractional point with x0 > y violates only x0 <= y.
    xstar = np.zeros(len(form.variables))
    x0, indicator = cuts[0].cols
    xstar[x0], xstar[indicator] = 0.8, 0.3
    violated = implication_cuts(form, xstar)
    assert [cut.cols for cut in violated] == [(x0, indicator)]


def test_implication_cuts_tighten_the_or_lp():
    form = or_model().to_matrix_form()
    before = _lp_optimum(form)[0]
    after = _lp_optimum(apply_cuts(form, implication_cuts(form)))[0]
    assert after >= before - 1e-9


def test_packing_rows_and_clique_extension():
    form = triangle_model().to_matrix_form()
    assert len(packing_rows(form)) == 3
    # The all-half point satisfies every pairwise row but not the triangle.
    xstar = np.full(len(form.variables), 0.5)
    cuts = clique_cuts(form, xstar)
    assert cuts, "triangle clique not separated"
    assert cuts[0].cols == (0, 1, 2)
    assert cuts[0].rhs == 1.0
    _assert_cuts_valid(form, cuts)
    # The clique cut closes the integrality gap outright here.
    strengthened = apply_cuts(form, cuts)
    assert _lp_optimum(strengthened)[0] == pytest.approx(-1.0)
    assert _lp_optimum(form)[0] == pytest.approx(-1.5)


def test_cover_cut_on_a_knapsack_row():
    form = knapsack_form()
    xstar = np.array([0.9, 0.9, 0.3])
    cuts = cover_cuts(form, xstar)
    assert len(cuts) == 1
    cut = cuts[0]
    assert cut.kind == "cover"
    assert sorted(cut.cols) == [0, 1, 2] and cut.rhs == 2.0
    _assert_cuts_valid(form, cuts)


def test_cover_cut_complements_negative_coefficients():
    model = Model("mixed-sign")
    x, y = model.add_binary("x"), model.add_binary("y")
    model.add_constr(3.0 * x - 4.0 * y <= 2.0, "row")
    model.set_objective(-1.0 * x)
    form = model.to_matrix_form()
    # x near 1 with y near 0 is the fractional corner the cover cuts off.
    cuts = cover_cuts(form, np.array([0.9, 0.1]))
    assert len(cuts) == 1
    # Complemented back: x - y <= 0 (x = 1 forces y = 1).
    terms = dict(zip(cuts[0].cols, cuts[0].coeffs))
    assert terms == {0: 1.0, 1: -1.0}
    assert cuts[0].rhs == 0.0
    _assert_cuts_valid(form, cuts)


def test_pure_packing_rows_produce_no_cover_cuts():
    form = triangle_model().to_matrix_form()
    assert cover_cuts(form, np.full(3, 0.5)) == []


def test_cut_pool_deduplicates():
    pool = CutPool()
    cut = Cut(cols=(1, 0), coeffs=(1.0, 1.0), rhs=1.0, kind="clique")
    same = Cut(cols=(1, 0), coeffs=(1.0, 1.0), rhs=1.0, kind="clique")
    assert pool.add(cut) and not pool.add(same)
    assert len(pool) == 1
    assert pool.counts() == {"clique": 1}
    form = triangle_model().to_matrix_form()
    fresh = generate_cuts(form, np.full(3, 0.5), pool)
    assert fresh and generate_cuts(form, np.full(3, 0.5), CutPool())


def test_apply_cuts_appends_rows_only():
    form = triangle_model().to_matrix_form()
    cut = Cut(cols=(0, 1, 2), coeffs=(1.0, 1.0, 1.0), rhs=1.0)
    strengthened = apply_cuts(form, [cut])
    assert strengthened.A_ub.shape[0] == form.A_ub.shape[0] + 1
    assert len(strengthened.variables) == len(form.variables)
    assert np.array_equal(strengthened.c, form.c)
    assert apply_cuts(form, []) is form


# ----------------------------------------------------------------------
# the root loop on the paper circuits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PAPER_CIRCUITS)
def test_root_cut_loop_tightens_without_changing_the_optimum(name):
    form = AdvBistFormulation(get_circuit(name), 1).model.to_matrix_form()
    strengthened, info = root_cut_loop(form)
    # The loop may add rows, never columns, and never loosens the bound.
    assert len(strengthened.variables) == len(form.variables)
    assert info["lp_after"] >= info["lp_before"] - 1e-6
    if info["total"]:
        assert strengthened.A_ub.shape[0] > form.A_ub.shape[0]


def test_root_cut_loop_strictly_tightens_fig1():
    form = AdvBistFormulation(get_circuit("fig1"), 1).model.to_matrix_form()
    _, info = root_cut_loop(form)
    assert info["total"] > 0
    assert info["lp_after"] > info["lp_before"] + 1.0
    assert "implication" in info["cuts"]


@pytest.mark.parametrize("k", [1, 2])
def test_cuts_preserve_the_fig1_milp_objective(k):
    formulation = AdvBistFormulation(get_circuit("fig1"), k)
    plain = formulation.solve(backend="scipy")
    with_cuts = AdvBistFormulation(get_circuit("fig1"), k).solve(
        backend="scipy", cuts=True)
    assert plain.solution.status is SolveStatus.OPTIMAL
    assert with_cuts.solution.status is SolveStatus.OPTIMAL
    assert with_cuts.solution.objective == pytest.approx(
        plain.solution.objective)
    assert with_cuts.solution.stats.cuts["total"] > 0
    assert with_cuts.design.area().total == plain.design.area().total


# ----------------------------------------------------------------------
# warm-start cutoff helpers
# ----------------------------------------------------------------------
def test_objective_is_integral_detects_fractional_costs():
    model = Model("frac")
    x = model.add_binary("x")
    model.set_objective(1.5 * x)
    assert not objective_is_integral(model.to_matrix_form())
    integral = Model("int")
    y = integral.add_binary("y")
    integral.set_objective(3.0 * y)
    assert objective_is_integral(integral.to_matrix_form())


def test_objective_cutoff_form_prunes_worse_solutions_only():
    form = knapsack_form()
    # minimise -3x-4y-5z subject to 3x+4y+5z <= 8: optimum -8 (x=0,y=0? no:
    # pick x,z -> weight 8, value -8).
    optimum = _lp_optimum(form)
    constrained = objective_cutoff_form(form, -8.0)
    assert constrained.A_ub.shape[0] == form.A_ub.shape[0] + 1
    # The optimum itself survives the cutoff row.
    assert _lp_optimum(constrained)[0] <= optimum[0] + 1e-6


def test_safe_hint_gap_only_loosens_when_provably_exact():
    form = knapsack_form()  # negative objective coefficients: must not loosen
    assert safe_hint_gap(form, 8.0, 1e-6) == 1e-6
    model = Model("nonneg")
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constr(x + y >= 1.0, "pick")
    model.set_objective(2.0 * x + 3.0 * y)
    nonneg = model.to_matrix_form()
    assert safe_hint_gap(nonneg, 2.0, 1e-6) == pytest.approx(0.45)
    assert safe_hint_gap(nonneg, 0.5, 1e-6) == 1e-6  # hint below one quantum
    frac = Model("frac")
    z = frac.add_binary("z")
    frac.set_objective(1.5 * z)
    assert safe_hint_gap(frac.to_matrix_form(), 3.0, 1e-6) == 1e-6
