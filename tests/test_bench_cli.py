"""CLI tests for ``repro bench run|compare|history|suites``."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import load_report
from repro.bench.schema import validate_report
from repro.cli import main


def _shrink_prior(report: dict, factor: float) -> dict:
    """Scale every timing of a report (tiny factor → 'fast prior')."""
    prior = json.loads(json.dumps(report))  # deep copy
    for suite in prior["suites"].values():
        for scenario in suite["scenarios"].values():
            scenario["per_unit_seconds"] = {
                label: round(seconds * factor, 6)
                for label, seconds in scenario["per_unit_seconds"].items()}
            scenario["wall_seconds"] = round(
                scenario["wall_seconds"] * factor, 6)
    return prior


@pytest.fixture(scope="module")
def fresh_report_path(tmp_path_factory):
    """One real ``bench run`` on the table2 suite, narrowed to fig1."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_fresh.json"
    code = main(["bench", "run", "--suite", "table2",
                 "--circuits", "fig1", "--max-k", "1",
                 "--scenarios", "cold_baseline", "cold_accel", "warm_cache",
                 "--no-warmup", "--time-limit", "60", "--out", str(out)])
    assert code == 0
    return out


def test_bench_suites_lists_the_registry(capsys):
    assert main(["bench", "suites"]) == 0
    output = capsys.readouterr().out
    for name in ("table2", "table3", "sweep-scaling", "solver-micro",
                 "fuzz-throughput"):
        assert name in output


def test_bench_run_writes_schema_valid_json(fresh_report_path, capsys):
    report = validate_report(load_report(fresh_report_path))
    suite = report["suites"]["table2"]
    assert suite["config"]["circuits"] == ["fig1"]
    assert suite["parity_ok"] is True
    assert set(suite["scenarios"]) == {"cold_baseline", "cold_accel",
                                       "warm_cache"}


def test_bench_run_compare_clean_prior_exits_zero(fresh_report_path,
                                                  tmp_path, capsys):
    """A synthetic *slow* prior: the fresh run looks faster, gate passes."""
    report = json.loads(fresh_report_path.read_text(encoding="utf-8"))
    slow = tmp_path / "BENCH_slow.json"
    slow.write_text(json.dumps(_shrink_prior(report, 100.0)),
                    encoding="utf-8")
    out = tmp_path / "BENCH_out.json"
    code = main(["bench", "run", "--suite", "table2",
                 "--circuits", "fig1", "--max-k", "1",
                 "--scenarios", "cold_baseline",
                 "--no-warmup", "--time-limit", "60", "--out", str(out),
                 "--compare", str(slow), "--threshold", "1.5x"])
    assert code == 0
    output = capsys.readouterr().out
    assert "no regressions" in output


def test_bench_compare_flags_regressions_with_nonzero_exit(
        fresh_report_path, tmp_path, capsys):
    """A synthetic *fast* prior: the fresh timings regress past 1.5x."""
    report = json.loads(fresh_report_path.read_text(encoding="utf-8"))
    fast = _shrink_prior(report, 0.0001)
    # keep the prior above the (lowered) noise floor so the gate fires
    for suite in fast["suites"].values():
        for scenario in suite["scenarios"].values():
            scenario["per_unit_seconds"] = {
                label: max(seconds, 0.0005)
                for label, seconds in scenario["per_unit_seconds"].items()}
    fast_path = tmp_path / "BENCH_fast.json"
    fast_path.write_text(json.dumps(fast), encoding="utf-8")

    code = main(["bench", "compare", str(fresh_report_path), str(fast_path),
                 "--threshold", "1.5x", "--min-seconds", "0.0001"])
    assert code == 1
    output = capsys.readouterr().out
    assert "REGRESSED" in output
    assert "regressed past 1.5x" in output


def test_bench_compare_gates_against_the_checked_in_report(
        fresh_report_path, capsys):
    """The committed baseline stays comparable with fresh runs."""
    from pathlib import Path

    legacy = Path(__file__).resolve().parent.parent / "BENCH_regress.json"
    code = main(["bench", "compare", str(fresh_report_path), str(legacy),
                 "--threshold", "1000x", "--verbose"])
    assert code == 0
    output = capsys.readouterr().out
    # the fig1 units of the fresh run matched legacy units by label
    assert "cold_baseline/sweep:fig1" in output


def test_bench_history_renders_trajectory(fresh_report_path, capsys):
    from pathlib import Path

    legacy = Path(__file__).resolve().parent.parent / "BENCH_regress.json"
    assert main(["bench", "history", str(fresh_report_path),
                 str(legacy)]) == 0
    output = capsys.readouterr().out
    assert "Benchmark history" in output
    assert "solver-micro" in output and "cold_batched" in output


def test_bench_run_unknown_suite_exits_2(capsys):
    assert main(["bench", "run", "--suite", "nope", "--no-warmup"]) == 2
    assert "unknown benchmark suite" in capsys.readouterr().err


def test_bench_compare_missing_file_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["bench", "compare", str(missing), str(missing)]) == 2
    assert "no such report" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["bench", "run", "--suite", "solver-micro", "--threshold", "0.5x"],
    ["bench", "run", "--suite", "solver-micro", "--threshold", "fast"],
    ["bench", "run", "--suite", "solver-micro", "--min-seconds", "-1"],
    ["bench", "run", "--suite", "solver-micro", "--seed", "-2"],
    ["bench", "run", "--suite", "solver-micro", "--jobs", "0"],
    ["bench", "run", "--suite", "solver-micro", "--max-k", "zero"],
])
def test_bench_bad_flags_fail_at_parse_time(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "must" in capsys.readouterr().err
