"""Unit tests of the DFG data structure and its builder."""

import pytest

from repro.dfg import Constant, DFGBuilder, DFGError, operations_by_step
from repro.dfg.graph import DataFlowGraph, DfgVariable, Operation


def test_fig1_paper_sets(fig1_graph):
    """The running example exposes the paper's V_o, V_v, E_i, E_o, T sets."""
    graph = fig1_graph
    assert len(graph.operation_ids) == 4
    assert len(graph.variable_ids) == 8
    assert len(graph.input_edges) == 8          # |E_i| = 8 in section 2.1
    assert len(graph.output_edges) == 4         # |E_o| = 4
    assert graph.constants == []                # C = empty set
    assert set(graph.control_steps) == set(range(len(graph.control_steps)))


def test_builder_creates_primary_inputs_and_outputs():
    builder = DFGBuilder("g")
    a = builder.input("a")
    b = builder.input("b")
    out = builder.op("add", a, b)
    builder.output(out)
    graph = builder.build()
    assert graph.primary_inputs() == [int(a), int(b)]
    assert graph.primary_outputs() == [int(out)]
    assert graph.variables[int(out)].producer == 0


def test_builder_rejects_unknown_operands():
    builder = DFGBuilder("g")
    with pytest.raises(DFGError):
        builder.op("add", 99, 100)


def test_builder_rejects_zero_operand_operations():
    builder = DFGBuilder("g")
    with pytest.raises(DFGError):
        builder.op("nop")


def test_builder_rejects_boolean_operands():
    builder = DFGBuilder("g")
    a = builder.input("a")
    with pytest.raises(DFGError):
        builder.op("add", a, True)


def test_builder_converts_floats_to_constants():
    builder = DFGBuilder("g")
    a = builder.input("a")
    out = builder.op("mul", a, 3.0)
    builder.output(out)
    graph = builder.build()
    constants = graph.constants
    assert len(constants) == 1
    assert constants[0].value == pytest.approx(3.0)


def test_builder_output_of_unknown_variable_rejected():
    builder = DFGBuilder("g")
    with pytest.raises(DFGError):
        builder.output(3)


def test_commutativity_defaults():
    builder = DFGBuilder("g")
    a = builder.input("a")
    b = builder.input("b")
    add_out = builder.op("add", a, b)
    sub_out = builder.op("sub", a, b)
    graph_ops = builder.build().operations
    add_op = graph_ops[graph_ops[0].op_id]
    assert add_op.commutative is True
    sub_op = [op for op in graph_ops.values() if op.output == int(sub_out)][0]
    assert sub_op.commutative is False


def test_commutativity_override():
    builder = DFGBuilder("g")
    a = builder.input("a")
    b = builder.input("b")
    builder.op("add", a, b, commutative=False)
    op = list(builder.build().operations.values())[0]
    assert op.commutative is False


def test_constant_equality_and_naming():
    c1 = Constant(3.0)
    c2 = Constant(3.0)
    assert c1 == c2
    assert c1.name == "const_3"
    named = Constant(2.5, "half_pi_ish")
    assert named.name == "half_pi_ish"


def test_schedule_validation_rejects_dependency_violation(fig1_behavioral):
    graph = fig1_behavioral
    bad_schedule = {op_id: 0 for op_id in graph.operation_ids}
    with pytest.raises(DFGError):
        graph.with_schedule(bad_schedule)


def test_schedule_requires_every_operation(fig1_behavioral):
    with pytest.raises(DFGError):
        fig1_behavioral.with_schedule({0: 0})


def test_module_binding_rejects_mixed_classes(fig1_graph):
    binding = {op_id: 0 for op_id in fig1_graph.operation_ids}  # adds + muls on one module
    with pytest.raises(DFGError):
        fig1_graph.with_module_binding(binding)


def test_module_binding_rejects_concurrent_sharing(fig1_graph):
    graph = fig1_graph
    adds = [o for o in graph.operation_ids if graph.operations[o].kind == "add"]
    muls = [o for o in graph.operation_ids if graph.operations[o].kind == "mul"]
    # Force both multiplications onto one module even if concurrent.
    binding = {}
    for o in adds:
        binding[o] = 0
    for o in muls:
        binding[o] = 1
    # Make the two multiplications concurrent first.
    schedule = {o: graph.operations[o].cstep for o in graph.operation_ids}
    if schedule[muls[0]] != schedule[muls[1]]:
        # construct an explicitly conflicting graph instead
        builder = DFGBuilder("conflict")
        a = builder.input("a")
        b = builder.input("b")
        m1 = builder.op("mul", a, b, cstep=0)
        m2 = builder.op("mul", a, b, cstep=0)
        builder.output(m1)
        builder.output(m2)
        conflicted = builder.build()
        with pytest.raises(DFGError):
            conflicted.with_module_binding({0: 1, 1: 1})
    else:
        with pytest.raises(DFGError):
            graph.with_module_binding(binding)


def test_cycle_detection():
    # Hand-build a cyclic graph (the builder cannot produce one).
    variables = {
        0: DfgVariable(0, "a", producer=1),
        1: DfgVariable(1, "b", producer=0),
    }
    operations = {
        0: Operation(0, "add", inputs=(0,), output=1),
        1: Operation(1, "add", inputs=(1,), output=0),
    }
    graph = DataFlowGraph("cyclic", operations, variables)
    with pytest.raises(DFGError):
        graph.validate()


def test_consumers_and_producer_queries(fig1_graph):
    graph = fig1_graph
    # variable 4 (output of op 0) feeds two operations in the fig1 example
    producer_of_4 = graph.producer_of(4)
    assert producer_of_4 is not None
    consumers = graph.consumers_of(4)
    assert len(consumers) == 2


def test_operations_by_step_requires_schedule(fig1_behavioral):
    with pytest.raises(DFGError):
        operations_by_step(fig1_behavioral)


def test_operations_by_step_groups(fig1_graph):
    groups = operations_by_step(fig1_graph)
    assert sum(len(ops) for ops in groups.values()) == len(fig1_graph.operation_ids)
    assert sorted(groups) == list(range(len(groups)))


def test_module_queries(fig1_graph):
    graph = fig1_graph
    assert len(graph.module_ids) == 2
    for module in graph.module_ids:
        assert graph.module_class_of(module) in {"alu", "mult"}
        assert list(graph.module_input_ports(module)) == [0, 1]


def test_summary_fields(fig1_graph):
    summary = fig1_graph.summary()
    assert summary["operations"] == 4
    assert summary["scheduled"] is True
    assert summary["module_bound"] is True


def test_graph_iteration_and_len(fig1_graph):
    assert len(fig1_graph) == 4
    kinds = [op.kind for op in fig1_graph]
    assert kinds.count("add") == 2
    assert kinds.count("mul") == 2
